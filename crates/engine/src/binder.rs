//! Name resolution and plan construction: AST → bound [`Plan`].
//!
//! The binder produces a *naive* join tree (cross-join chain + filter) that
//! [`crate::optimizer`] then reorders into selective hash joins. Aggregates
//! are resolved with the classic "aggregate environment" rewrite: group
//! expressions and aggregate calls become columns of the Aggregate node,
//! and the projection / HAVING / ORDER BY expressions are rewritten on top.

use crate::ast;
use crate::catalog::Database;
use crate::error::{EngineError, Result};
use crate::expr::{ArithOp, BExpr, CmpOp, ScalarFunc, SubPlan};
use crate::plan::{AggCall, AggFunc, JoinKind, Plan, SetOpKind, WinFunc, WindowCall};
use crate::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use tpcds_types::DataType;

/// Sentinel base for window-result column references: window columns are
/// appended after the (not yet final) aggregate output, so the binder
/// records `WIN_SENTINEL + k` and patches it once the aggregate width is
/// known.
const WIN_SENTINEL: usize = usize::MAX / 2;

/// A bound statement: the plan plus output column names.
#[derive(Debug, Clone)]
pub struct Bound {
    /// Executable plan.
    pub plan: Arc<Plan>,
    /// Output column names.
    pub names: Vec<String>,
}

/// One visible column during binding.
#[derive(Debug, Clone)]
struct ScopeCol {
    qualifier: Option<String>,
    name: String,
}

/// The columns visible to expressions at some point in the pipeline.
#[derive(Debug, Clone, Default)]
struct Scope {
    cols: Vec<ScopeCol>,
}

impl Scope {
    fn push(&mut self, qualifier: Option<String>, name: impl Into<String>) {
        self.cols.push(ScopeCol {
            qualifier,
            name: name.into(),
        });
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Option<usize>> {
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            let q_ok = match qualifier {
                None => true,
                Some(q) => c.qualifier.as_deref() == Some(q),
            };
            if q_ok && c.name == name {
                if found.is_some() {
                    return Err(EngineError::bind(format!("ambiguous column {name}")));
                }
                found = Some(i);
            }
        }
        Ok(found)
    }

    fn merged(mut self, other: Scope) -> Scope {
        self.cols.extend(other.cols);
        self
    }
}

struct CteEntry {
    plan: Arc<Plan>,
    names: Vec<String>,
    id: usize,
}

/// The binder.
pub struct Binder<'a> {
    db: &'a Database,
    ctes: Vec<HashMap<String, Arc<CteEntry>>>,
    next_cte_id: usize,
    optimize: bool,
}

impl<'a> Binder<'a> {
    /// Creates a binder over the database catalog.
    pub fn new(db: &'a Database) -> Self {
        Binder {
            db,
            ctes: vec![HashMap::new()],
            next_cte_id: 0,
            optimize: true,
        }
    }

    /// Disables the join-reordering / predicate-pushdown pass, leaving the
    /// binder's naive left-deep cross-join plan (used by the optimizer
    /// ablation study).
    pub fn without_optimizer(mut self) -> Self {
        self.optimize = false;
        self
    }

    /// Binds a full query (the public entry point).
    pub fn bind(&mut self, q: &ast::Query) -> Result<Bound> {
        let (plan, _scope, names) = self.bind_query(q, None, &mut Vec::new())?;
        let plan = if self.optimize {
            crate::optimizer::fuse_topn(plan)
        } else {
            plan
        };
        Ok(Bound {
            plan: Arc::new(plan),
            names,
        })
    }

    /// Binds a query, possibly correlated against `outer`. `outer_refs`
    /// collects outer column indexes used.
    fn bind_query(
        &mut self,
        q: &ast::Query,
        outer: Option<&Scope>,
        outer_refs: &mut Vec<usize>,
    ) -> Result<(Plan, Scope, Vec<String>)> {
        // Register CTEs in a fresh layer.
        self.ctes.push(HashMap::new());
        let result = self.bind_query_inner(q, outer, outer_refs);
        self.ctes.pop();
        result
    }

    fn bind_query_inner(
        &mut self,
        q: &ast::Query,
        outer: Option<&Scope>,
        outer_refs: &mut Vec<usize>,
    ) -> Result<(Plan, Scope, Vec<String>)> {
        for (name, cte_q) in &q.ctes {
            let (plan, _scope, names) = self.bind_query(cte_q, None, &mut Vec::new())?;
            let id = self.next_cte_id;
            self.next_cte_id += 1;
            let entry = CteEntry {
                plan: Arc::new(plan),
                names,
                id,
            };
            self.ctes
                .last_mut()
                .expect("cte layer")
                .insert(name.clone(), Arc::new(entry));
        }
        match &q.body {
            ast::SetExpr::Select(sel) => {
                self.bind_select(sel, &q.order_by, q.limit, outer, outer_refs)
            }
            body @ ast::SetExpr::SetOp { .. } => {
                let (plan, names) = self.bind_set_expr(body, outer, outer_refs)?;
                // ORDER BY over a set operation binds to output names or
                // ordinals only.
                let mut scope = Scope::default();
                for n in &names {
                    scope.push(None, n.clone());
                }
                let mut plan = plan;
                if !q.order_by.is_empty() {
                    let mut keys = Vec::new();
                    for item in &q.order_by {
                        let idx = self.output_ordinal(&item.expr, &names)?.ok_or_else(|| {
                            EngineError::bind(
                                "ORDER BY over a set operation must use output names or ordinals",
                            )
                        })?;
                        keys.push((BExpr::Col(idx), item.desc));
                    }
                    plan = Plan::Sort {
                        input: Arc::new(plan),
                        keys,
                    };
                }
                if let Some(n) = q.limit {
                    plan = Plan::Limit {
                        input: Arc::new(plan),
                        n,
                    };
                }
                Ok((plan, scope, names))
            }
            ast::SetExpr::Query(inner) => self.bind_query(inner, outer, outer_refs),
        }
    }

    fn bind_set_expr(
        &mut self,
        e: &ast::SetExpr,
        outer: Option<&Scope>,
        outer_refs: &mut Vec<usize>,
    ) -> Result<(Plan, Vec<String>)> {
        match e {
            ast::SetExpr::Select(sel) => {
                let (plan, _scope, names) = self.bind_select(sel, &[], None, outer, outer_refs)?;
                Ok((plan, names))
            }
            ast::SetExpr::Query(q) => {
                let (plan, _scope, names) = self.bind_query(q, outer, outer_refs)?;
                Ok((plan, names))
            }
            ast::SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let (l, lnames) = self.bind_set_expr(left, outer, outer_refs)?;
                let (r, rnames) = self.bind_set_expr(right, outer, outer_refs)?;
                if l.width() != r.width() {
                    return Err(EngineError::bind(format!(
                        "set operands have {} vs {} columns",
                        l.width(),
                        r.width()
                    )));
                }
                let _ = rnames;
                let op = match op {
                    ast::SetOpKind::Union => SetOpKind::Union,
                    ast::SetOpKind::Intersect => SetOpKind::Intersect,
                    ast::SetOpKind::Except => SetOpKind::Except,
                };
                Ok((
                    Plan::SetOp {
                        left: Arc::new(l),
                        right: Arc::new(r),
                        op,
                        all: *all,
                    },
                    lnames,
                ))
            }
        }
    }

    // ---------- FROM ----------

    fn bind_table_ref(
        &mut self,
        t: &ast::TableRef,
        outer: Option<&Scope>,
        outer_refs: &mut Vec<usize>,
    ) -> Result<(Plan, Scope)> {
        match t {
            ast::TableRef::Table { name, alias } => {
                // CTE reference?
                for layer in self.ctes.iter().rev() {
                    if let Some(entry) = layer.get(name) {
                        let q = alias.clone().unwrap_or_else(|| name.clone());
                        let mut scope = Scope::default();
                        for n in &entry.names {
                            scope.push(Some(q.clone()), n.clone());
                        }
                        return Ok((
                            Plan::CteRef {
                                id: entry.id,
                                plan: entry.plan.clone(),
                                width: entry.names.len(),
                            },
                            scope,
                        ));
                    }
                }
                // Virtual `sys.*` tables have fixed schemas and resolve
                // ahead of the stored catalog; the executor materializes
                // their rows at scan time.
                let cols = match crate::sys::columns(name) {
                    Some(cols) => cols,
                    None => self.db.columns(name)?,
                };
                let q = alias.clone().unwrap_or_else(|| name.clone());
                let mut scope = Scope::default();
                for c in &cols {
                    scope.push(Some(q.clone()), c.name.clone());
                }
                Ok((
                    Plan::Scan {
                        table: name.clone(),
                        width: cols.len(),
                        filter: None,
                    },
                    scope,
                ))
            }
            ast::TableRef::Subquery { query, alias } => {
                let (plan, _scope, names) = self.bind_query(query, outer, outer_refs)?;
                let mut scope = Scope::default();
                for n in &names {
                    scope.push(Some(alias.clone()), n.clone());
                }
                Ok((plan, scope))
            }
            ast::TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let (lp, ls) = self.bind_table_ref(left, outer, outer_refs)?;
                let (rp, rs) = self.bind_table_ref(right, outer, outer_refs)?;
                let scope = ls.merged(rs);
                match kind {
                    ast::JoinKind::Cross => Ok((
                        Plan::NestedLoopJoin {
                            left: Arc::new(lp),
                            right: Arc::new(rp),
                            kind: JoinKind::Inner,
                            predicate: None,
                        },
                        scope,
                    )),
                    ast::JoinKind::Inner | ast::JoinKind::Left => {
                        let jk = if *kind == ast::JoinKind::Left {
                            JoinKind::Left
                        } else {
                            JoinKind::Inner
                        };
                        let on_expr = on
                            .as_ref()
                            .ok_or_else(|| EngineError::bind("JOIN requires ON"))?;
                        let pred = self.bind_expr(on_expr, &scope, outer, outer_refs, None)?;
                        // Extract equi keys split across the two sides.
                        let lw = lp.width();
                        let (keys, residual) = split_equi_keys(&pred, lw);
                        if keys.is_empty() {
                            Ok((
                                Plan::NestedLoopJoin {
                                    left: Arc::new(lp),
                                    right: Arc::new(rp),
                                    kind: jk,
                                    predicate: Some(pred),
                                },
                                scope,
                            ))
                        } else {
                            let (lk, rk): (Vec<BExpr>, Vec<BExpr>) = keys.into_iter().unzip();
                            Ok((
                                Plan::HashJoin {
                                    left: Arc::new(lp),
                                    right: Arc::new(rp),
                                    kind: jk,
                                    left_keys: lk,
                                    right_keys: rk
                                        .iter()
                                        .map(|k| k.remap_columns(&|c| c - lw))
                                        .collect(),
                                    residual,
                                },
                                scope,
                            ))
                        }
                    }
                }
            }
        }
    }

    // ---------- SELECT ----------

    fn bind_select(
        &mut self,
        sel: &ast::Select,
        order_by: &[ast::OrderItem],
        limit: Option<u64>,
        outer: Option<&Scope>,
        outer_refs: &mut Vec<usize>,
    ) -> Result<(Plan, Scope, Vec<String>)> {
        // FROM: cross-join chain.
        let mut plan: Option<Plan> = None;
        let mut scope = Scope::default();
        for t in &sel.from {
            let (p, s) = self.bind_table_ref(t, outer, outer_refs)?;
            plan = Some(match plan {
                None => p,
                Some(acc) => Plan::NestedLoopJoin {
                    left: Arc::new(acc),
                    right: Arc::new(p),
                    kind: JoinKind::Inner,
                    predicate: None,
                },
            });
            scope = scope.merged(s);
        }
        let mut plan = plan.unwrap_or(Plan::Scan {
            // SELECT without FROM: a one-row dummy scan.
            table: "__dual".to_string(),
            width: 0,
            filter: None,
        });
        if sel.from.is_empty() && !self.db.has_table("__dual") {
            self.db.create_table("__dual", vec![])?;
            self.db.insert("__dual", vec![vec![]])?;
        }

        // WHERE.
        if let Some(w) = &sel.where_clause {
            let pred = self.bind_expr(w, &scope, outer, outer_refs, None)?;
            plan = Plan::Filter {
                input: Arc::new(plan),
                predicate: pred,
            };
        }

        // Reorder joins & push predicates before aggregation.
        if self.optimize {
            plan = crate::optimizer::optimize(plan, self.db);
        }

        // Detect aggregation.
        let has_aggs = sel.items.iter().any(|i| match i {
            ast::SelectItem::Expr { expr, .. } => contains_aggregate(expr),
            _ => false,
        }) || sel.having.as_ref().map(contains_aggregate).unwrap_or(false)
            || order_by.iter().any(|o| contains_aggregate(&o.expr));
        let grouped = !sel.group_by.is_empty() || has_aggs;

        let mut agg_env: Option<AggEnv> = None;
        if grouped {
            // Bind group expressions over the FROM scope.
            let mut groups = Vec::new();
            for g in &sel.group_by {
                groups.push(self.bind_expr(g, &scope, outer, outer_refs, None)?);
            }
            let sets: Vec<Vec<bool>> = if sel.rollup {
                (0..=groups.len())
                    .rev()
                    .map(|k| (0..groups.len()).map(|i| i < k).collect())
                    .collect()
            } else {
                vec![vec![true; groups.len()]]
            };
            agg_env = Some(AggEnv {
                groups,
                group_keys: Vec::new(),
                aggs: Vec::new(),
                agg_keys: Vec::new(),
                sets,
            });
            let env = agg_env.as_mut().expect("just set");
            env.group_keys = env.groups.iter().map(|g| format!("{g:?}")).collect();
        }

        // Bind select items (collecting aggregates into the env).
        let mut proj_exprs: Vec<BExpr> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        let mut window_calls: Vec<WindowCall> = Vec::new();
        let mut item_sources: Vec<(ast::Expr, Option<String>)> = Vec::new();
        for item in &sel.items {
            match item {
                ast::SelectItem::Wildcard => {
                    if agg_env.is_some() {
                        return Err(EngineError::bind("SELECT * with GROUP BY is not supported"));
                    }
                    for (i, c) in scope.cols.iter().enumerate() {
                        proj_exprs.push(BExpr::Col(i));
                        names.push(c.name.clone());
                        item_sources.push((
                            ast::Expr::Column {
                                qualifier: c.qualifier.clone(),
                                name: c.name.clone(),
                            },
                            None,
                        ));
                    }
                }
                ast::SelectItem::QualifiedWildcard(q) => {
                    if agg_env.is_some() {
                        return Err(EngineError::bind(
                            "SELECT t.* with GROUP BY is not supported",
                        ));
                    }
                    let mut any = false;
                    for (i, c) in scope.cols.iter().enumerate() {
                        if c.qualifier.as_deref() == Some(q) {
                            proj_exprs.push(BExpr::Col(i));
                            names.push(c.name.clone());
                            item_sources.push((
                                ast::Expr::Column {
                                    qualifier: c.qualifier.clone(),
                                    name: c.name.clone(),
                                },
                                None,
                            ));
                            any = true;
                        }
                    }
                    if !any {
                        return Err(EngineError::bind(format!("unknown qualifier {q}")));
                    }
                }
                ast::SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_projection(
                        expr,
                        &scope,
                        outer,
                        outer_refs,
                        &mut agg_env,
                        &mut window_calls,
                    )?;
                    proj_exprs.push(bound);
                    names.push(alias.clone().unwrap_or_else(|| derive_name(expr)));
                    item_sources.push((expr.clone(), alias.clone()));
                }
            }
        }

        // HAVING.
        let having = sel
            .having
            .as_ref()
            .map(|h| {
                self.bind_projection(
                    h,
                    &scope,
                    outer,
                    outer_refs,
                    &mut agg_env,
                    &mut window_calls,
                )
            })
            .transpose()?;

        // ORDER BY: output name / ordinal / projected expression / hidden
        // column, bound while the aggregate environment is still open so
        // new group/agg references resolve.
        let visible = proj_exprs.len();
        let mut all_exprs = proj_exprs;
        let mut sort_keys: Vec<(BExpr, bool)> = Vec::new();
        for item in order_by {
            if let Some(idx) = self.output_ordinal(&item.expr, &names)? {
                sort_keys.push((BExpr::Col(idx), item.desc));
                continue;
            }
            // Identical projected expression → its output column.
            if let Some(i) = item_sources.iter().position(|(src, _)| src == &item.expr) {
                sort_keys.push((BExpr::Col(i), item.desc));
                continue;
            }
            // Hidden projection column bound in the same context as the
            // select items.
            let bound = self.bind_projection(
                &item.expr,
                &scope,
                outer,
                outer_refs,
                &mut agg_env,
                &mut window_calls,
            )?;
            all_exprs.push(bound);
            sort_keys.push((BExpr::Col(all_exprs.len() - 1), item.desc));
        }

        // Assemble: Aggregate → Having → Window → Project.
        let mut agg_width = scope.cols.len();
        if let Some(env) = agg_env {
            agg_width = env.groups.len() + env.aggs.len();
            plan = Plan::Aggregate {
                input: Arc::new(plan),
                groups: env.groups,
                sets: env.sets,
                aggs: env.aggs,
            };
        }
        // Patch window-result sentinels now that the aggregate width is
        // final.
        let patch = |c: usize| {
            if c >= WIN_SENTINEL {
                agg_width + (c - WIN_SENTINEL)
            } else {
                c
            }
        };
        let all_exprs: Vec<BExpr> = all_exprs.iter().map(|e| e.remap_columns(&patch)).collect();
        let having = having.map(|h| h.remap_columns(&patch));
        if let Some(h) = having {
            // HAVING may not reference window results.
            plan = Plan::Filter {
                input: Arc::new(plan),
                predicate: h,
            };
        }
        if !window_calls.is_empty() {
            plan = Plan::Window {
                input: Arc::new(plan),
                calls: window_calls,
            };
        }

        plan = Plan::Project {
            input: Arc::new(plan),
            exprs: all_exprs,
        };
        if sel.distinct {
            if all_hidden_sorts_visible(&sort_keys, visible) {
                plan = Plan::Distinct {
                    input: Arc::new(plan),
                };
            } else {
                return Err(EngineError::bind(
                    "SELECT DISTINCT with ORDER BY on non-projected expressions",
                ));
            }
        }
        if !sort_keys.is_empty() {
            plan = Plan::Sort {
                input: Arc::new(plan),
                keys: sort_keys,
            };
        }
        if plan.width() != visible {
            plan = Plan::Prefix {
                input: Arc::new(plan),
                keep: visible,
            };
        }
        if let Some(n) = limit {
            plan = Plan::Limit {
                input: Arc::new(plan),
                n,
            };
        }

        let mut out_scope = Scope::default();
        for n in &names {
            out_scope.push(None, n.clone());
        }
        Ok((plan, out_scope, names))
    }

    /// Resolves an ORDER BY item as an output alias or 1-based ordinal.
    fn output_ordinal(&self, expr: &ast::Expr, names: &[String]) -> Result<Option<usize>> {
        match expr {
            ast::Expr::Literal(tpcds_types::Value::Int(n)) => {
                let i = *n as usize;
                if i == 0 || i > names.len() {
                    return Err(EngineError::bind(format!(
                        "ORDER BY ordinal {n} out of range"
                    )));
                }
                Ok(Some(i - 1))
            }
            ast::Expr::Column {
                qualifier: None,
                name,
            } => Ok(names.iter().position(|n| n == name)),
            _ => Ok(None),
        }
    }

    // ---------- expression binding ----------

    /// Binds a projection/HAVING expression: group expressions and
    /// aggregate calls become references into the Aggregate output; window
    /// calls are collected and become references past the aggregate
    /// columns.
    fn bind_projection(
        &mut self,
        e: &ast::Expr,
        scope: &Scope,
        outer: Option<&Scope>,
        outer_refs: &mut Vec<usize>,
        env: &mut Option<AggEnv>,
        windows: &mut Vec<WindowCall>,
    ) -> Result<BExpr> {
        if let Some(env) = env.as_mut() {
            self.bind_agg_expr(e, scope, outer, outer_refs, env, windows)
        } else {
            // Window functions allowed over plain rows.
            self.bind_plain_with_windows(e, scope, outer, outer_refs, windows)
        }
    }

    fn bind_plain_with_windows(
        &mut self,
        e: &ast::Expr,
        scope: &Scope,
        outer: Option<&Scope>,
        outer_refs: &mut Vec<usize>,
        windows: &mut Vec<WindowCall>,
    ) -> Result<BExpr> {
        if let ast::Expr::Window {
            name,
            args,
            partition_by,
            order_by,
        } = e
        {
            let call =
                self.build_window_call(name, args, partition_by, order_by, &mut |b, ast_e| {
                    b.bind_expr(ast_e, scope, outer, outer_refs, None)
                })?;
            let idx = WIN_SENTINEL + windows.len();
            windows.push(call);
            return Ok(BExpr::Col(idx));
        }
        // Recurse structurally so nested windows are found.
        self.rebuild(e, &mut |b, sub| {
            b.bind_plain_with_windows(sub, scope, outer, outer_refs, windows)
        })
        .or_else(|_| self.bind_expr(e, scope, outer, outer_refs, None))
    }

    /// Binds an expression in an aggregate query.
    #[allow(clippy::too_many_arguments)]
    fn bind_agg_expr(
        &mut self,
        e: &ast::Expr,
        scope: &Scope,
        outer: Option<&Scope>,
        outer_refs: &mut Vec<usize>,
        env: &mut AggEnv,
        windows: &mut Vec<WindowCall>,
    ) -> Result<BExpr> {
        // 1. Does it match a group expression?
        if let Ok(bound) = self.bind_expr(e, scope, outer, outer_refs, None) {
            let key = format!("{bound:?}");
            if let Some(i) = env.group_keys.iter().position(|k| *k == key) {
                return Ok(BExpr::Col(i));
            }
        }
        // 2. Aggregate call?
        if let ast::Expr::Function {
            name,
            args,
            star,
            distinct,
        } = e
        {
            if let Some(func) = agg_func(name, *star) {
                let arg = match (func, args.first()) {
                    (AggFunc::CountStar, _) => None,
                    (AggFunc::Grouping(_), Some(a)) => {
                        // grouping(expr): locate the group expression.
                        let bound = self.bind_expr(a, scope, outer, outer_refs, None)?;
                        let key = format!("{bound:?}");
                        let gi =
                            env.group_keys
                                .iter()
                                .position(|k| *k == key)
                                .ok_or_else(|| {
                                    EngineError::bind("GROUPING() argument is not a group column")
                                })?;
                        return Ok(BExpr::Col(
                            env.groups.len()
                                + env.push(AggCall {
                                    func: AggFunc::Grouping(gi),
                                    arg: None,
                                    distinct: false,
                                }),
                        ));
                    }
                    (_, Some(a)) => Some(self.bind_expr(a, scope, outer, outer_refs, None)?),
                    (_, None) => {
                        return Err(EngineError::bind(format!("{name} needs an argument")))
                    }
                };
                let idx = env.push(AggCall {
                    func,
                    arg,
                    distinct: *distinct,
                });
                return Ok(BExpr::Col(env.groups.len() + idx));
            }
        }
        // 3. Window call: arguments/partitions are bound in the aggregate
        //    environment (so SUM(SUM(x)) OVER (...) works).
        if let ast::Expr::Window {
            name,
            args,
            partition_by,
            order_by,
        } = e
        {
            // Window binding may add aggregate calls to env, shifting the
            // aggregate width — record a sentinel and patch later.
            let call =
                self.build_window_call(name, args, partition_by, order_by, &mut |b, ast_e| {
                    b.bind_agg_expr(ast_e, scope, outer, outer_refs, env, &mut Vec::new())
                })?;
            let idx = WIN_SENTINEL + windows.len();
            windows.push(call);
            return Ok(BExpr::Col(idx));
        }
        // 4. Subqueries in aggregate contexts (HAVING, projections) bind
        //    against the FROM scope; they are uncorrelated with respect to
        //    the grouped output.
        if matches!(
            e,
            ast::Expr::Subquery(_) | ast::Expr::InSubquery { .. } | ast::Expr::Exists { .. }
        ) {
            return self.bind_expr(e, scope, outer, outer_refs, None);
        }
        // 5. Recurse structurally.
        self.rebuild(e, &mut |b, sub| {
            b.bind_agg_expr(sub, scope, outer, outer_refs, env, windows)
        })
        .map_err(|err| match e {
            ast::Expr::Column { name, .. } => EngineError::bind(format!(
                "column {name} must appear in GROUP BY or inside an aggregate"
            )),
            _ => err,
        })
    }

    /// Rebuilds a composite AST node by binding each child with `f`;
    /// errors on leaves (which the callers handle specially).
    fn rebuild(
        &mut self,
        e: &ast::Expr,
        f: &mut impl FnMut(&mut Self, &ast::Expr) -> Result<BExpr>,
    ) -> Result<BExpr> {
        Ok(match e {
            ast::Expr::Literal(v) => BExpr::Lit(v.clone()),
            ast::Expr::Binary { op, left, right } => {
                let l = f(self, left)?;
                let r = f(self, right)?;
                bin_op(*op, l, r)
            }
            ast::Expr::Neg(x) => BExpr::Neg(f(self, x)?.boxed()),
            ast::Expr::Not(x) => BExpr::Not(f(self, x)?.boxed()),
            ast::Expr::IsNull { expr, negated } => BExpr::IsNull(f(self, expr)?.boxed(), *negated),
            ast::Expr::Between {
                expr,
                low,
                high,
                negated,
            } => BExpr::Between(
                f(self, expr)?.boxed(),
                f(self, low)?.boxed(),
                f(self, high)?.boxed(),
                *negated,
            ),
            ast::Expr::InList {
                expr,
                list,
                negated,
            } => {
                let b = f(self, expr)?;
                let items: Result<Vec<BExpr>> = list.iter().map(|i| f(self, i)).collect();
                BExpr::InList(b.boxed(), items?, *negated)
            }
            ast::Expr::Like {
                expr,
                pattern,
                negated,
            } => BExpr::Like(f(self, expr)?.boxed(), f(self, pattern)?.boxed(), *negated),
            ast::Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                let op = operand
                    .as_ref()
                    .map(|o| f(self, o))
                    .transpose()?
                    .map(BExpr::boxed);
                let mut bs = Vec::new();
                for (c, r) in branches {
                    bs.push((f(self, c)?, f(self, r)?));
                }
                let el = else_branch
                    .as_ref()
                    .map(|x| f(self, x))
                    .transpose()?
                    .map(BExpr::boxed);
                BExpr::Case {
                    operand: op,
                    branches: bs,
                    else_branch: el,
                }
            }
            ast::Expr::Cast { expr, ty } => BExpr::Cast(f(self, expr)?.boxed(), cast_type(ty)?),
            ast::Expr::Function {
                name,
                args,
                star,
                distinct,
            } => {
                if *star || *distinct || agg_func(name, *star).is_some() {
                    return Err(EngineError::bind(format!(
                        "aggregate {name} not valid in this context"
                    )));
                }
                let func = scalar_fn(name)?;
                let bound: Result<Vec<BExpr>> = args.iter().map(|a| f(self, a)).collect();
                BExpr::Func(func, bound?)
            }
            other => {
                return Err(EngineError::bind(format!(
                    "cannot bind {other:?} in this context"
                )))
            }
        })
    }

    #[allow(clippy::type_complexity)]
    fn build_window_call(
        &mut self,
        name: &str,
        args: &[ast::Expr],
        partition_by: &[ast::Expr],
        order_by: &[ast::OrderItem],
        bind: &mut impl FnMut(&mut Self, &ast::Expr) -> Result<BExpr>,
    ) -> Result<WindowCall> {
        let func = match name {
            "sum" => WinFunc::Sum,
            "avg" => WinFunc::Avg,
            "count" => WinFunc::Count,
            "min" => WinFunc::Min,
            "max" => WinFunc::Max,
            "rank" => WinFunc::Rank,
            "dense_rank" => WinFunc::DenseRank,
            "row_number" => WinFunc::RowNumber,
            other => {
                return Err(EngineError::bind(format!(
                    "unknown window function {other}"
                )))
            }
        };
        let arg = match args.first() {
            Some(a) => Some(bind(self, a)?),
            None => None,
        };
        let mut partition = Vec::new();
        for p in partition_by {
            partition.push(bind(self, p)?);
        }
        let mut order = Vec::new();
        for o in order_by {
            order.push((bind(self, &o.expr)?, o.desc));
        }
        if matches!(
            func,
            WinFunc::Rank | WinFunc::DenseRank | WinFunc::RowNumber
        ) && order.is_empty()
        {
            return Err(EngineError::bind(format!("{name}() requires ORDER BY")));
        }
        Ok(WindowCall {
            func,
            arg,
            partition,
            order,
        })
    }

    /// Binds a scalar expression over a scope. `env` is unused here but
    /// kept for symmetry (plain contexts).
    fn bind_expr(
        &mut self,
        e: &ast::Expr,
        scope: &Scope,
        outer: Option<&Scope>,
        outer_refs: &mut Vec<usize>,
        _env: Option<()>,
    ) -> Result<BExpr> {
        match e {
            ast::Expr::Column { qualifier, name } => {
                if let Some(i) = scope.resolve(qualifier.as_deref(), name)? {
                    return Ok(BExpr::Col(i));
                }
                if let Some(outer_scope) = outer {
                    if let Some(i) = outer_scope.resolve(qualifier.as_deref(), name)? {
                        if !outer_refs.contains(&i) {
                            outer_refs.push(i);
                        }
                        return Ok(BExpr::OuterCol(i));
                    }
                }
                Err(EngineError::bind(format!(
                    "unknown column {}{}",
                    qualifier
                        .as_ref()
                        .map(|q| format!("{q}."))
                        .unwrap_or_default(),
                    name
                )))
            }
            ast::Expr::Subquery(q) => {
                let mut refs = Vec::new();
                let (plan, _s, _n) = self.bind_query(q, Some(scope), &mut refs)?;
                if plan.width() != 1 {
                    return Err(EngineError::bind("scalar subquery must return one column"));
                }
                Ok(BExpr::ScalarSubquery(
                    SubPlan {
                        plan: Arc::new(plan),
                        outer_refs: refs,
                    },
                    Arc::new(Mutex::new(HashMap::new())),
                ))
            }
            ast::Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let b = self.bind_expr(expr, scope, outer, outer_refs, None)?;
                let mut refs = Vec::new();
                let (plan, _s, _n) = self.bind_query(query, Some(scope), &mut refs)?;
                if plan.width() != 1 {
                    return Err(EngineError::bind("IN subquery must return one column"));
                }
                Ok(BExpr::InSubquery(
                    b.boxed(),
                    SubPlan {
                        plan: Arc::new(plan),
                        outer_refs: refs,
                    },
                    *negated,
                    Arc::new(Mutex::new(HashMap::new())),
                ))
            }
            ast::Expr::Exists { query, negated } => {
                let mut refs = Vec::new();
                let (plan, _s, _n) = self.bind_query(query, Some(scope), &mut refs)?;
                Ok(BExpr::Exists(
                    SubPlan {
                        plan: Arc::new(plan),
                        outer_refs: refs,
                    },
                    *negated,
                    Arc::new(Mutex::new(HashMap::new())),
                ))
            }
            ast::Expr::Window { .. } => Err(EngineError::bind(
                "window function not allowed in this context",
            )),
            ast::Expr::Function {
                name,
                args,
                star,
                distinct,
            } => {
                if agg_func(name, *star).is_some() || *star || *distinct {
                    return Err(EngineError::bind(format!(
                        "aggregate {name} not allowed in this context"
                    )));
                }
                let func = scalar_fn(name)?;
                let bound: Result<Vec<BExpr>> = args
                    .iter()
                    .map(|a| self.bind_expr(a, scope, outer, outer_refs, None))
                    .collect();
                Ok(BExpr::Func(func, bound?))
            }
            other => self.rebuild(other, &mut |b, sub| {
                b.bind_expr(sub, scope, outer, outer_refs, None)
            }),
        }
    }
}

/// The aggregate environment: group expressions and collected aggregates.
struct AggEnv {
    groups: Vec<BExpr>,
    group_keys: Vec<String>,
    aggs: Vec<AggCall>,
    agg_keys: Vec<String>,
    sets: Vec<Vec<bool>>,
}

impl AggEnv {
    /// Adds (or reuses) an aggregate call; returns its index.
    fn push(&mut self, call: AggCall) -> usize {
        let key = format!("{:?}|{:?}|{}", call.func, call.arg, call.distinct);
        if let Some(i) = self.agg_keys.iter().position(|k| *k == key) {
            return i;
        }
        self.aggs.push(call);
        self.agg_keys.push(key);
        self.aggs.len() - 1
    }
}

fn contains_aggregate(e: &ast::Expr) -> bool {
    match e {
        ast::Expr::Function { name, star, .. } => agg_func(name, *star).is_some(),
        ast::Expr::Window { .. } => false, // window args handled separately
        ast::Expr::Binary { left, right, .. } => {
            contains_aggregate(left) || contains_aggregate(right)
        }
        ast::Expr::Neg(x) | ast::Expr::Not(x) => contains_aggregate(x),
        ast::Expr::IsNull { expr, .. } => contains_aggregate(expr),
        ast::Expr::Between {
            expr, low, high, ..
        } => contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high),
        ast::Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        ast::Expr::Like { expr, pattern, .. } => {
            contains_aggregate(expr) || contains_aggregate(pattern)
        }
        ast::Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            operand
                .as_ref()
                .map(|o| contains_aggregate(o))
                .unwrap_or(false)
                || branches
                    .iter()
                    .any(|(c, r)| contains_aggregate(c) || contains_aggregate(r))
                || else_branch
                    .as_ref()
                    .map(|x| contains_aggregate(x))
                    .unwrap_or(false)
        }
        ast::Expr::Cast { expr, .. } => contains_aggregate(expr),
        _ => false,
    }
}

fn agg_func(name: &str, star: bool) -> Option<AggFunc> {
    Some(match name {
        "count" if star => AggFunc::CountStar,
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "avg" => AggFunc::Avg,
        "stddev_samp" => AggFunc::StddevSamp,
        "grouping" => AggFunc::Grouping(0),
        _ => return None,
    })
}

fn scalar_fn(name: &str) -> Result<ScalarFunc> {
    Ok(match name {
        "substr" | "substring" => ScalarFunc::Substr,
        "coalesce" => ScalarFunc::Coalesce,
        "nullif" => ScalarFunc::Nullif,
        "abs" => ScalarFunc::Abs,
        "round" => ScalarFunc::Round,
        "lower" => ScalarFunc::Lower,
        "upper" => ScalarFunc::Upper,
        "char_length" | "length" => ScalarFunc::Length,
        other => return Err(EngineError::bind(format!("unknown function {other}"))),
    })
}

fn cast_type(ty: &str) -> Result<DataType> {
    Ok(match ty {
        "int" | "integer" | "bigint" | "smallint" => DataType::Int,
        "decimal" | "numeric" | "dec" | "float" | "double" => DataType::Decimal,
        "date" => DataType::Date,
        "char" | "varchar" | "character" | "text" => DataType::Str,
        other => return Err(EngineError::bind(format!("unknown cast target {other}"))),
    })
}

fn bin_op(op: ast::BinOp, l: BExpr, r: BExpr) -> BExpr {
    use ast::BinOp::*;
    match op {
        Add => BExpr::Arith(ArithOp::Add, l.boxed(), r.boxed()),
        Sub => BExpr::Arith(ArithOp::Sub, l.boxed(), r.boxed()),
        Mul => BExpr::Arith(ArithOp::Mul, l.boxed(), r.boxed()),
        Div => BExpr::Arith(ArithOp::Div, l.boxed(), r.boxed()),
        Mod => BExpr::Arith(ArithOp::Mod, l.boxed(), r.boxed()),
        Eq => BExpr::Cmp(CmpOp::Eq, l.boxed(), r.boxed()),
        Ne => BExpr::Cmp(CmpOp::Ne, l.boxed(), r.boxed()),
        Lt => BExpr::Cmp(CmpOp::Lt, l.boxed(), r.boxed()),
        Le => BExpr::Cmp(CmpOp::Le, l.boxed(), r.boxed()),
        Gt => BExpr::Cmp(CmpOp::Gt, l.boxed(), r.boxed()),
        Ge => BExpr::Cmp(CmpOp::Ge, l.boxed(), r.boxed()),
        And => BExpr::And(l.boxed(), r.boxed()),
        Or => BExpr::Or(l.boxed(), r.boxed()),
        Concat => BExpr::Concat(l.boxed(), r.boxed()),
    }
}

/// Splits an ON condition into equi-key pairs (left expr, right expr in
/// combined coordinates) and a residual. Only top-level AND conjuncts of
/// the form `left_col = right_col` split; everything else is residual.
fn split_equi_keys(pred: &BExpr, left_width: usize) -> (Vec<(BExpr, BExpr)>, Option<BExpr>) {
    let mut keys = Vec::new();
    let mut residual: Option<BExpr> = None;
    let mut stack = vec![pred.clone()];
    while let Some(e) = stack.pop() {
        match e {
            BExpr::And(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            BExpr::Cmp(CmpOp::Eq, a, b) => {
                let side = |x: &BExpr| -> Option<bool> {
                    // Some(true) = all columns from left; Some(false) = all right.
                    let mut left_only = true;
                    let mut right_only = true;
                    let mut any = false;
                    x.visit_columns(&mut |c| {
                        any = true;
                        if c < left_width {
                            right_only = false;
                        } else {
                            left_only = false;
                        }
                    });
                    if !any || x.has_subquery() {
                        return None;
                    }
                    if left_only {
                        Some(true)
                    } else if right_only {
                        Some(false)
                    } else {
                        None
                    }
                };
                match (side(&a), side(&b)) {
                    (Some(true), Some(false)) => keys.push((*a, *b)),
                    (Some(false), Some(true)) => keys.push((*b, *a)),
                    _ => {
                        let e = BExpr::Cmp(CmpOp::Eq, a, b);
                        residual = Some(match residual {
                            None => e,
                            Some(r) => BExpr::And(r.boxed(), e.boxed()),
                        });
                    }
                }
            }
            other => {
                residual = Some(match residual {
                    None => other,
                    Some(r) => BExpr::And(r.boxed(), other.boxed()),
                });
            }
        }
    }
    (keys, residual)
}

fn derive_name(e: &ast::Expr) -> String {
    match e {
        ast::Expr::Column { name, .. } => name.clone(),
        ast::Expr::Function { name, .. } => name.clone(),
        ast::Expr::Window { name, .. } => name.clone(),
        _ => "?column?".to_string(),
    }
}

fn all_hidden_sorts_visible(keys: &[(BExpr, bool)], visible: usize) -> bool {
    keys.iter().all(|(k, _)| match k {
        BExpr::Col(i) => *i < visible,
        _ => true,
    })
}
