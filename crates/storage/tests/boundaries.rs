//! Property tests at exact segment boundaries (65535/65536/65537 rows) —
//! the off-by-one territory the word-packed bitmap, the predicate
//! kernels, and the morsel scheduler must all survive — plus
//! empty-build-side and empty-probe-side joins.

use tpcds_storage::{
    par_aggregate, par_filter, par_hash_join, AggKind, AggSpec, Bitmap, CmpKind, ColumnTable,
    ColumnTableBuilder, JoinType, Pred, SEGMENT_ROWS,
};
use tpcds_types::{DataType, Row, Value};

/// (id, key, flag) rows; `key` NULL every 9th row, `flag` cycles 0..4.
fn table(n: usize) -> ColumnTable {
    let mut b = ColumnTableBuilder::new(vec![DataType::Int, DataType::Int, DataType::Int]);
    for i in 0..n as i64 {
        let key = if i % 9 == 0 {
            Value::Null
        } else {
            Value::Int(i % 13)
        };
        b.push_row(&[Value::Int(i), key, Value::Int(i % 5)]);
    }
    b.finish()
}

const BOUNDARY_SIZES: [usize; 3] = [SEGMENT_ROWS - 1, SEGMENT_ROWS, SEGMENT_ROWS + 1];

#[test]
fn bitmap_tracks_nulls_across_word_and_segment_boundaries() {
    for n in BOUNDARY_SIZES {
        let t = table(n);
        assert_eq!(t.rows, n);
        let expected_segments = n.div_ceil(SEGMENT_ROWS);
        assert_eq!(t.segments.len(), expected_segments, "n={n}");
        // Per-segment null counts must add up to the per-row rule.
        let nulls: usize = t
            .segments
            .iter()
            .map(|s| s.columns[1].nulls.count_set())
            .sum();
        assert_eq!(nulls, n.div_ceil(9), "n={n}");
        // The very last row materializes correctly.
        let last = t.row(n - 1);
        assert_eq!(last[0], Value::Int(n as i64 - 1));
    }
    // A raw bitmap straddling the last word: set/get agree at every index.
    let mut bm = Bitmap::new();
    for i in 0..(64 * 3 + 1) {
        bm.push(i % 7 == 0);
    }
    for i in 0..bm.len() {
        assert_eq!(bm.get(i), i % 7 == 0, "bit {i}");
    }
}

#[test]
fn predicate_and_filter_agree_with_serial_rule_at_boundaries() {
    for n in BOUNDARY_SIZES {
        let t = table(n);
        let pred = Pred::Cmp(CmpKind::Eq, 2, Value::Int(3));
        for threads in [1, 4] {
            let (rows, stats) = par_filter(&t, Some(&pred), threads);
            let expect: Vec<Row> = (0..n as i64)
                .filter(|i| i % 5 == 3)
                .map(|i| t.row(i as usize))
                .collect();
            assert_eq!(rows, expect, "n={n} threads={threads}");
            assert_eq!(stats.rows_scanned, n as u64);
        }
    }
}

#[test]
fn aggregate_counts_exact_at_boundaries() {
    for n in BOUNDARY_SIZES {
        let t = table(n);
        let aggs = [
            AggSpec {
                kind: AggKind::CountStar,
                col: None,
            },
            AggSpec {
                kind: AggKind::Count,
                col: Some(1), // NULL every 9th row
            },
            AggSpec {
                kind: AggKind::Min,
                col: Some(0),
            },
            AggSpec {
                kind: AggKind::Max,
                col: Some(0),
            },
        ];
        for threads in [1, 4] {
            let (rows, _) = par_aggregate(&t, None, &[], &aggs, threads).unwrap();
            assert_eq!(
                rows,
                vec![vec![
                    Value::Int(n as i64),
                    Value::Int((n - n.div_ceil(9)) as i64),
                    Value::Int(0),
                    Value::Int(n as i64 - 1),
                ]],
                "n={n} threads={threads}"
            );
        }
    }
}

#[test]
fn join_probe_spanning_boundary_matches_serial() {
    let build = {
        let mut b = ColumnTableBuilder::new(vec![DataType::Int, DataType::Int]);
        for i in 0..13i64 {
            b.push_row(&[Value::Int(i), Value::Int(i * 100)]);
        }
        b.finish()
    };
    for n in BOUNDARY_SIZES {
        let probe = table(n);
        let (serial, s1) = par_hash_join(
            &probe,
            None,
            &[1],
            &build,
            None,
            &[0],
            JoinType::Left,
            None,
            1,
        )
        .unwrap();
        // Every probe row appears exactly once (unique build keys; NULL
        // keys pad).
        assert_eq!(serial.len(), n, "n={n}");
        assert_eq!(s1.probe_morsels, probe.rows.div_ceil(8_192) as u64);
        for threads in [2, 8] {
            let (par, _) = par_hash_join(
                &probe,
                None,
                &[1],
                &build,
                None,
                &[0],
                JoinType::Left,
                None,
                threads,
            )
            .unwrap();
            assert_eq!(par, serial, "n={n} threads={threads}");
        }
    }
}

#[test]
fn empty_build_side_joins() {
    let probe = table(1_000);
    let empty = ColumnTableBuilder::new(vec![DataType::Int, DataType::Int]).finish();
    // Inner: nothing matches, nothing out.
    let (rows, stats) = par_hash_join(
        &probe,
        None,
        &[1],
        &empty,
        None,
        &[0],
        JoinType::Inner,
        None,
        4,
    )
    .unwrap();
    assert!(rows.is_empty());
    assert_eq!(stats.build_rows, 0);
    // Left: every probe row padded with build-width NULLs.
    let (rows, _) = par_hash_join(
        &probe,
        None,
        &[1],
        &empty,
        None,
        &[0],
        JoinType::Left,
        None,
        4,
    )
    .unwrap();
    assert_eq!(rows.len(), probe.rows);
    assert!(rows
        .iter()
        .all(|r| r.len() == 5 && r[3].is_null() && r[4].is_null()));
    // A build side whose rows all fail the filter behaves like empty too.
    let build = table(100);
    let none = Pred::Cmp(CmpKind::Lt, 0, Value::Int(-1));
    let (rows, stats) = par_hash_join(
        &probe,
        None,
        &[1],
        &build,
        Some(&none),
        &[0],
        JoinType::Inner,
        None,
        4,
    )
    .unwrap();
    assert!(rows.is_empty());
    assert_eq!(stats.build_rows, 0);
}

#[test]
fn empty_probe_side_joins() {
    let build = table(100);
    let empty = ColumnTableBuilder::new(vec![DataType::Int, DataType::Int, DataType::Int]).finish();
    for kind in [JoinType::Inner, JoinType::Left] {
        let (rows, stats) =
            par_hash_join(&empty, None, &[1], &build, None, &[0], kind, None, 4).unwrap();
        assert!(rows.is_empty(), "{kind:?}");
        assert_eq!(stats.probe_morsels, 0);
        assert_eq!(stats.rows_out, 0);
    }
    // Probe filtered down to nothing.
    let probe = table(1_000);
    let none = Pred::Cmp(CmpKind::Lt, 0, Value::Int(-1));
    let (rows, _) = par_hash_join(
        &probe,
        Some(&none),
        &[1],
        &build,
        None,
        &[0],
        JoinType::Left,
        None,
        4,
    )
    .unwrap();
    assert!(rows.is_empty());
}
