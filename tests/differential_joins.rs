//! Differential join harness: a seeded random generator produces join
//! queries over 2–3 tables — mixed inner/left joins, NULL-able keys,
//! filters (compilable and not), and aggregates — and every query runs on
//! the row path (`TPCDS_COLUMNAR=off`) and the columnar path (`force`) at
//! 1/2/8 workers. The row path is the correctness oracle: the columnar
//! answer must be canonically equal, and the forced runs must be
//! byte-identical to each other at every worker count (the determinism
//! guarantee of the partitioned join).

use tpcds_repro::engine::{ColumnMeta, ColumnarMode, ExecOptions};
use tpcds_repro::types::rng::{test_seed, SplitMix64};
use tpcds_repro::types::{DataType, Decimal, Row, Value};
use tpcds_repro::Database;

fn int_meta(name: &str) -> ColumnMeta {
    ColumnMeta {
        name: name.into(),
        dtype: DataType::Int,
    }
}

/// One fact table (large enough to exceed the inline threshold, so forced
/// runs really go parallel) and two dimension tables, all with NULL-able,
/// duplicate-heavy join keys.
fn build_db(rng: &mut SplitMix64) -> Database {
    let db = Database::new();

    let fact_meta = vec![
        int_meta("a_pk"),
        int_meta("a_k1"),
        int_meta("a_k2"),
        int_meta("a_val"),
        ColumnMeta {
            name: "a_amt".into(),
            dtype: DataType::Decimal,
        },
    ];
    let fact: Vec<Row> = (0..20_000i64)
        .map(|i| {
            let k1 = if rng.below(16) == 0 {
                Value::Null
            } else {
                Value::Int(rng.below(50) as i64)
            };
            let k2 = if rng.below(16) == 0 {
                Value::Null
            } else {
                Value::Int(rng.below(30) as i64)
            };
            vec![
                Value::Int(i),
                k1,
                k2,
                Value::Int(rng.below(1_000) as i64),
                Value::Decimal(Decimal::from_cents(rng.below(100_000) as i64)),
            ]
        })
        .collect();
    db.create_table_with_rows("t0", fact_meta, fact).unwrap();

    let dim1_meta = vec![
        int_meta("b_k"),
        int_meta("b_val"),
        ColumnMeta {
            name: "b_name".into(),
            dtype: DataType::Str,
        },
    ];
    // Duplicate keys (several rows per key value) and a few NULL keys.
    let dim1: Vec<Row> = (0..200)
        .map(|_| {
            let k = if rng.below(12) == 0 {
                Value::Null
            } else {
                Value::Int(rng.below(50) as i64)
            };
            vec![
                k,
                Value::Int(rng.below(500) as i64),
                Value::str(format!("name{}", rng.below(20))),
            ]
        })
        .collect();
    db.create_table_with_rows("t1", dim1_meta, dim1).unwrap();

    let dim2_meta = vec![int_meta("c_k"), int_meta("c_val")];
    let dim2: Vec<Row> = (0..100)
        .map(|_| {
            let k = if rng.below(12) == 0 {
                Value::Null
            } else {
                Value::Int(rng.below(30) as i64)
            };
            vec![k, Value::Int(rng.below(500) as i64)]
        })
        .collect();
    db.create_table_with_rows("t2", dim2_meta, dim2).unwrap();

    db.build_columnar_shadows();
    db
}

/// Random single-table filters. Most compile to the vectorized kernels;
/// the arithmetic ones deliberately do not, so the differential run also
/// covers the row-path fallback under Force.
fn fact_filter(rng: &mut SplitMix64) -> String {
    let n = rng.below(1_000);
    let pk = rng.below(20_000);
    match rng.below(6) {
        0 => format!("a_val > {n}"),
        1 => format!("a_pk < {pk}"),
        2 => format!("a_val between {} and {}", n / 2, n),
        3 => "a_k1 is not null".to_string(),
        4 => format!("a_amt >= {}.50", rng.below(500)),
        _ => format!("a_val + 0 <= {n}"), // uncompilable on purpose
    }
}

fn dim1_filter(rng: &mut SplitMix64) -> String {
    match rng.below(4) {
        0 => format!("b_val >= {}", rng.below(400)),
        1 => "b_name like 'name1%'".to_string(),
        2 => "b_k in (1, 3, 5, 7, 9, 11)".to_string(),
        _ => format!("b_val not between {} and {}", 100, 150 + rng.below(100)),
    }
}

fn projection(rng: &mut SplitMix64, three_tables: bool) -> String {
    let mut pool = vec!["a_pk", "a_k1", "a_val", "a_amt", "b_k", "b_val", "b_name"];
    if three_tables {
        pool.push("c_k");
        pool.push("c_val");
    }
    let n = 2 + rng.below(3) as usize;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let c = *rng.pick(&pool);
        if !cols.contains(&c) {
            cols.push(c);
        }
    }
    cols.join(", ")
}

/// One random join query. Shapes: comma inner joins, explicit
/// INNER/LEFT JOIN ... ON, a 3-table star, and grouped aggregates over a
/// join.
fn gen_query(rng: &mut SplitMix64) -> String {
    match rng.below(5) {
        0 => {
            // Comma inner join with pushed-down filters.
            let mut preds = vec!["a_k1 = b_k".to_string()];
            if rng.below(2) == 0 {
                preds.push(fact_filter(rng));
            }
            if rng.below(2) == 0 {
                preds.push(dim1_filter(rng));
            }
            format!(
                "select {} from t0, t1 where {}",
                projection(rng, false),
                preds.join(" and ")
            )
        }
        1 => {
            // Explicit inner or left join, optional WHERE above it.
            let kind = if rng.below(2) == 0 {
                "join"
            } else {
                "left join"
            };
            let where_clause = if rng.below(2) == 0 {
                format!(" where {}", fact_filter(rng))
            } else {
                String::new()
            };
            format!(
                "select {} from t0 {kind} t1 on a_k1 = b_k{where_clause}",
                projection(rng, false)
            )
        }
        2 => {
            // Three-table star.
            let mut preds = vec!["a_k1 = b_k".to_string(), "a_k2 = c_k".to_string()];
            if rng.below(2) == 0 {
                preds.push(fact_filter(rng));
            }
            format!(
                "select {} from t0, t1, t2 where {}",
                projection(rng, true),
                preds.join(" and ")
            )
        }
        3 => {
            // Grouped aggregate over a join.
            let filter = if rng.below(2) == 0 {
                format!(" and {}", fact_filter(rng))
            } else {
                String::new()
            };
            format!(
                "select b_name, count(*), sum(a_val), min(a_pk), max(a_amt), avg(a_val) \
                 from t0, t1 where a_k1 = b_k{filter} group by b_name"
            )
        }
        _ => {
            // Global aggregate over an explicit (possibly left) join.
            let kind = if rng.below(2) == 0 {
                "join"
            } else {
                "left join"
            };
            format!(
                "select count(*), count(b_k), sum(a_val), sum(b_val) \
                 from t0 {kind} t1 on a_k1 = b_k where {}",
                fact_filter(rng)
            )
        }
    }
}

fn canon(rows: &[Row]) -> Vec<Row> {
    let mut v = rows.to_vec();
    v.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.sort_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    v
}

fn opts(mode: ColumnarMode, threads: usize) -> ExecOptions {
    ExecOptions {
        columnar: mode,
        threads: Some(threads),
    }
}

#[test]
fn random_join_queries_agree_across_paths_and_worker_counts() {
    let seed = test_seed(0x7C05_D511);
    eprintln!("differential_joins seed: {seed} (override with TPCDS_TEST_SEED)");
    let mut rng = SplitMix64(seed);
    let db = build_db(&mut rng);

    let mut columnar_joins = 0usize;
    for q in 0..40 {
        let sql = gen_query(&mut rng);
        let row = tpcds_repro::engine::query_with(&db, &sql, opts(ColumnarMode::Off, 1))
            .unwrap_or_else(|e| panic!("row path failed for #{q} {sql}: {e}"));
        let reference = tpcds_repro::engine::query_with(&db, &sql, opts(ColumnarMode::Force, 1))
            .unwrap_or_else(|e| panic!("columnar path failed for #{q} {sql}: {e}"));
        assert_eq!(
            canon(&row.rows),
            canon(&reference.rows),
            "row vs columnar diverge for #{q}: {sql}"
        );
        for threads in [2, 8] {
            let r = tpcds_repro::engine::query_with(&db, &sql, opts(ColumnarMode::Force, threads))
                .unwrap();
            assert_eq!(
                r.rows, reference.rows,
                "worker count {threads} changed the bytes for #{q}: {sql}"
            );
        }
        // Count queries that actually exercised the columnar join, so a
        // silent routing regression fails the suite rather than passing
        // vacuously.
        let analyzed =
            tpcds_repro::engine::query_analyze_with(&db, &sql, opts(ColumnarMode::Force, 2))
                .unwrap();
        if analyzed.plan_text.contains("build_rows=") {
            columnar_joins += 1;
        }
    }
    assert!(
        columnar_joins >= 15,
        "only {columnar_joins}/40 generated queries routed through the columnar join"
    );
}
