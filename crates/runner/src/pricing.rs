//! The price-performance metric `$/QphDS@SF` (paper §5.3) under a
//! documented synthetic price model — the paper's 3-year total cost of
//! ownership is replaced by a parameterized model so the *metric shape*
//! is reproducible without real vendor price lists (see DESIGN.md,
//! "Substitutions").

/// A synthetic 3-year TCO model.
#[derive(Debug, Clone)]
pub struct PriceModel {
    /// Base system price (chassis, CPUs, memory), USD.
    pub base_system: f64,
    /// Storage price per GB of raw data, USD.
    pub per_gb: f64,
    /// DBMS license per concurrent stream, USD.
    pub per_stream_license: f64,
    /// 3-year 24x7 maintenance with 4-hour response, USD.
    pub maintenance: f64,
}

impl Default for PriceModel {
    fn default() -> Self {
        PriceModel {
            base_system: 120_000.0,
            per_gb: 350.0,
            per_stream_license: 8_000.0,
            maintenance: 45_000.0,
        }
    }
}

impl PriceModel {
    /// The 3-year total cost of ownership for a configuration.
    pub fn tco(&self, scale_factor: f64, streams: usize) -> f64 {
        self.base_system
            + self.per_gb * scale_factor
            + self.per_stream_license * streams as f64
            + self.maintenance
    }
}

/// `$/QphDS@SF`: TCO divided by the primary metric.
pub fn price_performance(model: &PriceModel, scale_factor: f64, streams: usize, qphds: f64) -> f64 {
    if qphds <= 0.0 {
        return f64::INFINITY;
    }
    model.tco(scale_factor, streams) / qphds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tco_composition() {
        let m = PriceModel::default();
        let tco = m.tco(100.0, 3);
        assert_eq!(tco, 120_000.0 + 35_000.0 + 24_000.0 + 45_000.0);
    }

    #[test]
    fn price_performance_inverts_metric() {
        let m = PriceModel::default();
        let cheap = price_performance(&m, 100.0, 3, 10_000.0);
        let pricey = price_performance(&m, 100.0, 3, 1_000.0);
        assert!(cheap < pricey);
        assert!(price_performance(&m, 100.0, 3, 0.0).is_infinite());
    }

    #[test]
    fn bigger_configs_cost_more() {
        let m = PriceModel::default();
        assert!(m.tco(1000.0, 7) > m.tco(100.0, 3));
    }
}
