#!/usr/bin/env sh
# Columnar storage benchmarks: builds the release harnesses and emits
#  - BENCH_2.json: scan/aggregate rows-per-second for the serial row path
#    vs the columnar path at 1 and N morsel workers, plus a 99-template
#    answer equivalence sweep;
#  - BENCH_3.json: partitioned hash-join build/probe throughput (pure join
#    and fused aggregate-over-join on store_sales ⋈ date_dim) for the
#    row path vs the columnar join at 1 and N workers;
#  - BENCH_4.json: the profiling report — the BENCH_3 join sections plus
#    histogram-derived per-query-class latency percentiles and process
#    peak memory (tpcds-bench profile);
#  - BENCH_5.json: parallel sort / Top-N throughput (the ORDER BY ...
#    LIMIT 100 template tail) for the serial row sort vs the morsel-driven
#    kernels at 1 and N workers (written by the same profile run);
#  - COVERAGE_10.json: per-template routing paths, fallback reason codes
#    and cardinality q-error quantiles over all 99 templates
#    (tpcds-bench coverage), gated on an absolute columnar-count floor
#    (MIN_COLUMNAR, default 95 of 99) on top of the baseline path gate;
#  - BENCH_7.json: the client/server multi-stream report — 1/4/16 TCP
#    clients querying a live tpcds-server while data maintenance commits
#    snapshot versions mid-run: queries/s, a QphDS-style proxy,
#    per-stream latency histograms and snapshot-version churn
#    (tpcds-bench serve);
#  - COVERAGE_8.json: the synthesized-workload soak — SYNTH_BUDGET seeded
#    grammar-driven queries (FK-walked joins, histogram-steered
#    predicates, adversarial NULL-key / skew / empty / 64k-LIMIT shapes)
#    run concurrently against the four-way row-vs-columnar differential
#    while data maintenance commits mid-run, with per-shape-class routing
#    tallies (tpcds-bench synth). Any differential mismatch fails the
#    script and writes minimized reproducers under synth_failures/.
#  - BENCH_9.json: observer overhead — the same short query mix with the
#    per-query log + metrics registry enabled vs disabled, gated inline
#    by the profile run at OBS_TOLERANCE (default 5%);
#  - BENCH_10.json: expression-kernel throughput — computed projection,
#    expression ORDER BY key and residual-join microbenches for the
#    interpreted row path vs the compiled kernels at 1 and 8 workers,
#    gated inline at EXPR_MIN_SPEEDUP (default 3.0x, written by the same
#    profile run).
# The same script regenerates COVERAGE_10.json (which replaced the
# pre-expression-kernel COVERAGE_6.json report).
# After regenerating, each fresh perf report is gated against the
# committed baseline with `tpcds-bench compare` — a throughput drop (or
# latency rise) past BENCH_TOLERANCE fails the script — and the coverage
# report is gated on routing paths: any template falling off its
# committed path (e.g. columnar -> serial) fails the script, as does
# the columnar template count dropping under MIN_COLUMNAR. Exits
# non-zero on any answer mismatch, columnar-routing fallback, perf
# regression, or routing-path regression.
#
# Knobs:
#   TPCDS_THREADS      morsel worker count (default: available_parallelism)
#   BENCH_SCALE        scale factor for BENCH_2 (default 0.02)
#   BENCH_JOIN_SCALE   scale factor for BENCH_3/BENCH_4 (default 0.01)
#   BENCH_OUT          BENCH_2 output path (default BENCH_2.json)
#   BENCH_JOIN_OUT     BENCH_3 output path (default BENCH_3.json)
#   BENCH_PROFILE_OUT  BENCH_4 output path (default BENCH_4.json)
#   BENCH_SORT_OUT     BENCH_5 output path (default BENCH_5.json)
#   BENCH_COVERAGE_OUT COVERAGE_10 output path (default COVERAGE_10.json)
#   MIN_COLUMNAR       columnar-count floor for the coverage gate (default 95)
#   BENCH_SERVE_OUT    BENCH_7 output path (default BENCH_7.json)
#   BENCH_SYNTH_OUT    COVERAGE_8 output path (default COVERAGE_8.json)
#   BENCH_OBS_OUT      BENCH_9 output path (default BENCH_9.json)
#   OBS_TOLERANCE      observer-overhead budget (default 0.05)
#   BENCH_EXPR_OUT     BENCH_10 output path (default BENCH_10.json)
#   EXPR_MIN_SPEEDUP   expression-kernel speedup floor (default 3.0)
#   SYNTH_BUDGET       synthesized queries per soak (default 500)
#   SYNTH_TOLERANCE    columnar_frac slack for the COVERAGE_8 gate
#                      (default 0.05; mismatches are never tolerated)
#   BENCH_TOLERANCE    relative regression slack for the gate (default 0.5 —
#                      generous, CI machines are noisy; tighten locally)
#   BENCH_SERVE_TOLERANCE  slack for the BENCH_7 gate (default 1.0 — tail
#                      latencies under 16-way contention are the noisiest
#                      numbers in the suite)
set -eux

export CARGO_NET_OFFLINE=true

TOLERANCE="${BENCH_TOLERANCE:-0.5}"
OUT2="${BENCH_OUT:-BENCH_2.json}"
OUT3="${BENCH_JOIN_OUT:-BENCH_3.json}"
OUT4="${BENCH_PROFILE_OUT:-BENCH_4.json}"
OUT5="${BENCH_SORT_OUT:-BENCH_5.json}"
OUT6="${BENCH_COVERAGE_OUT:-COVERAGE_10.json}"
OUT7="${BENCH_SERVE_OUT:-BENCH_7.json}"
OUT8="${BENCH_SYNTH_OUT:-COVERAGE_8.json}"
OUT9="${BENCH_OBS_OUT:-BENCH_9.json}"
OUT10="${BENCH_EXPR_OUT:-BENCH_10.json}"
SERVE_TOLERANCE="${BENCH_SERVE_TOLERANCE:-1.0}"
SYNTH_TOLERANCE="${SYNTH_TOLERANCE:-0.05}"

cargo build --release -p tpcds-bench \
    --bin storage_bench --bin join_bench --bin tpcds-bench

# Snapshot committed baselines before the fresh runs overwrite them.
for f in "$OUT2" "$OUT3" "$OUT4" "$OUT5" "$OUT6" "$OUT7" "$OUT8" "$OUT10"; do
    if [ -f "$f" ]; then
        cp "$f" "$f.baseline"
    fi
done

./target/release/storage_bench \
    --scale "${BENCH_SCALE:-0.02}" \
    --out "$OUT2"
./target/release/join_bench \
    --scale "${BENCH_JOIN_SCALE:-0.01}" \
    --out "$OUT3"
# profile also measures observer overhead (BENCH_9, gated inline at
# OBS_TOLERANCE) and the expression-kernel microbench (BENCH_10, gated
# inline at EXPR_MIN_SPEEDUP vs the interpreted row path).
./target/release/tpcds-bench profile \
    --scale "${BENCH_JOIN_SCALE:-0.01}" \
    --out "$OUT4" \
    --sort-out "$OUT5" \
    --obs-out "$OUT9" \
    --obs-tolerance "${OBS_TOLERANCE:-0.05}" \
    --expr-out "$OUT10" \
    --expr-min-speedup "${EXPR_MIN_SPEEDUP:-3.0}"
./target/release/tpcds-bench serve \
    --scale "${BENCH_JOIN_SCALE:-0.01}" \
    --out "$OUT7"

# Regression gate: fresh numbers vs the committed baselines.
status=0
for f in "$OUT2" "$OUT3" "$OUT4" "$OUT5" "$OUT10"; do
    if [ -f "$f.baseline" ]; then
        ./target/release/tpcds-bench compare "$f.baseline" "$f" \
            --tolerance "$TOLERANCE" || status=1
        rm -f "$f.baseline"
    fi
done
# The client/server report gates with its own (wider) tolerance.
if [ -f "$OUT7.baseline" ]; then
    ./target/release/tpcds-bench compare "$OUT7.baseline" "$OUT7" \
        --tolerance "$SERVE_TOLERANCE" || status=1
    rm -f "$OUT7.baseline"
fi

# Routing coverage over all 99 templates, gated on the committed paths
# (exact-path contract, no tolerance — routing is deterministic).
if [ -f "$OUT6.baseline" ]; then
    ./target/release/tpcds-bench coverage \
        --scale "${BENCH_JOIN_SCALE:-0.01}" \
        --out "$OUT6" --baseline "$OUT6.baseline" \
        --min-columnar "${MIN_COLUMNAR:-95}" || status=1
    rm -f "$OUT6.baseline"
else
    ./target/release/tpcds-bench coverage \
        --scale "${BENCH_JOIN_SCALE:-0.01}" \
        --out "$OUT6" \
        --min-columnar "${MIN_COLUMNAR:-95}" || status=1
fi

# Synthesized-workload soak + per-shape-class coverage gate: a fixed
# default seed keeps the generated queries (and so the routing report)
# stable across runs; export TPCDS_TEST_SEED to explore, or replay a CI
# failure. Mismatches always fail; the baseline gate additionally fails
# on a class vanishing or its columnar fraction regressing.
if [ -f "$OUT8.baseline" ]; then
    ./target/release/tpcds-bench synth \
        --scale "${BENCH_JOIN_SCALE:-0.01}" \
        --queries "${SYNTH_BUDGET:-500}" \
        --out "$OUT8" --baseline "$OUT8.baseline" \
        --tolerance "$SYNTH_TOLERANCE" \
        --fail-dir synth_failures || status=1
    rm -f "$OUT8.baseline"
else
    ./target/release/tpcds-bench synth \
        --scale "${BENCH_JOIN_SCALE:-0.01}" \
        --queries "${SYNTH_BUDGET:-500}" \
        --out "$OUT8" \
        --fail-dir synth_failures || status=1
fi
exit "$status"
