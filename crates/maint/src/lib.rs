//! # tpcds-maint
//!
//! The ETL data maintenance workload (paper §4.2): twelve operations —
//! four non-history dimension updates (Figure 8), four history-keeping
//! dimension updates (Figure 9), three channel fact-insert operations with
//! business-key → surrogate-key resolution (Figure 10), and one logically
//! clustered fact delete.

#![warn(missing_docs)]

use std::collections::HashMap;
use tpcds_dgen::Generator;
use tpcds_engine::{Database, EngineError, Result};
use tpcds_schema::ScdClass;
use tpcds_types::{Date, Value};

/// The twelve maintenance operations, in execution order.
pub const OPERATIONS: [&str; 12] = [
    "update_customer",
    "update_customer_address",
    "update_warehouse",
    "update_promotion",
    "update_item",
    "update_store",
    "update_call_center",
    "update_web_site",
    "insert_store_channel",
    "insert_catalog_channel",
    "insert_web_channel",
    "delete_fact_range",
];

/// Outcome of one maintenance operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpReport {
    /// Operation name (see [`OPERATIONS`]).
    pub name: &'static str,
    /// Rows updated in place.
    pub updated: usize,
    /// Rows inserted.
    pub inserted: usize,
    /// Rows deleted.
    pub deleted: usize,
}

/// Outcome of a whole data maintenance run.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceReport {
    /// Per-operation outcomes.
    pub ops: Vec<OpReport>,
}

impl MaintenanceReport {
    /// Total rows touched.
    pub fn total_rows(&self) -> usize {
        self.ops
            .iter()
            .map(|o| o.updated + o.inserted + o.deleted)
            .sum()
    }
}

/// The date a refresh run is applied (rec_start_date of new revisions):
/// one day past the sales window per refresh sequence.
pub fn refresh_date(generator: &Generator, refresh_seq: u32) -> Date {
    generator
        .sales_dates()
        .last_day()
        .add_days(1 + refresh_seq as i32)
}

/// Runs the full 12-operation data maintenance workload against the
/// database (refresh sequence `refresh_seq`).
pub fn run_maintenance(
    db: &Database,
    generator: &Generator,
    refresh_seq: u32,
) -> Result<MaintenanceReport> {
    let span = tpcds_obs::span("maint", "run_maintenance").field("refresh_seq", refresh_seq);
    let mut report = MaintenanceReport::default();
    let when = refresh_date(generator, refresh_seq);

    for table in ["customer", "customer_address", "warehouse", "promotion"] {
        report.ops.push(update_non_history_dimension(
            db,
            generator,
            table,
            refresh_seq,
        )?);
    }
    for table in ["item", "store", "call_center", "web_site"] {
        report.ops.push(update_history_dimension(
            db,
            generator,
            table,
            refresh_seq,
            when,
        )?);
    }
    report.ops.push(insert_channel(
        db,
        generator,
        "insert_store_channel",
        &["store_sales", "store_returns"],
        refresh_seq,
    )?);
    report.ops.push(insert_channel(
        db,
        generator,
        "insert_catalog_channel",
        &["catalog_sales", "catalog_returns"],
        refresh_seq,
    )?);
    report.ops.push(insert_channel(
        db,
        generator,
        "insert_web_channel",
        &["web_sales", "web_returns"],
        refresh_seq,
    )?);
    report
        .ops
        .push(delete_fact_range(db, generator, refresh_seq)?);
    // Each operation above ran as one write transaction: its commit
    // rebuilt the columnar shadows and statistics of exactly the tables
    // it mutated (`snapshot.tables_rebuilt`) and published a new snapshot
    // version — in-flight queries keep reading the versions they pinned.
    span.field("rows", report.total_rows())
        .field("versions_committed", report.ops.len() as i64)
        .field("head_version", db.version() as i64)
        .finish();
    Ok(report)
}

/// Records one finished operation as a `maint/op` span carrying the
/// operation's row actuals, and returns the report unchanged.
fn record_op(span: tpcds_obs::SpanGuard, report: OpReport) -> OpReport {
    span.field("op", report.name)
        .field("updated", report.updated)
        .field("inserted", report.inserted)
        .field("deleted", report.deleted)
        .finish();
    report
}

fn op_name(table: &str) -> &'static str {
    match table {
        "customer" => "update_customer",
        "customer_address" => "update_customer_address",
        "warehouse" => "update_warehouse",
        "promotion" => "update_promotion",
        "item" => "update_item",
        "store" => "update_store",
        "call_center" => "update_call_center",
        "web_site" => "update_web_site",
        other => panic!("no maintenance operation for {other}"),
    }
}

/// Figure 8: for every row to be updated, find the row for the business
/// key and update all changed fields.
pub fn update_non_history_dimension(
    db: &Database,
    generator: &Generator,
    table: &str,
    refresh_seq: u32,
) -> Result<OpReport> {
    let span = tpcds_obs::span("maint", "op");
    let def = generator
        .schema()
        .table(table)
        .ok_or_else(|| EngineError::Catalog(format!("unknown table {table}")))?;
    debug_assert_eq!(def.scd, ScdClass::NonHistory);
    let bk_idx = def
        .column_index(
            def.business_key
                .expect("non-history dims have business keys"),
        )
        .expect("bk col");
    let updates = generator.refresh_dimension(table, refresh_seq);
    let mut wanted: HashMap<String, tpcds_types::Row> = HashMap::new();
    for u in updates {
        wanted.insert(u.business_key.clone(), u.row);
    }
    let mut txn = db.begin();
    let t = txn.table_mut(table)?;
    let updated = t.update_each(|row| {
        let bk = match row[bk_idx].as_str() {
            Some(s) => s,
            None => return false,
        };
        if let Some(new_row) = wanted.get(bk) {
            // Update all changed fields, preserving the surrogate key and
            // the business key.
            let mut changed = false;
            for (i, v) in new_row.iter().enumerate() {
                if i == 0 || i == bk_idx {
                    continue;
                }
                if row[i] != *v {
                    row[i] = v.clone();
                    changed = true;
                }
            }
            changed
        } else {
            false
        }
    });
    txn.commit();
    Ok(record_op(
        span,
        OpReport {
            name: op_name(table),
            updated,
            inserted: 0,
            deleted: 0,
        },
    ))
}

/// Figure 9: close the current revision (rec_end_date := update date - 1)
/// and insert a new revision with an open rec_end_date.
pub fn update_history_dimension(
    db: &Database,
    generator: &Generator,
    table: &str,
    refresh_seq: u32,
    when: Date,
) -> Result<OpReport> {
    let span = tpcds_obs::span("maint", "op");
    let def = generator
        .schema()
        .table(table)
        .ok_or_else(|| EngineError::Catalog(format!("unknown table {table}")))?;
    debug_assert_eq!(def.scd, ScdClass::History);
    let bk_idx = def
        .column_index(def.business_key.expect("history dims have business keys"))
        .expect("bk col");
    let end_idx = def
        .columns
        .iter()
        .position(|c| c.name.ends_with("rec_end_date"))
        .expect("history dims have rec_end_date");
    let start_idx = def
        .columns
        .iter()
        .position(|c| c.name.ends_with("rec_start_date"))
        .expect("history dims have rec_start_date");

    let updates = generator.refresh_dimension(table, refresh_seq);
    let mut wanted: HashMap<String, tpcds_types::Row> = HashMap::new();
    for u in updates {
        wanted.insert(u.business_key.clone(), u.row);
    }

    let mut txn = db.begin();
    let t = txn.table_mut(table)?;
    let mut next_sk = t
        .rows
        .iter()
        .filter_map(|r| r[0].as_int())
        .max()
        .unwrap_or(0)
        + 1;
    // Close current revisions and queue their replacements.
    let mut to_insert = Vec::new();
    let closed = t.update_each(|row| {
        if !row[end_idx].is_null() {
            return false;
        }
        let bk = match row[bk_idx].as_str() {
            Some(s) => s.to_string(),
            None => return false,
        };
        if let Some(new_row) = wanted.get(&bk) {
            row[end_idx] = Value::Date(when.add_days(-1));
            let mut rev = new_row.clone();
            rev[0] = Value::Int(next_sk);
            next_sk += 1;
            rev[bk_idx] = Value::str(&bk);
            rev[start_idx] = Value::Date(when);
            rev[end_idx] = Value::Null;
            to_insert.push(rev);
            true
        } else {
            false
        }
    });
    let inserted = to_insert.len();
    t.insert(to_insert)?;
    txn.commit();
    Ok(record_op(
        span,
        OpReport {
            name: op_name(table),
            updated: closed,
            inserted,
            deleted: 0,
        },
    ))
}

/// Figure 10: insert fact rows, resolving business keys to the most
/// current surrogate key (rec_end_date IS NULL for history-keeping
/// dimensions).
pub fn insert_channel(
    db: &Database,
    generator: &Generator,
    name: &'static str,
    tables: &[&str],
    refresh_seq: u32,
) -> Result<OpReport> {
    let span = tpcds_obs::span("maint", "op");
    let mut inserted = 0;
    // One transaction covers the channel's sales + returns tables, so a
    // snapshot either has both inserts or neither.
    let mut txn = db.begin();
    for table in tables {
        let def = generator
            .schema()
            .table(table)
            .ok_or_else(|| EngineError::Catalog(format!("unknown table {table}")))?;
        // Business-key → current-surrogate maps for the maintained
        // dimensions this fact references.
        let mut resolvers: HashMap<&str, HashMap<String, i64>> = HashMap::new();
        for ref_table in ["item", "customer", "store"] {
            if def.foreign_keys.iter().any(|f| f.ref_table == ref_table) {
                resolvers.insert(ref_table, current_surrogates(db, generator, ref_table)?);
            }
        }
        let conversions: Vec<(usize, &str)> = def
            .foreign_keys
            .iter()
            .filter(|f| matches!(f.ref_table, "item" | "customer" | "store"))
            .map(|f| (def.column_index(f.column).expect("fk col"), f.ref_table))
            .collect();
        let rows = generator.refresh_fact_inserts(table, refresh_seq);
        let mut resolved = Vec::with_capacity(rows.len());
        for mut row in rows {
            let mut ok = true;
            for (col, ref_table) in &conversions {
                if let Some(bk) = row[*col].as_str() {
                    match resolvers[ref_table].get(bk) {
                        Some(sk) => row[*col] = Value::Int(*sk),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                resolved.push(row);
            }
        }
        inserted += resolved.len();
        txn.table_mut(table)?.insert(resolved)?;
    }
    txn.commit();
    Ok(record_op(
        span,
        OpReport {
            name,
            updated: 0,
            inserted,
            deleted: 0,
        },
    ))
}

/// Business key → current surrogate key. For history-keeping dimensions
/// only open revisions (rec_end_date IS NULL) resolve; non-history
/// dimensions have one row per key.
pub fn current_surrogates(
    db: &Database,
    generator: &Generator,
    table: &str,
) -> Result<HashMap<String, i64>> {
    let def = generator
        .schema()
        .table(table)
        .ok_or_else(|| EngineError::Catalog(format!("unknown table {table}")))?;
    let bk_idx = def
        .column_index(
            def.business_key
                .expect("maintained dims have business keys"),
        )
        .expect("bk col");
    let end_idx = def
        .columns
        .iter()
        .position(|c| c.name.ends_with("rec_end_date"));
    let t = db.table(table)?;
    let mut map = HashMap::with_capacity(t.rows.len());
    for row in &t.rows {
        if let Some(end_idx) = end_idx {
            if !row[end_idx].is_null() {
                continue;
            }
        }
        if let (Some(bk), Some(sk)) = (row[bk_idx].as_str(), row[0].as_int()) {
            map.insert(bk.to_string(), sk);
        }
    }
    Ok(map)
}

/// The logically clustered fact delete: removes all sales (and their
/// returns) dated in the refresh run's two-week range, mirroring
/// drop-partition-style maintenance.
pub fn delete_fact_range(
    db: &Database,
    generator: &Generator,
    refresh_seq: u32,
) -> Result<OpReport> {
    let span = tpcds_obs::span("maint", "op");
    let (lo, hi) = generator.refresh_delete_range(refresh_seq);
    let (lo_sk, hi_sk) = (lo.date_sk(), hi.date_sk());
    let mut deleted = 0;
    // All six fact/return tables shed the range in one transaction: a
    // snapshot never shows a sale deleted while its return survives.
    let mut txn = db.begin();
    for (table, date_col) in [
        ("store_sales", "ss_sold_date_sk"),
        ("store_returns", "sr_returned_date_sk"),
        ("catalog_sales", "cs_sold_date_sk"),
        ("catalog_returns", "cr_returned_date_sk"),
        ("web_sales", "ws_sold_date_sk"),
        ("web_returns", "wr_returned_date_sk"),
    ] {
        let def = generator.schema().table(table).expect("fact table");
        let col = def.column_index(date_col).expect("date column");
        deleted += txn.table_mut(table)?.delete_where(|row| {
            row[col]
                .as_int()
                .map(|sk| sk >= lo_sk && sk <= hi_sk)
                .unwrap_or(false)
        });
    }
    txn.commit();
    Ok(record_op(
        span,
        OpReport {
            name: "delete_fact_range",
            updated: 0,
            inserted: 0,
            deleted,
        },
    ))
}

/// Loads the initial population of every table into the database
/// (creating the tables first), then builds the *basic* auxiliary
/// structures the implementation rules allow on every part of the schema:
/// single-column hash indexes on surrogate keys and the most-probed
/// foreign keys (the richer reporting-only structures are opt-in via
/// `tpcds_runner::build_reporting_aux`).
pub fn load_initial_population(db: &Database, generator: &Generator) -> Result<()> {
    tpcds_engine::create_tpcds_tables(db, generator.schema())?;
    let threads = tpcds_storage::effective_threads();
    for t in generator.schema().tables() {
        // One generation pass feeds both stores: rows stream through a
        // segment builder on the way into the row table, so the columnar
        // shadow is attached before the first query runs.
        let (rows, shadow) = generator.generate_table_columnar(t.name, threads.max(4));
        db.insert(t.name, rows)?;
        // Attaching commits a snapshot whose statistics (NDV/histograms)
        // are collected in the same transaction, so the estimator has
        // data from the first query on.
        db.attach_columnar(t.name, shadow)?;
    }
    build_basic_indexes(db, generator)
}

/// Single-column key indexes: dimension surrogate keys, the fact tables'
/// customer / item / order columns (probed by correlated subqueries), and
/// `d_year` (the most common dimension filter).
pub fn build_basic_indexes(db: &Database, generator: &Generator) -> Result<()> {
    for t in generator.schema().tables() {
        if t.kind == tpcds_schema::TableKind::Dimension && t.primary_key.len() == 1 {
            db.create_index(t.name, t.primary_key[0])?;
        }
    }
    for (table, column) in [
        ("store_sales", "ss_customer_sk"),
        ("store_sales", "ss_item_sk"),
        ("store_sales", "ss_ticket_number"),
        ("store_returns", "sr_ticket_number"),
        ("web_sales", "ws_bill_customer_sk"),
        ("web_sales", "ws_order_number"),
        ("web_returns", "wr_order_number"),
        ("catalog_sales", "cs_ship_customer_sk"),
        ("catalog_sales", "cs_order_number"),
        ("catalog_returns", "cr_order_number"),
        ("date_dim", "d_year"),
    ] {
        db.create_index(table, column)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded() -> (Database, Generator) {
        let g = Generator::new(0.01);
        let db = Database::new();
        load_initial_population(&db, &g).unwrap();
        (db, g)
    }

    #[test]
    fn twelve_operations_run() {
        let (db, g) = loaded();
        let report = run_maintenance(&db, &g, 0).unwrap();
        assert_eq!(report.ops.len(), 12);
        let names: Vec<&str> = report.ops.iter().map(|o| o.name).collect();
        assert_eq!(names, OPERATIONS.to_vec());
        assert!(report.total_rows() > 0);
    }

    #[test]
    fn non_history_update_changes_rows_in_place() {
        let (db, g) = loaded();
        let before = db.row_count("customer");
        let rep = update_non_history_dimension(&db, &g, "customer", 0).unwrap();
        assert!(rep.updated > 0, "no customers updated");
        assert_eq!(rep.inserted, 0);
        assert_eq!(
            db.row_count("customer"),
            before,
            "row count must not change"
        );
    }

    #[test]
    fn history_update_versions_rows() {
        let (db, g) = loaded();
        let before = db.row_count("item");
        let when = refresh_date(&g, 0);
        let rep = update_history_dimension(&db, &g, "item", 0, when).unwrap();
        assert!(rep.updated > 0);
        assert_eq!(rep.updated, rep.inserted, "one new revision per closed one");
        assert_eq!(db.row_count("item"), before + rep.inserted);

        // Exactly one open revision per business key, still.
        let def = g.schema().table("item").unwrap();
        let end_idx = def.column_index("i_rec_end_date").unwrap();
        let t = db.table("item").unwrap();
        let mut open: HashMap<String, u32> = HashMap::new();
        for row in &t.rows {
            if row[end_idx].is_null() {
                *open
                    .entry(row[1].as_str().unwrap().to_string())
                    .or_default() += 1;
            }
        }
        assert!(open.values().all(|&c| c == 1), "broken revision chains");
        // New revisions carry the refresh date.
        let start_idx = def.column_index("i_rec_start_date").unwrap();
        assert!(t.rows.iter().any(|r| r[start_idx] == Value::Date(when)));
    }

    #[test]
    fn fact_insert_resolves_to_current_surrogates() {
        let (db, g) = loaded();
        // First version some items so "current" differs from "any".
        let when = refresh_date(&g, 0);
        update_history_dimension(&db, &g, "item", 0, when).unwrap();
        let ss_before = db.row_count("store_sales");
        let rep = insert_channel(
            &db,
            &g,
            "insert_store_channel",
            &["store_sales", "store_returns"],
            0,
        )
        .unwrap();
        assert!(rep.inserted > 0);
        // All inserted item keys resolve to open revisions.
        let current = current_surrogates(&db, &g, "item").unwrap();
        let valid: std::collections::HashSet<i64> = current.values().copied().collect();
        let def = g.schema().table("store_sales").unwrap();
        let item_col = def.column_index("ss_item_sk").unwrap();
        let t = db.table("store_sales").unwrap();
        assert!(t.rows.len() > ss_before, "no store_sales inserted");
        for row in t.rows.iter().skip(ss_before) {
            let sk = row[item_col].as_int().unwrap();
            assert!(
                valid.contains(&sk),
                "inserted fact references closed revision {sk}"
            );
        }
    }

    #[test]
    fn delete_removes_exactly_the_date_range() {
        let (db, g) = loaded();
        let (lo, hi) = g.refresh_delete_range(0);
        let def = g.schema().table("store_sales").unwrap();
        let col = def.column_index("ss_sold_date_sk").unwrap();
        let in_range = |t: &tpcds_engine::Table| {
            t.rows
                .iter()
                .filter(|r| {
                    r[col]
                        .as_int()
                        .map(|sk| sk >= lo.date_sk() && sk <= hi.date_sk())
                        .unwrap_or(false)
                })
                .count()
        };
        let before = in_range(&db.table("store_sales").unwrap());
        let rep = delete_fact_range(&db, &g, 0).unwrap();
        assert!(rep.deleted >= before);
        let t = db.table("store_sales").unwrap();
        assert_eq!(in_range(&t), 0, "rows in the deleted range survived");
    }

    #[test]
    fn maintenance_commits_one_version_per_op_and_rebuilds_only_mutated() {
        let (db, g) = loaded();
        let v0 = db.version();
        // date_dim is never touched by DM: its shadow must survive the
        // whole refresh run as the very same Arc (no global re-shadow).
        let date_dim_before = db.table("date_dim").unwrap().columnar().unwrap();
        let report = run_maintenance(&db, &g, 0).unwrap();
        assert_eq!(
            db.version(),
            v0 + report.ops.len() as u64,
            "each op commits exactly one snapshot version"
        );
        assert!(std::sync::Arc::ptr_eq(
            &db.table("date_dim").unwrap().columnar().unwrap(),
            &date_dim_before
        ));
        // A mutated table's published snapshot carries a fresh shadow and
        // fresh statistics — nothing left stale to refresh.
        let cust = db.table("customer").unwrap();
        assert_eq!(cust.columnar().unwrap().rows, cust.rows.len());
        assert!(cust.stats().is_some());
        assert_eq!(db.refresh_columnar(), 0);
        assert_eq!(db.refresh_stats(), 0);
    }

    #[test]
    fn failed_op_mid_run_leaves_published_snapshot_untouched() {
        let (db, g) = loaded();
        run_maintenance(&db, &g, 0).unwrap();
        let v = db.version();
        let rows = db.total_rows();
        let item_shadow = db.table("item").unwrap().columnar().unwrap();
        // A writer that dies half-way through staging a batch: the panic
        // unwinds out of the transaction without committing.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut txn = db.begin();
            let t = txn.table_mut("item").unwrap();
            let half = t.rows.len() / 2;
            let mut n = 0;
            t.update_each(|row| {
                n += 1;
                if n > half {
                    panic!("DM writer dies mid-batch");
                }
                row[0] = Value::Int(-1);
                true
            });
            txn.commit();
        }));
        assert!(result.is_err());
        assert_eq!(db.version(), v, "aborted DM must not publish");
        assert_eq!(db.total_rows(), rows);
        assert!(std::sync::Arc::ptr_eq(
            &db.table("item").unwrap().columnar().unwrap(),
            &item_shadow
        ));
        // The writer lock recovered: the next refresh commits normally.
        let rep = run_maintenance(&db, &g, 1).unwrap();
        assert_eq!(rep.ops.len(), 12);
        assert_eq!(db.version(), v + 12);
    }

    #[test]
    fn second_refresh_differs_and_still_works() {
        let (db, g) = loaded();
        let r1 = run_maintenance(&db, &g, 1).unwrap();
        let r2 = run_maintenance(&db, &g, 2).unwrap();
        assert_eq!(r1.ops.len(), r2.ops.len());
        assert!(r1.total_rows() > 0 && r2.total_rows() > 0);
    }
}
