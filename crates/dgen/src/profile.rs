//! Data-set profiling: per-column statistics over generated data —
//! the "statistic collection" the paper says the data set must challenge
//! (§3: "challenge the statistic gathering algorithms and the query
//! optimizer").

use crate::generator::Generator;
use std::collections::HashSet;
use tpcds_types::Value;

/// Statistics of one column over a generated sample.
#[derive(Debug, Clone)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Fraction of NULL values.
    pub null_rate: f64,
    /// Number of distinct non-null values in the sample.
    pub distinct: usize,
    /// Smallest non-null value (by SQL ordering).
    pub min: Option<Value>,
    /// Largest non-null value.
    pub max: Option<Value>,
}

/// Statistics of one table.
#[derive(Debug, Clone)]
pub struct TableProfile {
    /// Table name.
    pub table: String,
    /// Rows profiled.
    pub rows: usize,
    /// Per-column statistics.
    pub columns: Vec<ColumnProfile>,
}

impl TableProfile {
    /// Profiles up to `limit` rows of `table`.
    pub fn collect(generator: &Generator, table: &str, limit: u64) -> TableProfile {
        let def = generator
            .schema()
            .table(table)
            .unwrap_or_else(|| panic!("unknown table {table}"));
        let n = generator.row_count(table).min(limit);
        let rows = generator.generate_range(table, 0, n);
        let mut columns = Vec::with_capacity(def.width());
        for (i, col) in def.columns.iter().enumerate() {
            let mut nulls = 0usize;
            let mut distinct: HashSet<Value> = HashSet::new();
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            for row in &rows {
                let v = &row[i];
                if v.is_null() {
                    nulls += 1;
                    continue;
                }
                distinct.insert(v.clone());
                let smaller = min
                    .as_ref()
                    .map(|m| v.sort_cmp(m) == std::cmp::Ordering::Less)
                    .unwrap_or(true);
                if smaller {
                    min = Some(v.clone());
                }
                let larger = max
                    .as_ref()
                    .map(|m| v.sort_cmp(m) == std::cmp::Ordering::Greater)
                    .unwrap_or(true);
                if larger {
                    max = Some(v.clone());
                }
            }
            columns.push(ColumnProfile {
                name: col.name.to_string(),
                null_rate: if rows.is_empty() {
                    0.0
                } else {
                    nulls as f64 / rows.len() as f64
                },
                distinct: distinct.len(),
                min,
                max,
            });
        }
        TableProfile {
            table: table.to_string(),
            rows: rows.len(),
            columns,
        }
    }

    /// Renders the profile as an aligned text report.
    pub fn to_report(&self) -> String {
        let mut out = format!("table {} ({} rows profiled)\n", self.table, self.rows);
        let w = self.columns.iter().map(|c| c.name.len()).max().unwrap_or(6);
        out.push_str(&format!(
            "{:<w$}  {:>7}  {:>9}  {:<12}  {:<12}\n",
            "column", "null%", "distinct", "min", "max"
        ));
        for c in &self.columns {
            let fmt = |v: &Option<Value>| {
                v.as_ref()
                    .map(|x| {
                        let s = x.to_flat();
                        if s.chars().count() > 12 {
                            let head: String = s.chars().take(11).collect();
                            format!("{head}…")
                        } else {
                            s
                        }
                    })
                    .unwrap_or_default()
            };
            out.push_str(&format!(
                "{:<w$}  {:>6.1}%  {:>9}  {:<12}  {:<12}\n",
                c.name,
                100.0 * c.null_rate,
                c.distinct,
                fmt(&c.min),
                fmt(&c.max)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surrogate_keys_profile_dense_and_non_null() {
        let g = Generator::new(0.01);
        let p = TableProfile::collect(&g, "customer", 10_000);
        let sk = &p.columns[0];
        assert_eq!(sk.name, "c_customer_sk");
        assert_eq!(sk.null_rate, 0.0);
        assert_eq!(sk.distinct, p.rows, "surrogate keys unique");
        assert_eq!(sk.min, Some(Value::Int(1)));
        assert_eq!(sk.max, Some(Value::Int(p.rows as i64)));
    }

    #[test]
    fn nullable_fact_columns_have_nulls() {
        let g = Generator::new(0.02);
        let p = TableProfile::collect(&g, "store_sales", 10_000);
        let cust = p
            .columns
            .iter()
            .find(|c| c.name == "ss_customer_sk")
            .expect("col");
        assert!(cust.null_rate > 0.0, "fact FK columns carry NULLs");
        assert!(cust.null_rate < 0.2, "but only a few percent");
        let item = p
            .columns
            .iter()
            .find(|c| c.name == "ss_item_sk")
            .expect("col");
        assert_eq!(item.null_rate, 0.0, "PK parts are never NULL");
    }

    #[test]
    fn low_cardinality_domains_profile_small() {
        let g = Generator::new(0.01);
        let p = TableProfile::collect(&g, "customer_demographics", 5_000);
        let gender = p
            .columns
            .iter()
            .find(|c| c.name == "cd_gender")
            .expect("col");
        assert_eq!(gender.distinct, 2);
        let rating = p
            .columns
            .iter()
            .find(|c| c.name == "cd_credit_rating")
            .expect("col");
        assert_eq!(rating.distinct, 4);
    }

    #[test]
    fn report_renders() {
        let g = Generator::new(0.005);
        let p = TableProfile::collect(&g, "income_band", 100);
        let r = p.to_report();
        assert!(r.contains("ib_lower_bound"), "{r}");
        assert!(r.contains("distinct"));
    }
}
