//! Poison-ignoring wrappers over `std::sync` locks.
//!
//! The whole workspace standardizes on `std::sync` primitives — the build
//! must resolve with no registry access, so third-party lock crates are
//! out. These wrappers keep the ergonomic guard-returning API the engine's
//! call sites were written against (`lock()` / `read()` / `write()` with
//! no `Result`): poisoning is treated as recoverable, because a panicking
//! query thread must not wedge the shared catalog for every later
//! statement. The data protected here is either per-statement scratch
//! (subquery memo caches) or the catalog, whose operations keep rows
//! consistent at every step.

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly, recovering from
/// poisoning instead of propagating it.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly,
/// recovering from poisoning instead of propagating it.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock still usable after a panic");
    }

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
