//! Refresh-set generation for the data maintenance workload (paper §4.2).
//!
//! The extraction step of ETL "is assumed and represented in the benchmark
//! in the form of generated flat files". This module generates those
//! files' contents: dimension update rows keyed by *business key* (the
//! OLTP key), and fact insert rows whose maintained-dimension references
//! carry business keys that the load step must resolve to surrogate keys
//! (Figure 10). Keys into static dimensions stay pre-resolved surrogates,
//! as in dsdgen's update set.

use crate::generator::Generator;
use tpcds_types::{Row, Value};

/// How many dimension rows a refresh run updates at minimum (1% of the
/// table otherwise).
pub const MIN_DIM_UPDATES: u64 = 5;

/// Fraction of a fact table inserted per refresh run.
pub const FACT_INSERT_FRACTION: f64 = 0.01;

/// A dimension update row: the business key plus the full replacement row
/// (surrogate key and business key columns included; the surrogate key
/// value is a placeholder the maintenance step ignores).
#[derive(Debug, Clone)]
pub struct DimensionUpdate {
    /// Business key of the entity to update.
    pub business_key: String,
    /// Replacement attribute values, in table column order.
    pub row: Row,
}

impl Generator {
    /// Number of update rows for a dimension at this scale factor.
    pub fn refresh_update_count(&self, table: &str) -> u64 {
        (self.row_count(table) / 100).max(MIN_DIM_UPDATES)
    }

    /// Generates the update set for a maintained dimension. Every update
    /// targets an existing business key; the replacement row is a freshly
    /// generated revision (deterministic in `refresh_seq`).
    pub fn refresh_dimension(&self, table: &str, refresh_seq: u32) -> Vec<DimensionUpdate> {
        let t = self
            .schema()
            .table(table)
            .unwrap_or_else(|| panic!("unknown table {table}"));
        let bk_col = t
            .business_key
            .unwrap_or_else(|| panic!("{table} has no business key"));
        let bk_idx = t.column_index(bk_col).expect("business key exists");
        let rows = self.row_count(table);
        let n = self.refresh_update_count(table);
        let mut out = Vec::with_capacity(n as usize);
        for k in 0..n {
            // Pick an existing surrogate deterministically, then rewrite
            // that entity's attributes by regenerating the row at a
            // refresh-specific coordinate.
            let mut rng = self.rng(table, 100 + refresh_seq as u64, k);
            let target = rng.uniform_i64(0, rows as i64 - 1) as u64;
            let base = self.row(table, target);
            let business_key = base[bk_idx]
                .as_str()
                .expect("business keys are strings")
                .to_string();
            // New attribute values: the same entity generated at a shifted
            // coordinate (beyond the initial population) gives a plausible
            // changed revision.
            let shift = (refresh_seq as u64 + 1) * rows + target;
            let mut row = self.row(table, rows + shift % rows);
            // Preserve identity columns.
            row[bk_idx] = Value::str(&business_key);
            out.push(DimensionUpdate { business_key, row });
        }
        out
    }

    /// Generates fact insert rows for a refresh run: the next 1% slice of
    /// the fact table beyond the initial population, with maintained
    /// dimension keys (item / customer / store) replaced by business keys
    /// for the load step to resolve.
    pub fn refresh_fact_inserts(&self, table: &str, refresh_seq: u32) -> Vec<Row> {
        let base_rows = self.row_count(table);
        let n = ((base_rows as f64 * FACT_INSERT_FRACTION) as u64).max(10);
        let start = base_rows + refresh_seq as u64 * n;
        let t = self.schema().table(table).expect("known table");
        let conversions: Vec<(usize, &str)> = t
            .foreign_keys
            .iter()
            .filter(|f| matches!(f.ref_table, "item" | "customer" | "store"))
            .map(|f| (t.column_index(f.column).expect("fk column"), f.ref_table))
            .collect();
        (start..start + n)
            .map(|r| {
                let mut row = self.row(table, r);
                for (col, ref_table) in &conversions {
                    if let Value::Int(sk) = row[*col] {
                        row[*col] = Value::str(self.business_key_of(ref_table, sk));
                    }
                }
                row
            })
            .collect()
    }

    /// The business key of surrogate `sk` in `table` (1-based surrogates).
    pub fn business_key_of(&self, table: &str, sk: i64) -> String {
        let idx = (sk - 1).max(0) as u64;
        let t = self.schema().table(table).expect("known table");
        if t.is_history_keeping() {
            Generator::business_id(Generator::scd_position(idx).business_key)
        } else {
            Generator::business_id(idx)
        }
    }

    /// The logically clustered date range a refresh run deletes from the
    /// fact tables (paper: "according to a randomly picked date range,
    /// fact table data are deleted"): two weeks, deterministic per
    /// refresh sequence.
    pub fn refresh_delete_range(&self, refresh_seq: u32) -> (tpcds_types::Date, tpcds_types::Date) {
        let mut rng = self.rng("date_dim", 900 + refresh_seq as u64, 0);
        let start = self
            .sales_dates
            .first_day()
            .add_days(rng.uniform_i64(0, 1700) as i32);
        (start, start.add_days(13))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn dimension_updates_target_existing_business_keys() {
        let g = Generator::new(0.01);
        let existing: HashSet<String> = g
            .generate("customer")
            .into_iter()
            .map(|r| r[1].as_str().unwrap().to_string())
            .collect();
        for u in g.refresh_dimension("customer", 0) {
            assert!(
                existing.contains(&u.business_key),
                "{} unknown",
                u.business_key
            );
            assert_eq!(u.row.len(), g.schema().table("customer").unwrap().width());
        }
    }

    #[test]
    fn history_dimension_updates_work_too() {
        let g = Generator::new(0.01);
        let updates = g.refresh_dimension("item", 1);
        assert!(!updates.is_empty());
        let existing: HashSet<String> = g
            .generate("item")
            .into_iter()
            .map(|r| r[1].as_str().unwrap().to_string())
            .collect();
        for u in &updates {
            assert!(existing.contains(&u.business_key));
        }
    }

    #[test]
    fn refresh_is_deterministic_and_varies_by_seq() {
        let g = Generator::new(0.01);
        let a = g.refresh_dimension("customer", 0);
        let b = g.refresh_dimension("customer", 0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.business_key, y.business_key);
            assert_eq!(x.row, y.row);
        }
        let c = g.refresh_dimension("customer", 1);
        let keys_a: Vec<_> = a.iter().map(|u| &u.business_key).collect();
        let keys_c: Vec<_> = c.iter().map(|u| &u.business_key).collect();
        assert_ne!(keys_a, keys_c);
    }

    #[test]
    fn fact_inserts_carry_business_keys() {
        let g = Generator::new(0.01);
        let t = g.schema().table("store_sales").unwrap();
        let item_col = t.column_index("ss_item_sk").unwrap();
        let cust_col = t.column_index("ss_customer_sk").unwrap();
        let rows = g.refresh_fact_inserts("store_sales", 0);
        assert!(!rows.is_empty());
        for row in &rows {
            assert!(row[item_col].as_str().is_some(), "item key not converted");
            // customer may be NULL (nullable FK); if present it is a string
            if !row[cust_col].is_null() {
                assert!(row[cust_col].as_str().is_some());
            }
        }
    }

    #[test]
    fn fact_inserts_disjoint_across_refresh_seqs() {
        let g = Generator::new(0.01);
        let t = g.schema().table("store_sales").unwrap();
        let ticket = t.column_index("ss_ticket_number").unwrap();
        let item = t.column_index("ss_item_sk").unwrap();
        // Primary-key pairs (item business key, ticket) must be disjoint
        // across refresh slices; bare tickets may straddle a boundary.
        let key = |r: &tpcds_types::Row| {
            (
                r[item].as_str().unwrap().to_string(),
                r[ticket].as_int().unwrap(),
            )
        };
        let a: HashSet<_> = g
            .refresh_fact_inserts("store_sales", 0)
            .iter()
            .map(key)
            .collect();
        let b: HashSet<_> = g
            .refresh_fact_inserts("store_sales", 1)
            .iter()
            .map(key)
            .collect();
        assert!(a.is_disjoint(&b), "refresh slices overlap");
    }

    #[test]
    fn delete_range_is_two_weeks_inside_window() {
        let g = Generator::new(0.01);
        let (lo, hi) = g.refresh_delete_range(0);
        assert_eq!(hi.days_since(&lo), 13);
        assert!(lo >= g.sales_dates().first_day());
        assert!(hi <= g.sales_dates().last_day());
        let (lo2, _) = g.refresh_delete_range(1);
        assert_ne!(lo, lo2);
    }

    #[test]
    fn business_key_of_matches_generated_rows() {
        let g = Generator::new(0.01);
        for table in ["customer", "item", "store"] {
            let rows = g.generate(table);
            for (i, row) in rows.iter().enumerate().take(200) {
                let sk = i as i64 + 1;
                assert_eq!(
                    g.business_key_of(table, sk),
                    row[1].as_str().unwrap(),
                    "{table} sk {sk}"
                );
            }
        }
    }
}
