//! `COVERAGE_8.json` — per-shape-class routing coverage of synthesized
//! workloads, and the regression gate over it.
//!
//! Where `COVERAGE_10.json` tracks the 99 fixed templates, this report
//! tracks the synthesizer's shape classes: for each class, how many
//! queries were generated, which best route they took under
//! `ColumnarMode::Auto`, and the fallback reason codes that kept plan
//! nodes off the columnar path. Classes that fall back to serial are a
//! measurable routing backlog instead of an unknown.

use tpcds_obs::json::Json;

use crate::gen::SynthConfig;
use crate::soak::{SoakConfig, SoakOutcome};

/// Builds the `COVERAGE_8.json` document from a soak outcome.
pub fn coverage_report(outcome: &SoakOutcome, cfg: &SoakConfig) -> Json {
    let SynthConfig {
        seed,
        max_join_depth,
        adversarial_frac,
    } = cfg.synth.clone();
    let mut classes: Vec<(String, Json)> = Vec::new();
    for (name, stat) in &outcome.classes {
        let routes: Vec<(String, Json)> = stat
            .routes
            .iter()
            .map(|(r, n)| (r.to_string(), Json::Int(*n as i64)))
            .collect();
        let fallbacks: Vec<(String, Json)> = stat
            .fallbacks
            .iter()
            .map(|(r, n)| (r.to_string(), Json::Int(*n as i64)))
            .collect();
        classes.push((
            name.to_string(),
            Json::Obj(vec![
                ("queries".to_string(), Json::Int(stat.queries as i64)),
                ("routes".to_string(), Json::Obj(routes)),
                (
                    "columnar_frac".to_string(),
                    Json::Float(stat.columnar_frac()),
                ),
                ("fallbacks".to_string(), Json::Obj(fallbacks)),
                (
                    "oracle_rows".to_string(),
                    Json::Int(stat.oracle_rows as i64),
                ),
                (
                    "empty_results".to_string(),
                    Json::Int(stat.empty_results as i64),
                ),
            ]),
        ));
    }
    Json::Obj(vec![
        ("report".to_string(), Json::Str("COVERAGE_8".to_string())),
        ("seed".to_string(), Json::Int(seed as i64)),
        (
            "max_join_depth".to_string(),
            Json::Int(max_join_depth as i64),
        ),
        (
            "adversarial_frac".to_string(),
            Json::Float(adversarial_frac),
        ),
        ("streams".to_string(), Json::Int(cfg.streams as i64)),
        ("via_server".to_string(), Json::Bool(cfg.via_server)),
        (
            "queries_run".to_string(),
            Json::Int(outcome.queries_run as i64),
        ),
        (
            "mismatches".to_string(),
            Json::Int(outcome.failures.len() as i64),
        ),
        (
            "versions_observed".to_string(),
            Json::Int(outcome.versions_observed.len() as i64),
        ),
        ("dm_rows".to_string(), Json::Int(outcome.dm_rows as i64)),
        ("classes".to_string(), Json::Obj(classes)),
    ])
}

/// Gates a fresh report against a committed baseline. Returns the list
/// of violations (empty = pass):
///
/// * `mismatches` must be zero;
/// * every class present in the baseline must still be generated;
/// * no class's `columnar_frac` may drop more than `tolerance` below its
///   baseline value (same seed → same queries, so real regressions show
///   up exactly; the tolerance only absorbs stats-dependent literals
///   shifting a handful of routing decisions).
pub fn gate(baseline: &Json, current: &Json, tolerance: f64) -> Vec<String> {
    let mut errors = Vec::new();
    let mismatches = current
        .get("mismatches")
        .and_then(Json::as_i64)
        .unwrap_or(-1);
    if mismatches != 0 {
        errors.push(format!(
            "differential mismatches: {mismatches} (must be 0; see minimized reproducers)"
        ));
    }
    let (Some(Json::Obj(base_classes)), Some(Json::Obj(cur_classes))) =
        (baseline.get("classes"), current.get("classes"))
    else {
        errors.push("baseline or current report has no classes object".to_string());
        return errors;
    };
    for (name, base) in base_classes {
        let Some(cur) = cur_classes.iter().find(|(n, _)| n == name).map(|(_, c)| c) else {
            errors.push(format!("shape class {name} disappeared from the report"));
            continue;
        };
        if cur.get("queries").and_then(Json::as_i64).unwrap_or(0) == 0 {
            errors.push(format!("shape class {name} generated no queries"));
            continue;
        }
        let base_frac = base
            .get("columnar_frac")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let cur_frac = cur
            .get("columnar_frac")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if cur_frac + tolerance < base_frac {
            errors.push(format!(
                "shape class {name}: columnar_frac regressed {base_frac:.3} -> {cur_frac:.3} \
                 (tolerance {tolerance:.3})"
            ));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soak::ClassStat;

    fn outcome_with(frac_num: u64, queries: u64) -> SoakOutcome {
        let mut o = SoakOutcome::default();
        let mut stat = ClassStat {
            queries,
            ..ClassStat::default()
        };
        stat.routes.insert("columnar", frac_num);
        stat.routes.insert("serial", queries - frac_num);
        o.classes.insert("join_agg", stat);
        o.queries_run = queries;
        o
    }

    #[test]
    fn gate_passes_identical_reports() {
        let cfg = SoakConfig::default();
        let report = coverage_report(&outcome_with(8, 10), &cfg);
        assert!(gate(&report, &report, 0.02).is_empty());
    }

    #[test]
    fn gate_flags_columnar_regression_and_mismatches() {
        let cfg = SoakConfig::default();
        let base = coverage_report(&outcome_with(8, 10), &cfg);
        let mut worse = outcome_with(4, 10);
        worse.failures.push(crate::soak::Failure {
            qid: 1,
            class: "join_agg",
            sql: "select 1".to_string(),
            minimized: "select 1".to_string(),
            detail: "boom".to_string(),
        });
        let cur = coverage_report(&worse, &cfg);
        let errors = gate(&base, &cur, 0.02);
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("mismatches")));
        assert!(errors.iter().any(|e| e.contains("columnar_frac regressed")));
    }

    #[test]
    fn gate_flags_vanished_class() {
        let cfg = SoakConfig::default();
        let base = coverage_report(&outcome_with(8, 10), &cfg);
        let cur = coverage_report(&SoakOutcome::default(), &cfg);
        assert!(gate(&base, &cur, 0.02)
            .iter()
            .any(|e| e.contains("disappeared")));
    }
}
