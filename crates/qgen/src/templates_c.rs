//! Query templates 51–75.

/// Template sources for queries 51–75.
pub fn sources() -> Vec<(u32, &'static str)> {
    vec![
        (51, Q51),
        (52, Q52),
        (53, Q53),
        (54, Q54),
        (55, Q55),
        (56, Q56),
        (57, Q57),
        (58, Q58),
        (59, Q59),
        (60, Q60),
        (61, Q61),
        (62, Q62),
        (63, Q63),
        (64, Q64),
        (65, Q65),
        (66, Q66),
        (67, Q67),
        (68, Q68),
        (69, Q69),
        (70, Q70),
        (71, Q71),
        (72, Q72),
        (73, Q73),
        (74, Q74),
        (75, Q75),
    ]
}

const Q51: &str = "\
-- Day when web cumulative sales first overtake store cumulative sales.
-- class: adhoc
define YEAR = year();
with web_v1 as (
  select ws_item_sk item_sk, d_date,
         sum(sum(ws_sales_price)) over
           (partition by ws_item_sk order by d_date) cume_sales
  from web_sales, date_dim
  where ws_sold_date_sk = d_date_sk and d_year = [YEAR]
    and ws_item_sk is not null
  group by ws_item_sk, d_date),
 store_v1 as (
  select ss_item_sk item_sk, d_date,
         sum(sum(ss_sales_price)) over
           (partition by ss_item_sk order by d_date) cume_sales
  from store_sales, date_dim
  where ss_sold_date_sk = d_date_sk and d_year = [YEAR]
    and ss_item_sk is not null
  group by ss_item_sk, d_date)
select item_sk, d_date, web_sales, store_sales
from (select case when web.item_sk is not null then web.item_sk
                  else store.item_sk end item_sk,
             case when web.d_date is not null then web.d_date
                  else store.d_date end d_date,
             web.cume_sales web_sales, store.cume_sales store_sales
      from web_v1 web
           left join store_v1 store on web.item_sk = store.item_sk
                                    and web.d_date = store.d_date) x
where web_sales > store_sales
order by item_sk, d_date
limit 100";

const Q52: &str = "\
-- Brand extended price for one month (the paper's Figure 6).
-- class: adhoc
define YEAR = year();
define MONTH = pick(months_high);
select dt.d_year, item.i_brand_id brand_id, item.i_brand brand,
       sum(ss_ext_sales_price) ext_price
from date_dim dt, store_sales, item
where dt.d_date_sk = store_sales.ss_sold_date_sk
  and store_sales.ss_item_sk = item.i_item_sk
  and item.i_manager_id = 1
  and dt.d_moy = [MONTH]
  and dt.d_year = [YEAR]
group by dt.d_year, item.i_brand, item.i_brand_id
order by dt.d_year, ext_price desc, brand_id
limit 100";

const Q53: &str = "\
-- Manufacturers deviating from their own quarterly average.
-- class: adhoc
define YEAR = year();
select * from (
  select i_manufact_id,
         sum(ss_sales_price) sum_sales,
         avg(sum(ss_sales_price)) over (partition by i_manufact_id) avg_quarterly_sales
  from item, store_sales, date_dim, store
  where ss_item_sk = i_item_sk
    and ss_sold_date_sk = d_date_sk
    and ss_store_sk = s_store_sk
    and d_year = [YEAR]
    and ((i_category in ('Books', 'Children', 'Electronics')
          and i_class in ('fiction', 'infants', 'audio'))
         or (i_category in ('Women', 'Music', 'Men')
             and i_class in ('dresses', 'pop', 'pants')))
  group by i_manufact_id, d_qoy) tmp1
where case when avg_quarterly_sales > 0
           then abs(sum_sales - avg_quarterly_sales) / avg_quarterly_sales
           else null end > 0.1
order by avg_quarterly_sales, sum_sales, i_manufact_id
limit 100";

const Q54: &str = "\
-- Customers who bought a category via catalog/web, then their store spend.
-- class: hybrid
define YEAR = uniform(1998, 2001);
define MONTH = pick(months_medium);
define CAT = pick(categories);
with my_customers as (
  select distinct c_customer_sk, c_current_addr_sk
  from (select cs_sold_date_sk sold_date_sk, cs_bill_customer_sk customer_sk,
               cs_item_sk item_sk
        from catalog_sales
        union all
        select ws_sold_date_sk sold_date_sk, ws_bill_customer_sk customer_sk,
               ws_item_sk item_sk
        from web_sales) cs_or_ws_sales,
       item, date_dim, customer
  where sold_date_sk = d_date_sk
    and item_sk = i_item_sk
    and i_category = '[CAT]'
    and c_customer_sk = cs_or_ws_sales.customer_sk
    and d_moy = [MONTH] and d_year = [YEAR]),
 my_revenue as (
  select c_customer_sk, sum(ss_ext_sales_price) revenue
  from my_customers, store_sales, date_dim
  where c_customer_sk = ss_customer_sk
    and ss_sold_date_sk = d_date_sk
    and d_year = [YEAR]
  group by c_customer_sk)
select cast(revenue / 50 as integer) segment, count(*) num_customers
from my_revenue
group by cast(revenue / 50 as integer)
order by segment, num_customers
limit 100";

const Q55: &str = "\
-- Brand revenue for one manager and month (q52 kin).
-- class: adhoc
define YEAR = year();
define MONTH = pick(months_high);
define MANAGER = uniform(1, 100);
select i_brand_id brand_id, i_brand brand, sum(ss_ext_sales_price) ext_price
from date_dim, store_sales, item
where d_date_sk = ss_sold_date_sk
  and ss_item_sk = i_item_sk
  and i_manager_id = [MANAGER]
  and d_moy = [MONTH]
  and d_year = [YEAR]
group by i_brand, i_brand_id
order by ext_price desc, brand_id
limit 100";

const Q56: &str = "\
-- Item revenue by color across all three channels.
-- class: hybrid
define YEAR = year();
define MONTH = pick(months_low);
define COLORS3 = list(colors, 3);
with ss as (
  select i_item_id, sum(ss_ext_sales_price) total_sales
  from store_sales, date_dim, item
  where i_item_id in (select i_item_id from item where i_color in ([COLORS3]))
    and ss_item_sk = i_item_sk
    and ss_sold_date_sk = d_date_sk
    and d_year = [YEAR] and d_moy = [MONTH]
  group by i_item_id),
 cs as (
  select i_item_id, sum(cs_ext_sales_price) total_sales
  from catalog_sales, date_dim, item
  where i_item_id in (select i_item_id from item where i_color in ([COLORS3]))
    and cs_item_sk = i_item_sk
    and cs_sold_date_sk = d_date_sk
    and d_year = [YEAR] and d_moy = [MONTH]
  group by i_item_id),
 ws as (
  select i_item_id, sum(ws_ext_sales_price) total_sales
  from web_sales, date_dim, item
  where i_item_id in (select i_item_id from item where i_color in ([COLORS3]))
    and ws_item_sk = i_item_sk
    and ws_sold_date_sk = d_date_sk
    and d_year = [YEAR] and d_moy = [MONTH]
  group by i_item_id)
select i_item_id, sum(total_sales) total_sales
from (select * from ss union all select * from cs union all select * from ws) t
group by i_item_id
order by total_sales, i_item_id
limit 100";

const Q57: &str = "\
-- Call-center catalog months deviating from the yearly average (q47 kin).
-- class: reporting
define YEAR = uniform(1999, 2001);
with v1 as (
  select i_category, i_brand, cc_name, d_year, d_moy,
         sum(cs_sales_price) sum_sales,
         avg(sum(cs_sales_price)) over
           (partition by i_category, i_brand, cc_name, d_year) avg_monthly_sales,
         rank() over
           (partition by i_category, i_brand, cc_name
            order by d_year, d_moy) rn
  from item, catalog_sales, date_dim, call_center
  where cs_item_sk = i_item_sk
    and cs_sold_date_sk = d_date_sk
    and cc_call_center_sk = cs_call_center_sk
    and (d_year = [YEAR]
         or (d_year = [YEAR] - 1 and d_moy = 12)
         or (d_year = [YEAR] + 1 and d_moy = 1))
  group by i_category, i_brand, cc_name, d_year, d_moy)
select v1.i_category, v1.i_brand, v1.cc_name, v1.d_year, v1.d_moy,
       v1.avg_monthly_sales, v1.sum_sales,
       v1_lag.sum_sales psum, v1_lead.sum_sales nsum
from v1, v1 v1_lag, v1 v1_lead
where v1.i_category = v1_lag.i_category
  and v1.i_category = v1_lead.i_category
  and v1.i_brand = v1_lag.i_brand
  and v1.i_brand = v1_lead.i_brand
  and v1.cc_name = v1_lag.cc_name
  and v1.cc_name = v1_lead.cc_name
  and v1.rn = v1_lag.rn + 1
  and v1.rn = v1_lead.rn - 1
  and v1.d_year = [YEAR]
  and v1.avg_monthly_sales > 0
  and abs(v1.sum_sales - v1.avg_monthly_sales) / v1.avg_monthly_sales > 0.1
order by v1.sum_sales - v1.avg_monthly_sales, v1.i_category, v1.i_brand
limit 100";

const Q58: &str = "\
-- Items selling comparably across all three channels in one week.
-- class: hybrid
define SDATE = date_in_zone(low);
with ss_items as (
  select i_item_id item_id, sum(ss_ext_sales_price) ss_item_rev
  from store_sales, item, date_dim
  where ss_item_sk = i_item_sk
    and d_date in (select d_date from date_dim
                   where d_week_seq = (select d_week_seq from date_dim
                                       where d_date = '[SDATE]'))
    and ss_sold_date_sk = d_date_sk
  group by i_item_id),
 cs_items as (
  select i_item_id item_id, sum(cs_ext_sales_price) cs_item_rev
  from catalog_sales, item, date_dim
  where cs_item_sk = i_item_sk
    and d_date in (select d_date from date_dim
                   where d_week_seq = (select d_week_seq from date_dim
                                       where d_date = '[SDATE]'))
    and cs_sold_date_sk = d_date_sk
  group by i_item_id),
 ws_items as (
  select i_item_id item_id, sum(ws_ext_sales_price) ws_item_rev
  from web_sales, item, date_dim
  where ws_item_sk = i_item_sk
    and d_date in (select d_date from date_dim
                   where d_week_seq = (select d_week_seq from date_dim
                                       where d_date = '[SDATE]'))
    and ws_sold_date_sk = d_date_sk
  group by i_item_id)
select ss_items.item_id, ss_item_rev, cs_item_rev, ws_item_rev,
       (ss_item_rev + cs_item_rev + ws_item_rev) / 3 average
from ss_items, cs_items, ws_items
where ss_items.item_id = cs_items.item_id
  and ss_items.item_id = ws_items.item_id
  and ss_item_rev between 0.9 * cs_item_rev and 1.1 * cs_item_rev
  and ss_item_rev between 0.9 * ws_item_rev and 1.1 * ws_item_rev
order by item_id, ss_item_rev
limit 100";

const Q59: &str = "\
-- Week-over-week store sales ratios a year apart.
-- class: adhoc
define WSEQ = uniform(5100, 5200);
with wss as (
  select d_week_seq, ss_store_sk,
         sum(case when d_day_name = 'Sunday' then ss_sales_price else null end) sun_sales,
         sum(case when d_day_name = 'Monday' then ss_sales_price else null end) mon_sales,
         sum(case when d_day_name = 'Friday' then ss_sales_price else null end) fri_sales
  from store_sales, date_dim
  where d_date_sk = ss_sold_date_sk
  group by d_week_seq, ss_store_sk)
select s_store_name1, s_store_id1, d_week_seq1,
       sun_sales1 / sun_sales2 r_sun, mon_sales1 / mon_sales2 r_mon,
       fri_sales1 / fri_sales2 r_fri
from (select s_store_name s_store_name1, wss.d_week_seq d_week_seq1,
             s_store_id s_store_id1, sun_sales sun_sales1,
             mon_sales mon_sales1, fri_sales fri_sales1
      from wss, store
      where ss_store_sk = s_store_sk
        and d_week_seq between [WSEQ] and [WSEQ] + 11) y,
     (select s_store_name s_store_name2, wss.d_week_seq d_week_seq2,
             s_store_id s_store_id2, sun_sales sun_sales2,
             mon_sales mon_sales2, fri_sales fri_sales2
      from wss, store
      where ss_store_sk = s_store_sk
        and d_week_seq between [WSEQ] + 52 and [WSEQ] + 63) x
where s_store_id1 = s_store_id2
  and d_week_seq1 = d_week_seq2 - 52
order by s_store_name1, s_store_id1, d_week_seq1
limit 100";

const Q60: &str = "\
-- Category revenue across channels for buyers in one timezone band.
-- class: hybrid
define YEAR = year();
define MONTH = pick(months_medium);
define CAT = pick(categories);
with ss as (
  select i_item_id, sum(ss_ext_sales_price) total_sales
  from store_sales, date_dim, customer_address, item
  where i_item_id in (select i_item_id from item where i_category = '[CAT]')
    and ss_item_sk = i_item_sk
    and ss_sold_date_sk = d_date_sk
    and d_year = [YEAR] and d_moy = [MONTH]
    and ss_addr_sk = ca_address_sk
    and ca_gmt_offset = -5
  group by i_item_id),
 cs as (
  select i_item_id, sum(cs_ext_sales_price) total_sales
  from catalog_sales, date_dim, customer_address, item
  where i_item_id in (select i_item_id from item where i_category = '[CAT]')
    and cs_item_sk = i_item_sk
    and cs_sold_date_sk = d_date_sk
    and d_year = [YEAR] and d_moy = [MONTH]
    and cs_bill_addr_sk = ca_address_sk
    and ca_gmt_offset = -5
  group by i_item_id),
 ws as (
  select i_item_id, sum(ws_ext_sales_price) total_sales
  from web_sales, date_dim, customer_address, item
  where i_item_id in (select i_item_id from item where i_category = '[CAT]')
    and ws_item_sk = i_item_sk
    and ws_sold_date_sk = d_date_sk
    and d_year = [YEAR] and d_moy = [MONTH]
    and ws_bill_addr_sk = ca_address_sk
    and ca_gmt_offset = -5
  group by i_item_id)
select i_item_id, sum(total_sales) total_sales
from (select * from ss union all select * from cs union all select * from ws) t
group by i_item_id
order by i_item_id, total_sales
limit 100";

const Q61: &str = "\
-- Promotional share of store revenue for one category and month.
-- class: adhoc
define YEAR = year();
define MONTH = pick(months_high);
define CAT = pick(categories);
select promotions, total,
       cast(promotions as decimal) / cast(total as decimal) * 100 promo_pct
from (select sum(ss_ext_sales_price) promotions
      from store_sales, store, promotion, date_dim, customer, customer_address, item
      where ss_sold_date_sk = d_date_sk
        and ss_store_sk = s_store_sk
        and ss_promo_sk = p_promo_sk
        and ss_customer_sk = c_customer_sk
        and ca_address_sk = c_current_addr_sk
        and ss_item_sk = i_item_sk
        and ca_gmt_offset = -5
        and i_category = '[CAT]'
        and (p_channel_dmail = 'Y' or p_channel_email = 'Y' or p_channel_tv = 'Y')
        and d_year = [YEAR] and d_moy = [MONTH]) promotional_sales,
     (select sum(ss_ext_sales_price) total
      from store_sales, store, date_dim, customer, customer_address, item
      where ss_sold_date_sk = d_date_sk
        and ss_store_sk = s_store_sk
        and ss_customer_sk = c_customer_sk
        and ca_address_sk = c_current_addr_sk
        and ss_item_sk = i_item_sk
        and ca_gmt_offset = -5
        and i_category = '[CAT]'
        and d_year = [YEAR] and d_moy = [MONTH]) all_sales
order by promotions, total
limit 100";

const Q62: &str = "\
-- Web shipping-lag buckets by warehouse, ship mode and site.
-- class: adhoc
define MONTHSEQ = uniform(1176, 1224);
select w_warehouse_name, sm_type, web_name,
       sum(case when ws_ship_date_sk - ws_sold_date_sk <= 30 then 1 else 0 end)
           d30,
       sum(case when ws_ship_date_sk - ws_sold_date_sk > 30
                 and ws_ship_date_sk - ws_sold_date_sk <= 60 then 1 else 0 end)
           d60,
       sum(case when ws_ship_date_sk - ws_sold_date_sk > 60 then 1 else 0 end)
           d90
from web_sales, warehouse, ship_mode, web_site, date_dim
where d_month_seq between [MONTHSEQ] and [MONTHSEQ] + 11
  and ws_ship_date_sk = d_date_sk
  and ws_warehouse_sk = w_warehouse_sk
  and ws_ship_mode_sk = sm_ship_mode_sk
  and ws_web_site_sk = web_site_sk
group by w_warehouse_name, sm_type, web_name
order by w_warehouse_name, sm_type, web_name
limit 100";

const Q63: &str = "\
-- Managers deviating from their own monthly average (q53 kin).
-- class: adhoc
define YEAR = year();
select * from (
  select i_manager_id,
         sum(ss_sales_price) sum_sales,
         avg(sum(ss_sales_price)) over (partition by i_manager_id) avg_monthly_sales
  from item, store_sales, date_dim, store
  where ss_item_sk = i_item_sk
    and ss_sold_date_sk = d_date_sk
    and ss_store_sk = s_store_sk
    and d_year = [YEAR]
    and ((i_category in ('Books', 'Children', 'Electronics')
          and i_class in ('fiction', 'infants', 'audio'))
         or (i_category in ('Women', 'Music', 'Men')
             and i_class in ('dresses', 'pop', 'pants')))
  group by i_manager_id, d_moy) tmp1
where case when avg_monthly_sales > 0
           then abs(sum_sales - avg_monthly_sales) / avg_monthly_sales
           else null end > 0.1
order by i_manager_id, avg_monthly_sales, sum_sales
limit 100";

const Q64: &str = "\
-- Store item purchases with returns, compared across two years.
-- class: adhoc
define YEAR = uniform(1998, 2001);
define PRICE = uniform(10, 60);
with cross_sales as (
  select i_product_name product_name, i_item_sk item_sk, d_year syear,
         count(*) cnt, sum(ss_wholesale_cost) s1, sum(ss_list_price) s2,
         sum(ss_coupon_amt) s3
  from store_sales, store_returns, date_dim, item
  where ss_item_sk = i_item_sk
    and ss_item_sk = sr_item_sk
    and ss_ticket_number = sr_ticket_number
    and ss_sold_date_sk = d_date_sk
    and i_current_price between [PRICE] and [PRICE] + 30
  group by i_product_name, i_item_sk, d_year)
select cs1.product_name, cs1.item_sk, cs1.syear, cs1.cnt, cs1.s1 s1_y1,
       cs2.s1 s1_y2, cs2.cnt cnt_y2
from cross_sales cs1, cross_sales cs2
where cs1.item_sk = cs2.item_sk
  and cs1.syear = [YEAR]
  and cs2.syear = [YEAR] + 1
  and cs2.cnt <= cs1.cnt
  and cs1.product_name = cs2.product_name
order by cs1.product_name, cs1.item_sk, cnt_y2
limit 100";

const Q65: &str = "\
-- Store items with revenue at most 10% of the store's average revenue.
-- class: adhoc
define MONTHSEQ = uniform(1176, 1224);
select s_store_name, i_item_desc, sc.revenue, i_current_price,
       i_wholesale_cost, i_brand
from store, item,
     (select ss_store_sk, avg(revenue) as ave
      from (select ss_store_sk, ss_item_sk, sum(ss_sales_price) as revenue
            from store_sales, date_dim
            where ss_sold_date_sk = d_date_sk
              and d_month_seq between [MONTHSEQ] and [MONTHSEQ] + 11
            group by ss_store_sk, ss_item_sk) sa
      group by ss_store_sk) sb,
     (select ss_store_sk, ss_item_sk, sum(ss_sales_price) as revenue
      from store_sales, date_dim
      where ss_sold_date_sk = d_date_sk
        and d_month_seq between [MONTHSEQ] and [MONTHSEQ] + 11
      group by ss_store_sk, ss_item_sk) sc
where sb.ss_store_sk = sc.ss_store_sk
  and sc.revenue <= 0.1 * sb.ave
  and s_store_sk = sc.ss_store_sk
  and i_item_sk = sc.ss_item_sk
order by s_store_name, i_item_desc, sc.revenue
limit 100";

const Q66: &str = "\
-- Warehouse shipping volumes by month and carrier time bands.
-- class: hybrid
define YEAR = year();
define TIME = uniform(10000, 50000);
select w_warehouse_name, w_warehouse_sq_ft, w_city, w_county, w_state,
       ship_carriers, year_, sum(jan_sales) jan_sales, sum(dec_sales) dec_sales
from (
  select w_warehouse_name, w_warehouse_sq_ft, w_city, w_county, w_state,
         'DHL,BARIAN' as ship_carriers, d_year as year_,
         sum(case when d_moy = 1 then ws_ext_sales_price * ws_quantity
                  else 0 end) as jan_sales,
         sum(case when d_moy = 12 then ws_ext_sales_price * ws_quantity
                  else 0 end) as dec_sales
  from web_sales, warehouse, date_dim, time_dim, ship_mode
  where ws_warehouse_sk = w_warehouse_sk
    and ws_sold_date_sk = d_date_sk
    and ws_sold_time_sk = t_time_sk
    and ws_ship_mode_sk = sm_ship_mode_sk
    and d_year = [YEAR]
    and t_time between [TIME] and [TIME] + 28800
    and sm_carrier in ('DHL', 'BARIAN')
  group by w_warehouse_name, w_warehouse_sq_ft, w_city, w_county, w_state, d_year
  union all
  select w_warehouse_name, w_warehouse_sq_ft, w_city, w_county, w_state,
         'DHL,BARIAN' as ship_carriers, d_year as year_,
         sum(case when d_moy = 1 then cs_ext_sales_price * cs_quantity
                  else 0 end) as jan_sales,
         sum(case when d_moy = 12 then cs_ext_sales_price * cs_quantity
                  else 0 end) as dec_sales
  from catalog_sales, warehouse, date_dim, time_dim, ship_mode
  where cs_warehouse_sk = w_warehouse_sk
    and cs_sold_date_sk = d_date_sk
    and cs_sold_time_sk = t_time_sk
    and cs_ship_mode_sk = sm_ship_mode_sk
    and d_year = [YEAR]
    and t_time between [TIME] and [TIME] + 28800
    and sm_carrier in ('DHL', 'BARIAN')
  group by w_warehouse_name, w_warehouse_sq_ft, w_city, w_county, w_state, d_year) x
group by w_warehouse_name, w_warehouse_sq_ft, w_city, w_county, w_state,
         ship_carriers, year_
order by w_warehouse_name
limit 100";

const Q67: &str = "\
-- Top store items per category over the full rollup hierarchy.
-- class: adhoc
define MONTHSEQ = uniform(1176, 1224);
select * from (
  select i_category, i_class, i_brand, i_product_name, d_year, d_moy, s_store_id,
         sumsales,
         rank() over (partition by i_category order by sumsales desc) rk
  from (select i_category, i_class, i_brand, i_product_name, d_year, d_moy,
               s_store_id, sum(coalesce(ss_sales_price * ss_quantity, 0)) sumsales
        from store_sales, date_dim, store, item
        where ss_sold_date_sk = d_date_sk
          and ss_item_sk = i_item_sk
          and ss_store_sk = s_store_sk
          and d_month_seq between [MONTHSEQ] and [MONTHSEQ] + 11
        group by rollup(i_category, i_class, i_brand, i_product_name, d_year,
                        d_moy, s_store_id)) dw1) dw2
where rk <= 10
order by i_category, i_class, i_brand, i_product_name, d_year, rk
limit 100";

const Q68: &str = "\
-- High-value out-of-town baskets in two cities (q46 kin).
-- class: adhoc
define YEAR = uniform(1998, 2000);
define CITIES2 = list(cities, 2);
define DEP = uniform(0, 9);
select c_last_name, c_first_name, ca_city, bought_city, ss_ticket_number,
       extended_price, extended_tax, list_price
from (select ss_ticket_number, ss_customer_sk, ca_city bought_city,
             sum(ss_ext_sales_price) extended_price,
             sum(ss_ext_list_price) list_price,
             sum(ss_ext_tax) extended_tax
      from store_sales, date_dim, store, household_demographics, customer_address
      where ss_sold_date_sk = d_date_sk
        and ss_store_sk = s_store_sk
        and ss_hdemo_sk = hd_demo_sk
        and ss_addr_sk = ca_address_sk
        and d_dom between 1 and 2
        and (hd_dep_count = [DEP] or hd_vehicle_count = 3)
        and d_year in ([YEAR], [YEAR] + 1, [YEAR] + 2)
        and s_city in ([CITIES2])
      group by ss_ticket_number, ss_customer_sk, ss_addr_sk, ca_city) dn,
     customer, customer_address current_addr
where ss_customer_sk = c_customer_sk
  and customer.c_current_addr_sk = current_addr.ca_address_sk
  and current_addr.ca_city <> bought_city
order by c_last_name, ss_ticket_number
limit 100";

const Q69: &str = "\
-- Demographics of store-only customers in selected states.
-- class: hybrid
define YEAR = year();
define STATES3B = list(states, 3);
select cd_gender, cd_marital_status, cd_education_status, count(*) cnt1,
       cd_purchase_estimate, count(*) cnt2, cd_credit_rating, count(*) cnt3
from customer c, customer_address ca, customer_demographics
where c.c_current_addr_sk = ca.ca_address_sk
  and ca_state in ([STATES3B])
  and cd_demo_sk = c.c_current_cdemo_sk
  and exists (select ss_sold_date_sk from store_sales, date_dim
              where c.c_customer_sk = ss_customer_sk
                and ss_sold_date_sk = d_date_sk
                and d_year = [YEAR] and d_moy between 1 and 3)
  and not exists (select ws_sold_date_sk from web_sales, date_dim
                  where c.c_customer_sk = ws_bill_customer_sk
                    and ws_sold_date_sk = d_date_sk
                    and d_year = [YEAR] and d_moy between 1 and 3)
  and not exists (select cs_sold_date_sk from catalog_sales, date_dim
                  where c.c_customer_sk = cs_ship_customer_sk
                    and cs_sold_date_sk = d_date_sk
                    and d_year = [YEAR] and d_moy between 1 and 3)
group by cd_gender, cd_marital_status, cd_education_status,
         cd_purchase_estimate, cd_credit_rating
order by cd_gender, cd_marital_status, cd_education_status
limit 100";

const Q70: &str = "\
-- Store profit rollup over the states ranked best by net profit.
-- class: adhoc
define MONTHSEQ = uniform(1176, 1224);
select sum(ss_net_profit) as total_sum, s_state, s_county,
       grouping(s_state) + grouping(s_county) as lochierarchy,
       rank() over (
         partition by grouping(s_state) + grouping(s_county),
                      case when grouping(s_county) = 0 then s_state end
         order by sum(ss_net_profit) desc) as rank_within_parent
from store_sales, date_dim d1, store
where d1.d_month_seq between [MONTHSEQ] and [MONTHSEQ] + 11
  and d1.d_date_sk = ss_sold_date_sk
  and s_store_sk = ss_store_sk
  and s_state in (select s_state from (
        select s_state as s_state,
               rank() over (partition by s_state order by sum(ss_net_profit) desc) ranking
        from store_sales, store, date_dim
        where d_month_seq between [MONTHSEQ] and [MONTHSEQ] + 11
          and d_date_sk = ss_sold_date_sk
          and s_store_sk = ss_store_sk
        group by s_state) tmp1
      where ranking <= 5)
group by rollup(s_state, s_county)
order by lochierarchy desc, rank_within_parent
limit 100";

const Q71: &str = "\
-- Brand revenue by meal-time hour across all three channels.
-- class: hybrid
define YEAR = year();
define MONTH = pick(months_high);
define MANAGER = uniform(1, 100);
select i_brand_id brand_id, i_brand brand, t_hour, t_minute,
       sum(ext_price) ext_price
from item,
     (select ws_ext_sales_price as ext_price, ws_sold_date_sk as sold_date_sk,
             ws_item_sk as sold_item_sk, ws_sold_time_sk as time_sk
      from web_sales, date_dim
      where d_date_sk = ws_sold_date_sk and d_moy = [MONTH] and d_year = [YEAR]
      union all
      select cs_ext_sales_price as ext_price, cs_sold_date_sk as sold_date_sk,
             cs_item_sk as sold_item_sk, cs_sold_time_sk as time_sk
      from catalog_sales, date_dim
      where d_date_sk = cs_sold_date_sk and d_moy = [MONTH] and d_year = [YEAR]
      union all
      select ss_ext_sales_price as ext_price, ss_sold_date_sk as sold_date_sk,
             ss_item_sk as sold_item_sk, ss_sold_time_sk as time_sk
      from store_sales, date_dim
      where d_date_sk = ss_sold_date_sk and d_moy = [MONTH] and d_year = [YEAR]) tmp,
     time_dim
where sold_item_sk = i_item_sk
  and i_manager_id = [MANAGER]
  and time_sk = t_time_sk
  and (t_meal_time = 'breakfast' or t_meal_time = 'dinner')
group by i_brand, i_brand_id, t_hour, t_minute
order by ext_price desc, brand_id
limit 100";

const Q72: &str = "\
-- Catalog orders where inventory could not cover the ordered quantity.
-- class: reporting
define YEAR = uniform(1998, 2001);
define BP = pick(buy_potential);
select i_item_desc, w_warehouse_name, d1.d_week_seq,
       sum(case when p_promo_sk is null then 1 else 0 end) no_promo,
       sum(case when p_promo_sk is not null then 1 else 0 end) promo,
       count(*) total_cnt
from catalog_sales
     join inventory on cs_item_sk = inv_item_sk
     join warehouse on w_warehouse_sk = inv_warehouse_sk
     join item on i_item_sk = cs_item_sk
     join customer_demographics on cs_bill_cdemo_sk = cd_demo_sk
     join household_demographics on cs_bill_hdemo_sk = hd_demo_sk
     join date_dim d1 on cs_sold_date_sk = d1.d_date_sk
     join date_dim d2 on inv_date_sk = d2.d_date_sk
     join date_dim d3 on cs_ship_date_sk = d3.d_date_sk
     left join promotion on cs_promo_sk = p_promo_sk
     left join catalog_returns on cr_item_sk = cs_item_sk
                               and cr_order_number = cs_order_number
where d1.d_week_seq = d2.d_week_seq
  and inv_quantity_on_hand < cs_quantity
  and d3.d_date > d1.d_date + 3
  and hd_buy_potential = '[BP]'
  and d1.d_year = [YEAR]
  and cd_marital_status = 'D'
group by i_item_desc, w_warehouse_name, d1.d_week_seq
order by total_cnt desc, i_item_desc, w_warehouse_name, d_week_seq
limit 100";

const Q73: &str = "\
-- Customers with 1-5 item baskets on month-boundary days (q34 kin).
-- class: adhoc
define YEAR = uniform(1998, 2000);
define BP2 = list(buy_potential, 2);
select c_last_name, c_first_name, c_salutation, c_preferred_cust_flag,
       ss_ticket_number, cnt
from (select ss_ticket_number, ss_customer_sk, count(*) cnt
      from store_sales, date_dim, store, household_demographics
      where ss_sold_date_sk = d_date_sk
        and ss_store_sk = s_store_sk
        and ss_hdemo_sk = hd_demo_sk
        and d_dom between 1 and 2
        and hd_buy_potential in ([BP2])
        and hd_vehicle_count > 0
        and d_year in ([YEAR], [YEAR] + 1, [YEAR] + 2)
      group by ss_ticket_number, ss_customer_sk) dj, customer
where ss_customer_sk = c_customer_sk
  and cnt between 1 and 5
order by cnt desc, c_last_name asc
limit 100";

const Q74: &str = "\
-- Customers whose web spend grew faster than store spend (q11 kin).
-- class: adhoc
define YEAR = uniform(1998, 2001);
with year_total as (
  select c_customer_id customer_id, c_first_name customer_first_name,
         c_last_name customer_last_name, d_year year_,
         sum(ss_net_paid) year_total, 's' sale_type
  from customer, store_sales, date_dim
  where c_customer_sk = ss_customer_sk and ss_sold_date_sk = d_date_sk
    and d_year in ([YEAR], [YEAR] + 1)
  group by c_customer_id, c_first_name, c_last_name, d_year
  union all
  select c_customer_id customer_id, c_first_name customer_first_name,
         c_last_name customer_last_name, d_year year_,
         sum(ws_net_paid) year_total, 'w' sale_type
  from customer, web_sales, date_dim
  where c_customer_sk = ws_bill_customer_sk and ws_sold_date_sk = d_date_sk
    and d_year in ([YEAR], [YEAR] + 1)
  group by c_customer_id, c_first_name, c_last_name, d_year)
select t_s_secyear.customer_id, t_s_secyear.customer_first_name,
       t_s_secyear.customer_last_name
from year_total t_s_firstyear, year_total t_s_secyear,
     year_total t_w_firstyear, year_total t_w_secyear
where t_s_secyear.customer_id = t_s_firstyear.customer_id
  and t_s_firstyear.customer_id = t_w_secyear.customer_id
  and t_s_firstyear.customer_id = t_w_firstyear.customer_id
  and t_s_firstyear.sale_type = 's' and t_w_firstyear.sale_type = 'w'
  and t_s_secyear.sale_type = 's' and t_w_secyear.sale_type = 'w'
  and t_s_firstyear.year_ = [YEAR] and t_s_secyear.year_ = [YEAR] + 1
  and t_w_firstyear.year_ = [YEAR] and t_w_secyear.year_ = [YEAR] + 1
  and t_s_firstyear.year_total > 0 and t_w_firstyear.year_total > 0
  and t_w_secyear.year_total / t_w_firstyear.year_total >
      t_s_secyear.year_total / t_s_firstyear.year_total
order by 1, 1, 1
limit 100";

const Q75: &str = "\
-- Manufacturer sales minus returns, current vs prior year, all channels.
-- class: hybrid
define YEAR = uniform(1999, 2001);
define CAT = pick(categories);
with all_sales as (
  select d_year, i_brand_id, i_class_id, i_category_id, i_manufact_id,
         sum(sales_cnt) sales_cnt, sum(sales_amt) sales_amt
  from (
    select d_year, i_brand_id, i_class_id, i_category_id, i_manufact_id,
           cs_quantity - coalesce(cr_return_quantity, 0) sales_cnt,
           cs_ext_sales_price - coalesce(cr_return_amount, 0.0) sales_amt
    from catalog_sales
         join item on i_item_sk = cs_item_sk
         join date_dim on d_date_sk = cs_sold_date_sk
         left join catalog_returns on cs_order_number = cr_order_number
                                   and cs_item_sk = cr_item_sk
    where i_category = '[CAT]'
    union all
    select d_year, i_brand_id, i_class_id, i_category_id, i_manufact_id,
           ss_quantity - coalesce(sr_return_quantity, 0) sales_cnt,
           ss_ext_sales_price - coalesce(sr_return_amt, 0.0) sales_amt
    from store_sales
         join item on i_item_sk = ss_item_sk
         join date_dim on d_date_sk = ss_sold_date_sk
         left join store_returns on ss_ticket_number = sr_ticket_number
                                 and ss_item_sk = sr_item_sk
    where i_category = '[CAT]'
    union all
    select d_year, i_brand_id, i_class_id, i_category_id, i_manufact_id,
           ws_quantity - coalesce(wr_return_quantity, 0) sales_cnt,
           ws_ext_sales_price - coalesce(wr_return_amt, 0.0) sales_amt
    from web_sales
         join item on i_item_sk = ws_item_sk
         join date_dim on d_date_sk = ws_sold_date_sk
         left join web_returns on ws_order_number = wr_order_number
                               and ws_item_sk = wr_item_sk
    where i_category = '[CAT]') sales_detail
  group by d_year, i_brand_id, i_class_id, i_category_id, i_manufact_id)
select prev_yr.d_year prev_year, curr_yr.d_year curr_year, curr_yr.i_brand_id,
       curr_yr.i_class_id, curr_yr.i_category_id, curr_yr.i_manufact_id,
       prev_yr.sales_cnt prev_yr_cnt, curr_yr.sales_cnt curr_yr_cnt,
       curr_yr.sales_cnt - prev_yr.sales_cnt sales_cnt_diff
from all_sales curr_yr, all_sales prev_yr
where curr_yr.i_brand_id = prev_yr.i_brand_id
  and curr_yr.i_class_id = prev_yr.i_class_id
  and curr_yr.i_category_id = prev_yr.i_category_id
  and curr_yr.i_manufact_id = prev_yr.i_manufact_id
  and curr_yr.d_year = [YEAR]
  and prev_yr.d_year = [YEAR] - 1
  and cast(curr_yr.sales_cnt as decimal) / cast(prev_yr.sales_cnt as decimal) < 0.9
order by sales_cnt_diff
limit 100";
