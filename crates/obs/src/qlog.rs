//! The per-query log: a fixed-capacity concurrent ring buffer of
//! [`QueryRecord`]s, one per finished query.
//!
//! The engine owns one [`QueryLog`] per `Database` and pushes a record
//! from every top-level query entry point — success or error — so
//! `sys.query_log` answers "what ran, how long, on which snapshot, and
//! why was it slow" without a trace file. The ring holds the most recent
//! `capacity` records (default 1024, `TPCDS_QUERY_LOG_CAP` overrides);
//! [`QueryLog::total_recorded`] counts every push monotonically so
//! wraparound never hides whether records were produced at all — the
//! soak harness cross-checks it against the queries it issued.
//!
//! Identity crosses layers through a **thread-local** [`QueryMeta`]: the
//! server (thread-per-connection) stamps the client-assigned `query_id`,
//! session id and admission wait before calling into the engine, and the
//! engine's logging scope picks it up on the same thread. In-process
//! callers skip the stamp and get a generated `q-N` id with session 0.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One finished query. All durations are microseconds, `mem_peak` is
/// bytes (0 unless the binary installs [`crate::mem::CountingAlloc`]).
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// Monotone sequence number assigned at push (1-based); survives
    /// wraparound, so `seq` gaps in a snapshot reveal evicted records.
    pub seq: u64,
    /// Client-assigned or generated (`q-N`) query identity.
    pub query_id: String,
    /// Server session id (0 = in-process).
    pub session: u64,
    /// The SQL text as received.
    pub sql: String,
    /// Wall-clock time from dispatch to result, µs.
    pub wall_us: u64,
    /// CPU time of the dispatching thread, µs (Linux; 0 elsewhere).
    /// Morsel workers run on their own threads, so this is coordination
    /// cost, not total work.
    pub cpu_us: u64,
    /// Result rows produced (0 on error).
    pub rows: u64,
    /// Peak live-memory growth during execution, bytes.
    pub mem_peak: u64,
    /// Time spent queued behind the server's admission limit, µs (0
    /// in-process).
    pub admission_wait_us: u64,
    /// Best route any plan node took (`columnar` / `index` / `rows_par` /
    /// `serial`; empty on bind errors).
    pub best_route: &'static str,
    /// Comma-joined, sorted, deduplicated fallback reason codes.
    pub fallbacks: String,
    /// Snapshot version the query executed against.
    pub snapshot_version: u64,
    /// Error message when the query failed.
    pub error: Option<String>,
}

/// The fixed-capacity concurrent ring. Push is a short critical section
/// (one `VecDeque` append + bounded pop); snapshot clones the `Arc`s,
/// not the records.
#[derive(Debug)]
pub struct QueryLog {
    cap: usize,
    enabled: AtomicBool,
    total: AtomicU64,
    ring: Mutex<VecDeque<Arc<QueryRecord>>>,
}

/// Default ring capacity when `TPCDS_QUERY_LOG_CAP` is unset.
pub const DEFAULT_CAPACITY: usize = 1024;

impl QueryLog {
    /// A log holding at most `cap` records (minimum 1), enabled.
    pub fn new(cap: usize) -> QueryLog {
        let cap = cap.max(1);
        QueryLog {
            cap,
            enabled: AtomicBool::new(true),
            total: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(cap.min(4096))),
        }
    }

    /// A log configured from the environment: `TPCDS_QUERY_LOG_CAP=N`
    /// sizes the ring, `TPCDS_QUERY_LOG=off|0` starts it disabled.
    pub fn from_env() -> QueryLog {
        let cap = std::env::var("TPCDS_QUERY_LOG_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_CAPACITY);
        let log = QueryLog::new(cap);
        if matches!(
            std::env::var("TPCDS_QUERY_LOG").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        ) {
            log.set_enabled(false);
        }
        log
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Whether pushes are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off (the observer-overhead bench measures
    /// the difference).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Records one finished query, assigning its `seq`. No-op while
    /// disabled. The monotone total and the ring move under one lock, so
    /// a snapshot plus `total_recorded` is a consistent pair.
    pub fn push(&self, mut rec: QueryRecord) {
        if !self.is_enabled() {
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        rec.seq = self.total.fetch_add(1, Ordering::Relaxed) + 1;
        ring.push_back(Arc::new(rec));
        while ring.len() > self.cap {
            ring.pop_front();
        }
    }

    /// The retained records, oldest first — a consistent snapshot taken
    /// under the ring lock; concurrent pushes land before or after it,
    /// never half-way.
    pub fn snapshot(&self) -> Vec<Arc<QueryRecord>> {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Records currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every record ever pushed, including those the ring evicted.
    pub fn total_recorded(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Drops all retained records (tests); the monotone total is kept.
    pub fn clear(&self) {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

impl Default for QueryLog {
    fn default() -> QueryLog {
        QueryLog::from_env()
    }
}

/// Cross-layer identity for the query the current thread is about to
/// dispatch. Stamped by the server, consumed (taken) by the engine's
/// logging scope on the same thread.
#[derive(Clone, Debug, Default)]
pub struct QueryMeta {
    /// Client-assigned query id, if any.
    pub query_id: Option<String>,
    /// Server session id (0 = in-process).
    pub session: u64,
    /// Admission-queue wait already paid for this query, µs.
    pub admission_wait_us: u64,
}

thread_local! {
    static META: RefCell<Option<QueryMeta>> = const { RefCell::new(None) };
}

/// Stamps the identity the next engine query on this thread will log.
pub fn set_meta(meta: QueryMeta) {
    META.with(|m| *m.borrow_mut() = Some(meta));
}

/// Takes (and clears) the stamped identity, if any.
pub fn take_meta() -> Option<QueryMeta> {
    META.with(|m| m.borrow_mut().take())
}

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// A process-unique generated query id (`q-1`, `q-2`, …) for queries the
/// client did not name.
pub fn next_query_id() -> String {
    format!("q-{}", NEXT_ID.fetch_add(1, Ordering::Relaxed) + 1)
}

/// CPU time (user + system) consumed so far by the calling thread, µs.
/// Reads `/proc/thread-self/stat` on Linux; returns 0 elsewhere. Call
/// twice and subtract for a per-query figure.
#[cfg(target_os = "linux")]
pub fn thread_cpu_us() -> u64 {
    let Ok(stat) = std::fs::read_to_string("/proc/thread-self/stat") else {
        return 0;
    };
    // Skip past the parenthesized comm (it may contain spaces); utime and
    // stime are stat fields 14 and 15, i.e. the 12th and 13th tokens
    // after the comm.
    let Some((_, rest)) = stat.rsplit_once(')') else {
        return 0;
    };
    let mut fields = rest.split_whitespace();
    let utime: u64 = fields.nth(11).and_then(|f| f.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.next().and_then(|f| f.parse().ok()).unwrap_or(0);
    // USER_HZ is 100 on every mainstream Linux: one tick = 10 ms.
    (utime + stime) * 10_000
}

/// CPU time of the calling thread, µs (unsupported platform: always 0).
#[cfg(not(target_os = "linux"))]
pub fn thread_cpu_us() -> u64 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> QueryRecord {
        QueryRecord {
            seq: 0,
            query_id: format!("t-{id}"),
            session: 0,
            sql: format!("select {id}"),
            wall_us: id,
            cpu_us: 0,
            rows: 1,
            mem_peak: 0,
            admission_wait_us: 0,
            best_route: "serial",
            fallbacks: String::new(),
            snapshot_version: 0,
            error: None,
        }
    }

    #[test]
    fn ring_wraps_at_capacity_keeping_newest() {
        let log = QueryLog::new(4);
        for i in 0..10 {
            log.push(rec(i));
        }
        assert_eq!(log.total_recorded(), 10);
        assert_eq!(log.len(), 4);
        let snap = log.snapshot();
        let ids: Vec<&str> = snap.iter().map(|r| r.query_id.as_str()).collect();
        assert_eq!(ids, ["t-6", "t-7", "t-8", "t-9"]);
        // Seq numbers survive eviction: the oldest retained is push #7.
        assert_eq!(snap.first().unwrap().seq, 7);
        assert_eq!(snap.last().unwrap().seq, 10);
    }

    #[test]
    fn disabled_log_drops_everything() {
        let log = QueryLog::new(4);
        log.set_enabled(false);
        log.push(rec(1));
        assert_eq!(log.total_recorded(), 0);
        assert!(log.is_empty());
        log.set_enabled(true);
        log.push(rec(2));
        assert_eq!(log.total_recorded(), 1);
    }

    #[test]
    fn concurrent_writers_never_drop_records() {
        let log = Arc::new(QueryLog::new(64));
        let threads = 8;
        let per_thread = 200;
        std::thread::scope(|s| {
            for t in 0..threads {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..per_thread {
                        log.push(rec((t * per_thread + i) as u64));
                    }
                });
            }
        });
        // Every push is counted exactly once; the ring holds the cap.
        assert_eq!(log.total_recorded(), (threads * per_thread) as u64);
        assert_eq!(log.len(), 64);
        // Seqs are dense over the whole run and strictly increasing in
        // the retained window.
        let snap = log.snapshot();
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] + 1 == w[1]), "{seqs:?}");
        assert_eq!(*seqs.last().unwrap(), (threads * per_thread) as u64);
    }

    #[test]
    fn snapshot_is_consistent_while_writes_continue() {
        let log = Arc::new(QueryLog::new(32));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let writer = {
                let log = Arc::clone(&log);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        log.push(rec(i));
                        i += 1;
                    }
                })
            };
            // Each snapshot must be internally consistent: contiguous
            // seqs, bounded length — even though the writer never pauses.
            for _ in 0..200 {
                let snap = log.snapshot();
                assert!(snap.len() <= 32);
                let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
                assert!(seqs.windows(2).all(|w| w[0] + 1 == w[1]), "{seqs:?}");
            }
            stop.store(true, Ordering::Relaxed);
            writer.join().unwrap();
        });
    }

    #[test]
    fn meta_is_per_thread_and_taken_once() {
        set_meta(QueryMeta {
            query_id: Some("abc".into()),
            session: 7,
            admission_wait_us: 12,
        });
        let other = std::thread::spawn(take_meta).join().unwrap();
        assert!(other.is_none(), "meta must not leak across threads");
        let mine = take_meta().unwrap();
        assert_eq!(mine.query_id.as_deref(), Some("abc"));
        assert_eq!(mine.session, 7);
        assert!(take_meta().is_none(), "take clears");
    }

    #[test]
    fn generated_ids_are_unique() {
        let a = next_query_id();
        let b = next_query_id();
        assert_ne!(a, b);
        assert!(a.starts_with("q-"));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn thread_cpu_time_is_monotone() {
        let before = thread_cpu_us();
        // Burn a little CPU so the counter can only move forward.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        assert!(thread_cpu_us() >= before);
    }
}
