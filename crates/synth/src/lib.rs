//! # tpcds-synth
//!
//! Grammar-driven SQL workload synthesis with a differential soak
//! harness — the scenario-diversity engine beyond the 99 fixed
//! templates (ROADMAP direction 5, in the spirit of SynQL's rule-based
//! synthesis and DWEB's parameterized warehouse workloads).
//!
//! The pieces, bottom-up:
//!
//! * [`spec`] — [`QuerySpec`](spec::QuerySpec), the structured form of a
//!   synthesized query and the unit the shrinker edits;
//! * [`gen`] — the seeded, deterministic generator: FK-walked joins,
//!   histogram-steered predicate selectivity, a tunable
//!   aggregate/sort/set-op/window mix, and four adversarial classes
//!   (empty results, all-NULL join keys, modulo skew, 64k-boundary
//!   LIMITs);
//! * [`diff`] — the four-way row-vs-columnar differential oracle at
//!   1/2/8 workers against one pinned snapshot;
//! * [`shrink`] — greedy spec-level minimization of failing queries;
//! * [`soak`] — concurrent streams (in-process or via a real TCP
//!   server) interleaved with data-maintenance commits;
//! * [`coverage`] — the `COVERAGE_8.json` per-shape-class routing
//!   report and its regression gate.

#![warn(missing_docs)]

pub mod coverage;
pub mod diff;
pub mod gen;
pub mod shrink;
pub mod soak;
pub mod spec;

pub use coverage::{coverage_report, gate};
pub use diff::{run_differential, DiffError, DiffReport};
pub use gen::{SynthConfig, Synthesizer, SYNTH_STREAM};
pub use shrink::{shrink, shrink_with};
pub use soak::{run_soak, ClassStat, Failure, SoakConfig, SoakOutcome};
pub use spec::{QuerySpec, ShapeClass};
