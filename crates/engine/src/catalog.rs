//! In-memory storage: tables, secondary indexes, and the database catalog.
//!
//! Tables are row-major `Vec<Row>` guarded by `crate::sync::RwLock (std-backed)`, so
//! concurrent query streams read in parallel while the data-maintenance run
//! takes short write locks — the concurrency model of the paper's execution
//! rules (§5.2).

use crate::error::{EngineError, Result};
use crate::sync::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use tpcds_types::{DataType, Row, Value};

/// Schema of one stored column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Column name (lower-case).
    pub name: String,
    /// Runtime type of values stored.
    pub dtype: DataType,
}

/// A hash index over one column: value → row positions.
#[derive(Debug, Default)]
pub struct Index {
    map: HashMap<Value, Vec<usize>>,
}

impl Index {
    fn build(rows: &[Row], col: usize) -> Index {
        let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            map.entry(row[col].clone()).or_default().push(i);
        }
        Index { map }
    }

    /// Row positions with the given key value.
    pub fn lookup(&self, key: &Value) -> &[usize] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// One stored table.
#[derive(Debug)]
pub struct Table {
    /// Column metadata, in order.
    pub columns: Vec<ColumnMeta>,
    /// The rows.
    pub rows: Vec<Row>,
    /// Secondary hash indexes, keyed by column position.
    pub indexes: HashMap<usize, Index>,
}

impl Table {
    /// Creates an empty table with the given columns.
    pub fn new(columns: Vec<ColumnMeta>) -> Table {
        Table {
            columns,
            rows: Vec::new(),
            indexes: HashMap::new(),
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Appends rows, maintaining indexes.
    pub fn insert(&mut self, rows: Vec<Row>) -> Result<()> {
        for row in &rows {
            if row.len() != self.columns.len() {
                return Err(EngineError::Catalog(format!(
                    "arity mismatch: row has {} values, table has {} columns",
                    row.len(),
                    self.columns.len()
                )));
            }
        }
        let base = self.rows.len();
        for (col, idx) in self.indexes.iter_mut() {
            for (i, row) in rows.iter().enumerate() {
                idx.map.entry(row[*col].clone()).or_default().push(base + i);
            }
        }
        self.rows.extend(rows);
        Ok(())
    }

    /// Deletes every row for which `pred` returns true; returns the number
    /// deleted. Indexes are rebuilt (bulk deletes are rare and batched in
    /// the maintenance workload).
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        let deleted = before - self.rows.len();
        if deleted > 0 {
            self.rebuild_indexes();
        }
        deleted
    }

    /// Applies `f` to every row in place (dimension updates); returns the
    /// number of rows for which `f` returned true (i.e. reported a change).
    pub fn update_each(&mut self, mut f: impl FnMut(&mut Row) -> bool) -> usize {
        let mut changed = 0;
        for row in &mut self.rows {
            if f(row) {
                changed += 1;
            }
        }
        if changed > 0 {
            self.rebuild_indexes();
        }
        changed
    }

    /// Builds (or rebuilds) a hash index on `column`.
    pub fn create_index(&mut self, column: usize) {
        self.indexes
            .insert(column, Index::build(&self.rows, column));
    }

    /// Drops the index on `column`.
    pub fn drop_index(&mut self, column: usize) {
        self.indexes.remove(&column);
    }

    fn rebuild_indexes(&mut self) {
        let cols: Vec<usize> = self.indexes.keys().copied().collect();
        for c in cols {
            self.create_index(c);
        }
    }
}

/// The database: a named collection of tables.
#[derive(Default)]
pub struct Database {
    tables: RwLock<HashMap<String, Arc<RwLock<Table>>>>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.tables.read();
        write!(
            f,
            "Database({} tables, {} rows)",
            t.len(),
            t.values().map(|x| x.read().rows.len()).sum::<usize>()
        )
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates an empty table. Errors if the name exists.
    pub fn create_table(&self, name: &str, columns: Vec<ColumnMeta>) -> Result<()> {
        let mut t = self.tables.write();
        if t.contains_key(name) {
            return Err(EngineError::Catalog(format!("table {name} already exists")));
        }
        t.insert(name.to_string(), Arc::new(RwLock::new(Table::new(columns))));
        Ok(())
    }

    /// Creates a table pre-populated with rows.
    pub fn create_table_with_rows(
        &self,
        name: &str,
        columns: Vec<ColumnMeta>,
        rows: Vec<Row>,
    ) -> Result<()> {
        self.create_table(name, columns)?;
        self.insert(name, rows)
    }

    /// Drops a table. Errors if missing.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| EngineError::Catalog(format!("unknown table {name}")))
    }

    /// Handle to a table.
    pub fn table(&self, name: &str) -> Result<Arc<RwLock<Table>>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::Catalog(format!("unknown table {name}")))
    }

    /// True when the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Appends rows to a table.
    pub fn insert(&self, name: &str, rows: Vec<Row>) -> Result<()> {
        self.table(name)?.write().insert(rows)
    }

    /// Row count of a table (0 when missing — used by the planner for
    /// cardinality estimates only).
    pub fn row_count(&self, name: &str) -> usize {
        self.table(name).map(|t| t.read().rows.len()).unwrap_or(0)
    }

    /// Column metadata of a table.
    pub fn columns(&self, name: &str) -> Result<Vec<ColumnMeta>> {
        Ok(self.table(name)?.read().columns.clone())
    }

    /// Builds a hash index on `table.column`.
    pub fn create_index(&self, table: &str, column: &str) -> Result<()> {
        let t = self.table(table)?;
        let mut t = t.write();
        let col = t
            .column_index(column)
            .ok_or_else(|| EngineError::Catalog(format!("unknown column {table}.{column}")))?;
        t.create_index(col);
        Ok(())
    }

    /// Drops the hash index on `table.column`, if any.
    pub fn drop_index(&self, table: &str, column: &str) -> Result<()> {
        let t = self.table(table)?;
        let mut t = t.write();
        let col = t
            .column_index(column)
            .ok_or_else(|| EngineError::Catalog(format!("unknown column {table}.{column}")))?;
        t.drop_index(col);
        Ok(())
    }

    /// Total number of stored rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables
            .read()
            .values()
            .map(|t| t.read().rows.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols(names: &[&str]) -> Vec<ColumnMeta> {
        names
            .iter()
            .map(|n| ColumnMeta {
                name: n.to_string(),
                dtype: DataType::Int,
            })
            .collect()
    }

    #[test]
    fn create_insert_and_count() {
        let db = Database::new();
        db.create_table("t", cols(&["a", "b"])).unwrap();
        db.insert("t", vec![vec![Value::Int(1), Value::Int(2)]])
            .unwrap();
        assert_eq!(db.row_count("t"), 1);
        assert!(db.has_table("t"));
        assert!(!db.has_table("u"));
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = Database::new();
        db.create_table("t", cols(&["a"])).unwrap();
        assert!(db.create_table("t", cols(&["a"])).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let db = Database::new();
        db.create_table("t", cols(&["a", "b"])).unwrap();
        assert!(db.insert("t", vec![vec![Value::Int(1)]]).is_err());
    }

    #[test]
    fn index_follows_inserts_and_deletes() {
        let db = Database::new();
        db.create_table("t", cols(&["a"])).unwrap();
        db.insert("t", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        db.create_index("t", "a").unwrap();
        {
            let t = db.table("t").unwrap();
            let t = t.read();
            assert_eq!(t.indexes[&0].lookup(&Value::Int(2)), &[1]);
        }
        db.insert("t", vec![vec![Value::Int(2)]]).unwrap();
        {
            let t = db.table("t").unwrap();
            let t = t.read();
            assert_eq!(t.indexes[&0].lookup(&Value::Int(2)), &[1, 2]);
        }
        let t = db.table("t").unwrap();
        let deleted = t.write().delete_where(|r| r[0] == Value::Int(2));
        assert_eq!(deleted, 2);
        assert_eq!(t.read().indexes[&0].lookup(&Value::Int(2)), &[] as &[usize]);
    }

    #[test]
    fn update_each_reports_changes() {
        let db = Database::new();
        db.create_table("t", cols(&["a"])).unwrap();
        db.insert("t", vec![vec![Value::Int(1)], vec![Value::Int(5)]])
            .unwrap();
        let t = db.table("t").unwrap();
        let changed = t.write().update_each(|r| {
            if r[0] == Value::Int(5) {
                r[0] = Value::Int(50);
                true
            } else {
                false
            }
        });
        assert_eq!(changed, 1);
        assert_eq!(t.read().rows[1][0], Value::Int(50));
    }
}
