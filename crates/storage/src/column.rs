//! Typed column vectors with a word-packed null bitmap.
//!
//! A [`Column`] stores one attribute of one segment. The common TPC-DS
//! types get dense native buffers (`i64`, [`Decimal`], [`Date`],
//! `Arc<str>`); anything else — or a column whose values turn out not to
//! match the declared type, which the dynamically-typed engine permits —
//! falls back to a boxed [`Value`] buffer ([`ColumnData::Other`]). NULLs
//! are recorded in the bitmap and occupy a default slot in the typed
//! buffer, so kernels can iterate the native vector without branching on
//! an enum per row.

use std::sync::Arc;
use tpcds_types::{DataType, Date, Decimal, Value};

/// A word-packed bitmap; bit `i` set means row `i` is NULL.
#[derive(Clone, Debug, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
    set: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
            self.set += 1;
        }
        self.len += 1;
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set (NULL) bits.
    pub fn count_set(&self) -> usize {
        self.set
    }

    /// True when at least one bit is set.
    pub fn any(&self) -> bool {
        self.set > 0
    }

    /// Heap bytes held by the bitmap.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// The physical buffer of a column: one dense native vector per common
/// type, or boxed values for everything else.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// 64-bit integers (surrogate keys, counts).
    I64(Vec<i64>),
    /// Exact fixed-point decimals.
    Decimal(Vec<Decimal>),
    /// Calendar dates.
    Date(Vec<Date>),
    /// Strings (shared so materializing rows is a refcount bump).
    Str(Vec<Arc<str>>),
    /// Fallback: any value type, including mixed-type columns.
    Other(Vec<Value>),
}

/// One column of one segment: a typed buffer plus the null bitmap.
#[derive(Clone, Debug)]
pub struct Column {
    /// The typed buffer. NULL rows hold a default slot.
    pub data: ColumnData,
    /// Bit `i` set ⇒ row `i` is NULL.
    pub nulls: Bitmap,
}

impl Column {
    /// An empty column whose buffer variant is chosen from the declared
    /// type. `Time`/`Bool` (never stored by TPC-DS tables) use the boxed
    /// fallback.
    pub fn for_type(dtype: DataType) -> Column {
        let data = match dtype {
            DataType::Int => ColumnData::I64(Vec::new()),
            DataType::Decimal => ColumnData::Decimal(Vec::new()),
            DataType::Date => ColumnData::Date(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
            DataType::Time | DataType::Bool => ColumnData::Other(Vec::new()),
        };
        Column {
            data,
            nulls: Bitmap::new(),
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.nulls.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.nulls.is_empty()
    }

    /// Appends one value, promoting the buffer to [`ColumnData::Other`] if
    /// the value does not fit the current variant (the engine is
    /// dynamically typed, so declared and actual types can disagree).
    pub fn push(&mut self, v: &Value) {
        if v.is_null() {
            self.push_null();
            return;
        }
        match (&mut self.data, v) {
            (ColumnData::I64(buf), Value::Int(x)) => buf.push(*x),
            (ColumnData::Decimal(buf), Value::Decimal(x)) => buf.push(*x),
            (ColumnData::Date(buf), Value::Date(x)) => buf.push(*x),
            (ColumnData::Str(buf), Value::Str(x)) => buf.push(Arc::clone(x)),
            (ColumnData::Other(buf), x) => buf.push(x.clone()),
            _ => {
                self.promote_to_other();
                if let ColumnData::Other(buf) = &mut self.data {
                    buf.push(v.clone());
                }
            }
        }
        self.nulls.push(false);
    }

    fn push_null(&mut self) {
        match &mut self.data {
            ColumnData::I64(buf) => buf.push(0),
            ColumnData::Decimal(buf) => buf.push(Decimal::ZERO),
            ColumnData::Date(buf) => buf.push(Date::from_ymd(1900, 1, 1)),
            ColumnData::Str(buf) => buf.push(Arc::from("")),
            ColumnData::Other(buf) => buf.push(Value::Null),
        }
        self.nulls.push(true);
    }

    /// Rewrites the buffer as boxed values (keeps the bitmap).
    fn promote_to_other(&mut self) {
        let n = self.len();
        let mut boxed: Vec<Value> = Vec::with_capacity(n + 1);
        for i in 0..n {
            boxed.push(self.value_at(i));
        }
        self.data = ColumnData::Other(boxed);
    }

    /// Materializes row `i` as a [`Value`] (NULL when the bitmap says so).
    #[inline]
    pub fn value_at(&self, i: usize) -> Value {
        if self.nulls.get(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::I64(buf) => Value::Int(buf[i]),
            ColumnData::Decimal(buf) => Value::Decimal(buf[i]),
            ColumnData::Date(buf) => Value::Date(buf[i]),
            ColumnData::Str(buf) => Value::Str(Arc::clone(&buf[i])),
            ColumnData::Other(buf) => buf[i].clone(),
        }
    }

    /// Approximate heap bytes held by the column (used for scan byte
    /// counters, not allocation accounting).
    pub fn heap_bytes(&self) -> usize {
        let data = match &self.data {
            ColumnData::I64(buf) => buf.len() * 8,
            ColumnData::Decimal(buf) => buf.len() * std::mem::size_of::<Decimal>(),
            ColumnData::Date(buf) => buf.len() * std::mem::size_of::<Date>(),
            ColumnData::Str(buf) => buf
                .iter()
                .map(|s| s.len() + std::mem::size_of::<Arc<str>>())
                .sum(),
            ColumnData::Other(buf) => buf.len() * std::mem::size_of::<Value>(),
        };
        data + self.nulls.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_packs_words() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_set(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn typed_pushes_round_trip() {
        let mut c = Column::for_type(DataType::Int);
        c.push(&Value::Int(7));
        c.push(&Value::Null);
        c.push(&Value::Int(-2));
        assert_eq!(c.value_at(0), Value::Int(7));
        assert!(c.value_at(1).is_null());
        assert_eq!(c.value_at(2), Value::Int(-2));
    }

    #[test]
    fn mismatch_promotes_to_other() {
        let mut c = Column::for_type(DataType::Int);
        c.push(&Value::Int(1));
        c.push(&Value::Null);
        c.push(&Value::str("surprise"));
        assert!(matches!(c.data, ColumnData::Other(_)));
        assert_eq!(c.value_at(0), Value::Int(1));
        assert!(c.value_at(1).is_null());
        assert_eq!(c.value_at(2), Value::str("surprise"));
    }
}
