//! The `tpcds` command-line toolkit — the ergonomic equivalents of the
//! TPC-DS kit's tools, built on this repository's crates:
//!
//! * `tpcds dsdgen`  — generate flat files (dsdgen)
//! * `tpcds dsqgen`  — generate query streams (dsqgen)
//! * `tpcds run`     — run the full benchmark and print the metric
//! * `tpcds query`   — load a data set and execute one query or SQL file
//! * `tpcds explain` — show a query's plan, optionally with actuals
//! * `tpcds report`  — summarize a `--trace` JSONL file
//! * `tpcds trace`   — convert a trace (Chrome Trace Event export)
//! * `tpcds shell`   — interactive SQL shell over a generated data set
//! * `tpcds schema`  — print the schema (DDL-ish) and statistics
//! * `tpcds serve`   — serve a loaded data set over TCP
//! * `tpcds client`  — query a running `tpcds serve`
//! * `tpcds top`     — live sessions/queries view of a running server
//! * `tpcds synth`   — soak a synthesized workload through the differential

mod commands;

use std::process::ExitCode;

// Count every allocation so EXPLAIN ANALYZE / phase spans / `tpcds
// report` can attribute memory (`mem_peak=`, `build_bytes=`). Library
// users are unaffected; only this binary pays the two-atomic-add cost.
#[global_allocator]
static ALLOC: tpcds_obs::mem::CountingAlloc = tpcds_obs::mem::CountingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "dsdgen" => commands::dsdgen(rest),
        "dsqgen" => commands::dsqgen(rest),
        "run" => commands::run(rest),
        "query" => commands::query(rest),
        "explain" => commands::explain(rest),
        "report" => commands::report(rest),
        "trace" => commands::trace(rest),
        "shell" => commands::shell(rest),
        "schema" => commands::schema(rest),
        "profile" => commands::profile(rest),
        "serve" => commands::serve(rest),
        "client" => commands::client(rest),
        "top" => commands::top(rest),
        "synth" => commands::synth(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "tpcds — TPC-DS reproduction toolkit

USAGE:
    tpcds dsdgen  [--scale SF] [--dir DIR] [--table NAME] [--parallel N] [--trace FILE]
    tpcds dsqgen  [--scale SF] [--streams N] [--query ID] [--dir DIR]
    tpcds run     [--scale SF] [--streams N] [--queries N] [--threads N] [--no-aux] [--via-server] [--json] [--trace FILE] [--metrics-addr HOST:PORT]
    tpcds query   [--scale SF] (--id QUERY_ID | --sql 'SELECT ...') [--explain] [--trace FILE]
    tpcds explain [--scale SF] (--id QUERY_ID | --sql 'SELECT ...') [--analyze]
    tpcds report  FILE.jsonl
    tpcds trace   export --chrome OUT.json FILE.jsonl
    tpcds shell   [--scale SF]
    tpcds schema  [--stats | --dot | --ddl]
    tpcds profile [--scale SF] [--table NAME] [--limit N]
    tpcds serve   [--scale SF] [--addr HOST:PORT] [--max-queries N] [--idle-timeout SECS] [--slow-query-ms MS] [--no-aux] [--trace FILE] [--metrics-addr HOST:PORT]
    tpcds client  [--addr HOST:PORT] (--sql 'SELECT ...' [--pin VERSION] [--query-id ID] [--explain] | --ping | --stats | --shutdown)
    tpcds top     [--addr HOST:PORT] [--interval-ms MS] [--once]
    tpcds synth   [--scale SF] [--queries N] [--streams N] [--seed S] [--dm N] [--via-server] [--out COVERAGE_8.json]

Scale factors are GB of raw data; fractional values (default 0.01)
generate laptop-sized miniatures with the same shape.

--trace FILE records the run as one JSON event per line (spans,
counters), replacing FILE; `tpcds report FILE` renders its phase
timeline and latency summary, and `tpcds trace export --chrome OUT`
converts it to a Chrome Trace Event file (load in Perfetto /
chrome://tracing — one track per morsel worker). TPCDS_OBS_DETAIL=1
additionally records one span per 8k-row morsel.

--metrics-addr HOST:PORT serves live Prometheus metrics (counters and
latency histograms) at http://HOST:PORT/metrics for the life of the
run.

The server exposes its own state as SQL: `sys.sessions`, `sys.queries`,
`sys.query_log`, `sys.counters`, `sys.gauges`, `sys.histograms` and
`sys.snapshots` answer to ordinary queries in-process and over the wire
(`tpcds client --sql 'select * from sys.query_log order by wall_us desc
limit 5'`); `tpcds top` polls them. --slow-query-ms MS (also
TPCDS_SLOW_QUERY_MS) re-describes queries at or over the threshold on
stderr at EXPLAIN ANALYZE detail. See docs/OBSERVABILITY.md.

--threads N sets the morsel worker count for columnar scans (also via
the TPCDS_THREADS environment variable; default available_parallelism).
TPCDS_COLUMNAR=off|force overrides when the engine uses the columnar
path."
}
