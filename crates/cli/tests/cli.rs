//! End-to-end tests of the `tpcds` command-line toolkit.

use std::process::Command;

fn tpcds() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tpcds"))
}

#[test]
fn schema_stats_match_paper() {
    let out = tpcds().args(["schema", "--stats"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fact tables       7"), "{text}");
    assert!(text.contains("dimension tables  17"));
    assert!(text.contains("foreign keys      104"));
}

#[test]
fn schema_dot_renders_graph() {
    let out = tpcds().args(["schema", "--dot"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("digraph tpcds"));
    assert!(text.contains("store_sales ->"));
}

#[test]
fn dsqgen_prints_one_query() {
    let out = tpcds()
        .args(["dsqgen", "--query", "52", "--streams", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("-- query 52, stream 0"));
    assert!(text.contains("-- query 52, stream 1"));
    assert!(text.to_lowercase().contains("ss_ext_sales_price"));
}

#[test]
fn dsdgen_writes_flat_files() {
    let dir = std::env::temp_dir().join(format!("tpcds_cli_{}", std::process::id()));
    let out = tpcds()
        .args([
            "dsdgen",
            "--scale",
            "0.005",
            "--table",
            "income_band",
            "--dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let data = std::fs::read_to_string(dir.join("income_band.dat")).unwrap();
    assert_eq!(data.lines().count(), 20);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_by_id_executes() {
    let out = tpcds()
        .args(["query", "--scale", "0.005", "--id", "96"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rows in"), "{text}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = tpcds().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}
