//! # tpcds-schema
//!
//! The complete TPC-DS "snowstorm" schema as described in §2 of *The Making
//! of TPC-DS*: 24 tables (7 fact + 17 dimension), 104 foreign keys, the
//! ad-hoc/reporting partition of the channels, slowly-changing-dimension
//! classification, and the cardinality scaling model of §3.1 (Table 2).

#![warn(missing_docs)]

pub mod column;
pub mod ddl;
pub mod graph;
pub mod scaling;
pub mod stats;
pub mod tables;

pub use column::{Column, ColumnType, ForeignKey, ScdClass, SchemaPart, TableDef, TableKind};
pub use scaling::{ScalingLaw, ScalingModel, VALID_SCALE_FACTORS};
pub use stats::SchemaStats;

use std::collections::BTreeMap;

/// The full snowstorm schema plus its scaling model.
#[derive(Clone, Debug)]
pub struct Schema {
    tables: Vec<TableDef>,
    index: BTreeMap<&'static str, usize>,
    scaling: ScalingModel,
}

impl Schema {
    /// Builds the canonical TPC-DS schema.
    pub fn tpcds() -> Schema {
        let tables = tables::all_tables();
        let index = tables
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name, i))
            .collect();
        Schema {
            tables,
            index,
            scaling: ScalingModel::tpcds(),
        }
    }

    /// All table definitions, in dimension-before-fact load order.
    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<&TableDef> {
        self.index.get(name).map(|&i| &self.tables[i])
    }

    /// Positional index of a table (also its RNG stream base).
    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The scaling model.
    pub fn scaling(&self) -> &ScalingModel {
        &self.scaling
    }

    /// Row count of `table` at scale factor `sf`.
    pub fn rows(&self, table: &str, sf: f64) -> u64 {
        self.scaling.rows(table, sf)
    }
}

impl Default for Schema {
    fn default() -> Self {
        Schema::tpcds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_four_tables() {
        let s = Schema::tpcds();
        assert_eq!(s.tables().len(), 24);
        assert_eq!(tables::TABLE_NAMES.len(), 24);
        for name in tables::TABLE_NAMES {
            assert!(s.table(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn load_order_puts_dimensions_first() {
        let s = Schema::tpcds();
        let first_fact = s
            .tables()
            .iter()
            .position(|t| t.kind == TableKind::Fact)
            .unwrap();
        assert!(s.tables()[..first_fact]
            .iter()
            .all(|t| t.kind == TableKind::Dimension));
    }

    #[test]
    fn scd_classes_match_the_paper() {
        let s = Schema::tpcds();
        // Paper §4.2: static dimensions are loaded once, never maintained.
        for name in ["date_dim", "time_dim", "reason", "ship_mode", "income_band"] {
            assert_eq!(s.table(name).unwrap().scd, ScdClass::Static, "{name}");
        }
        // History-keeping dimensions carry rec_start/end dates.
        for name in ["item", "store", "call_center", "web_site", "web_page"] {
            let t = s.table(name).unwrap();
            assert_eq!(t.scd, ScdClass::History, "{name}");
            assert!(
                t.columns.iter().any(|c| c.name.ends_with("rec_start_date")),
                "{name} lacks rec_start_date"
            );
            assert!(
                t.columns.iter().any(|c| c.name.ends_with("rec_end_date")),
                "{name} lacks rec_end_date"
            );
        }
        for name in ["customer", "customer_address", "warehouse", "promotion"] {
            assert_eq!(s.table(name).unwrap().scd, ScdClass::NonHistory, "{name}");
        }
    }

    #[test]
    fn history_keepers_have_business_keys() {
        let s = Schema::tpcds();
        for t in s.tables() {
            if t.scd == ScdClass::History || t.scd == ScdClass::NonHistory {
                assert!(t.business_key.is_some(), "{} needs a business key", t.name);
            }
        }
    }

    #[test]
    fn column_names_unique_within_table_and_prefixed() {
        let s = Schema::tpcds();
        for t in s.tables() {
            let mut seen = std::collections::BTreeSet::new();
            for c in &t.columns {
                assert!(seen.insert(c.name), "{}.{} duplicated", t.name, c.name);
            }
        }
    }
}
