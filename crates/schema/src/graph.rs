//! The schema as a foreign-key graph — used to regenerate Figure 1 (the
//! store-sales snowflake excerpt) and to validate referential structure.

use crate::column::{SchemaPart, TableKind};
use crate::Schema;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write;

/// Renders the foreign-key graph of the given tables as Graphviz DOT.
/// With `tables = None`, the entire snowstorm schema is rendered; Figure 1
/// of the paper corresponds to `store_sales_excerpt`.
pub fn to_dot(schema: &Schema, tables: Option<&[&str]>) -> String {
    let keep: Option<BTreeSet<&str>> = tables.map(|t| t.iter().copied().collect());
    let mut out = String::from("digraph tpcds {\n  rankdir=LR;\n  node [shape=box];\n");
    for t in schema.tables() {
        if let Some(keep) = &keep {
            if !keep.contains(t.name) {
                continue;
            }
        }
        let shape = match t.kind {
            TableKind::Fact => "box3d",
            TableKind::Dimension => "box",
        };
        writeln!(
            out,
            "  {} [shape={} label=\"{}\\n({} cols)\"];",
            t.name,
            shape,
            t.name,
            t.width()
        )
        .unwrap();
    }
    for t in schema.tables() {
        if let Some(keep) = &keep {
            if !keep.contains(t.name) {
                continue;
            }
        }
        let mut seen = BTreeSet::new();
        for f in &t.foreign_keys {
            if let Some(keep) = &keep {
                if !keep.contains(f.ref_table) {
                    continue;
                }
            }
            // Collapse multiple FKs to the same table into one edge with a
            // multiplicity label, as schema diagrams conventionally do.
            if seen.insert(f.ref_table) {
                let n = t
                    .foreign_keys
                    .iter()
                    .filter(|g| g.ref_table == f.ref_table)
                    .count();
                if n > 1 {
                    writeln!(out, "  {} -> {} [label=\"x{}\"];", t.name, f.ref_table, n).unwrap();
                } else {
                    writeln!(out, "  {} -> {};", t.name, f.ref_table).unwrap();
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

/// The tables shown in Figure 1 of the paper: the store sales channel.
pub const STORE_CHANNEL_TABLES: [&str; 13] = [
    "store_sales",
    "store_returns",
    "date_dim",
    "time_dim",
    "item",
    "store",
    "promotion",
    "customer",
    "customer_address",
    "customer_demographics",
    "household_demographics",
    "income_band",
    "reason",
];

/// Renders Figure 1 (the store-sales snowflake excerpt) as DOT.
pub fn store_sales_excerpt(schema: &Schema) -> String {
    to_dot(schema, Some(&STORE_CHANNEL_TABLES))
}

/// Structural validation of the FK graph. Returns human-readable problem
/// descriptions; an empty vector means the graph is sound.
pub fn validate(schema: &Schema) -> Vec<String> {
    let mut problems = Vec::new();
    let by_name: BTreeMap<&str, _> = schema.tables().iter().map(|t| (t.name, t)).collect();
    for t in schema.tables() {
        for f in &t.foreign_keys {
            if t.column_index(f.column).is_none() {
                problems.push(format!("{}: FK column {} does not exist", t.name, f.column));
            }
            match by_name.get(f.ref_table) {
                None => problems.push(format!(
                    "{}: FK {} references unknown table {}",
                    t.name, f.column, f.ref_table
                )),
                Some(rt) => {
                    if rt.column_index(f.ref_column).is_none() {
                        problems.push(format!(
                            "{}: FK {} references unknown column {}.{}",
                            t.name, f.column, f.ref_table, f.ref_column
                        ));
                    }
                    if rt.primary_key != vec![f.ref_column] {
                        problems.push(format!(
                            "{}: FK {} does not reference {}'s primary key",
                            t.name, f.column, f.ref_table
                        ));
                    }
                }
            }
        }
        for pk in &t.primary_key {
            if t.column_index(pk).is_none() {
                problems.push(format!("{}: PK column {} does not exist", t.name, pk));
            }
        }
        if let Some(bk) = t.business_key {
            if t.column_index(bk).is_none() {
                problems.push(format!("{}: business key {} does not exist", t.name, bk));
            }
        }
    }
    problems
}

/// Summary of the ad-hoc / reporting partition of the schema (paper §2.1):
/// the catalog channel is the reporting part; store and web are ad-hoc.
pub fn partition_summary(schema: &Schema) -> BTreeMap<SchemaPart, Vec<&'static str>> {
    let mut map: BTreeMap<SchemaPart, Vec<&'static str>> = BTreeMap::new();
    for t in schema.tables() {
        map.entry(t.part).or_default().push(t.name);
    }
    map
}

impl PartialOrd for SchemaPart {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SchemaPart {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(p: &SchemaPart) -> u8 {
            match p {
                SchemaPart::AdHoc => 0,
                SchemaPart::Reporting => 1,
                SchemaPart::Shared => 2,
            }
        }
        rank(self).cmp(&rank(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fk_graph_is_sound() {
        let problems = validate(&Schema::tpcds());
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn figure1_excerpt_contains_the_snowflake() {
        let dot = store_sales_excerpt(&Schema::tpcds());
        // Fact-to-dimension edges of Figure 1.
        for edge in [
            "store_sales -> date_dim",
            "store_sales -> item",
            "store_sales -> store",
            "store_sales -> customer",
            "store_returns -> reason",
            // The snowflake: dimensions with relations to other dimensions.
            "customer -> customer_address",
            "household_demographics -> income_band",
        ] {
            assert!(dot.contains(edge), "missing edge {edge} in:\n{dot}");
        }
        // Catalog tables are not part of the Figure 1 excerpt.
        assert!(!dot.contains("catalog_sales"));
    }

    #[test]
    fn circular_customer_address_relationship_present() {
        // Paper §2.2: customer_address is referenced both from store_sales
        // directly and from customer — the "current vs at-sale address"
        // circular relationship.
        let schema = Schema::tpcds();
        let ss = schema.table("store_sales").unwrap();
        assert!(ss
            .foreign_keys
            .iter()
            .any(|f| f.ref_table == "customer_address"));
        let cust = schema.table("customer").unwrap();
        assert!(cust
            .foreign_keys
            .iter()
            .any(|f| f.ref_table == "customer_address"));
    }

    #[test]
    fn fact_to_fact_join_keys_exist() {
        // Paper §2.2: store_sales and store_returns relate through
        // (ticket_number, item_sk).
        let schema = Schema::tpcds();
        let ss = schema.table("store_sales").unwrap();
        let sr = schema.table("store_returns").unwrap();
        assert_eq!(ss.primary_key, vec!["ss_item_sk", "ss_ticket_number"]);
        assert_eq!(sr.primary_key, vec!["sr_item_sk", "sr_ticket_number"]);
    }

    #[test]
    fn partition_is_catalog_vs_store_web() {
        let schema = Schema::tpcds();
        let parts = partition_summary(&schema);
        let reporting = &parts[&SchemaPart::Reporting];
        assert!(reporting.contains(&"catalog_sales"));
        assert!(reporting.contains(&"catalog_returns"));
        assert!(reporting.contains(&"catalog_page"));
        assert!(reporting.contains(&"call_center"));
        let adhoc = &parts[&SchemaPart::AdHoc];
        assert!(adhoc.contains(&"store_sales"));
        assert!(adhoc.contains(&"web_sales"));
    }
}
