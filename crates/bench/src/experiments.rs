//! Table reproductions and ablation studies (experiments T1, T2, M1, M2,
//! A1–A3 of DESIGN.md).

use crate::{comparison, humanize};
use std::time::Duration;
use tpcds_core::runner::{self, metric, price_performance, AuxLevel, BenchmarkConfig, PriceModel};
use tpcds_core::schema::{Schema, SchemaStats};
use tpcds_core::Generator;

/// T1 — Table 1, schema statistics: computed from the schema definition
/// and compared to the paper's published numbers.
pub fn table1() -> String {
    let stats = SchemaStats::compute(&Schema::tpcds());
    comparison(
        "Table 1: Schema Statistics",
        &[
            (
                "fact tables".into(),
                "7".into(),
                stats.fact_tables.to_string(),
            ),
            (
                "dimension tables".into(),
                "17".into(),
                stats.dimension_tables.to_string(),
            ),
            (
                "columns (min)".into(),
                "3".into(),
                stats.min_columns.to_string(),
            ),
            (
                "columns (max)".into(),
                "34".into(),
                stats.max_columns.to_string(),
            ),
            (
                "columns (avg)".into(),
                "18".into(),
                stats.avg_columns.to_string(),
            ),
            (
                "foreign keys".into(),
                "104".into(),
                stats.foreign_keys.to_string(),
            ),
            (
                "row bytes (min)".into(),
                "16".into(),
                stats.min_row_bytes.to_string(),
            ),
            (
                "row bytes (max)".into(),
                "317".into(),
                stats.max_row_bytes.to_string(),
            ),
            (
                "row bytes (avg)".into(),
                "136".into(),
                stats.avg_row_bytes.to_string(),
            ),
        ],
    )
}

/// T2 — Table 2, table cardinalities at the paper's four scale factors,
/// evaluated from the scaling model.
pub fn table2() -> String {
    let schema = Schema::tpcds();
    let paper: &[(&str, [&str; 4])] = &[
        ("store_sales", ["288M", "2.9B", "30B", "297B"]),
        ("store_returns", ["14M", "147M", "1.5B", "15B"]),
        ("store", ["200", "500", "750", "1,500"]),
        ("customer", ["2M", "8M", "20M", "100M"]),
        ("item", ["200K", "300K", "400K", "500K"]),
    ];
    let mut rows = Vec::new();
    for (table, published) in paper {
        for (sf, label, pub_val) in [
            (100.0, "100GB", published[0]),
            (1000.0, "1TB", published[1]),
            (10_000.0, "10TB", published[2]),
            (100_000.0, "100TB", published[3]),
        ] {
            rows.push((
                format!("{table} @ {label}"),
                pub_val.to_string(),
                humanize(schema.rows(table, sf)),
            ));
        }
    }
    comparison("Table 2: Table Cardinalities", &rows)
}

/// M1 — a miniature benchmark run scored with the paper's QphDS@SF
/// formula, with every term reported.
pub fn metric_experiment(sf: f64, streams: usize, queries_per_stream: usize) -> String {
    let config = BenchmarkConfig {
        scale_factor: sf,
        seed: tpcds_core::types::rng::DEFAULT_SEED,
        streams: Some(streams),
        queries_per_stream: Some(queries_per_stream),
        aux: AuxLevel::Reporting,
        threads: None,
        via_server: false,
    };
    let result = runner::run_benchmark(config).expect("benchmark run");
    let mut out = format!(
        "### M1: QphDS@SF on a miniature run (SF {sf}, {streams} streams, {queries_per_stream} queries/stream)\n\n"
    );
    out.push_str(&format!("T_Load = {:?}\n", result.t_load));
    out.push_str(&format!("T_QR1  = {:?}\n", result.t_qr1));
    out.push_str(&format!("T_DM   = {:?}\n", result.t_dm));
    out.push_str(&format!("T_QR2  = {:?}\n", result.t_qr2));
    out.push_str(&format!(
        "queries executed = {} (2 runs x {} streams x {} queries)\n",
        2 * streams * queries_per_stream,
        streams,
        queries_per_stream
    ));
    out.push_str(&format!("QphDS@{sf} = {:.2}\n", result.qphds()));
    out.push_str(
        "\nThe formula is the paper's: SF * 3600 * (2*Q*S) / (T_QR1 + T_DM + T_QR2 + 0.01*S*T_Load)\n",
    );
    out
}

/// M2 — $/QphDS under the synthetic price model.
pub fn price_experiment(sf: f64, streams: usize, qphds: f64) -> String {
    let model = PriceModel::default();
    let pp = price_performance(&model, sf, streams, qphds);
    format!(
        "### M2: Price/performance\n\n3-year TCO (synthetic model) = ${:.0}\nQphDS@{sf} = {qphds:.2}\n$/QphDS@{sf} = {pp:.4}\n",
        model.tco(sf, streams)
    )
}

/// A1 — the power-vs-throughput metric ablation: the paper's argument
/// that a geometric-mean power metric rewards tuning a 6-second query as
/// much as a 6-hour one, while the arithmetic throughput metric follows
/// the business-relevant total time.
pub fn ablation_power() -> String {
    let hours = |h: f64| Duration::from_secs_f64(h * 3600.0);
    let secs = |s: f64| Duration::from_secs_f64(s);
    let base = vec![hours(6.0), secs(6.0)];
    let tuned_long = vec![hours(2.0), secs(6.0)];
    let tuned_short = vec![hours(6.0), secs(2.0)];

    let power = |q: &[Duration]| metric::power_metric(1.0, q);
    let throughput = |q: &[Duration]| {
        let total: f64 = q.iter().map(|d| d.as_secs_f64()).sum();
        2.0 * 3600.0 / total
    };

    // With n queries, a 3x single-query speedup moves the geometric mean
    // by 3^(1/n) — identically for the 6-hour and the 6-second query.
    // That equality is the paper's complaint; the throughput metric
    // instead follows total elapsed time.
    let mut out = comparison(
        "A1: power (geomean) vs throughput (arithmetic) metric — 6h->2h vs 6s->2s",
        &[
            (
                "power gain, tune 6h->2h".into(),
                "3^(1/n)".into(),
                format!("{:.3}x", power(&tuned_long) / power(&base)),
            ),
            (
                "power gain, tune 6s->2s".into(),
                "3^(1/n), identical".into(),
                format!("{:.3}x", power(&tuned_short) / power(&base)),
            ),
            (
                "throughput gain, tune 6h->2h".into(),
                "~3x".into(),
                format!("{:.2}x", throughput(&tuned_long) / throughput(&base)),
            ),
            (
                "throughput gain, tune 6s->2s".into(),
                "~1x".into(),
                format!("{:.4}x", throughput(&tuned_short) / throughput(&base)),
            ),
        ],
    );
    let equal =
        (power(&tuned_long) / power(&base) - power(&tuned_short) / power(&base)).abs() < 1e-9;
    out.push_str(&format!(
        "
power metric treats both tunings identically: {equal}
         (the paper's §5.3 argument for dropping the power test)
"
    ));
    out
}

/// A2 — auxiliary-structure ablation: run the same miniature benchmark
/// with and without the reporting part's indexes; report the load-time
/// cost and the query-run effect (the trade the 1%·S load term prices).
pub fn ablation_aux(sf: f64, streams: usize, queries_per_stream: usize) -> String {
    let run = |aux: AuxLevel| {
        runner::run_benchmark(BenchmarkConfig {
            scale_factor: sf,
            seed: tpcds_core::types::rng::DEFAULT_SEED,
            streams: Some(streams),
            queries_per_stream: Some(queries_per_stream),
            aux,
            threads: None,
            via_server: false,
        })
        .expect("benchmark run")
    };
    let without = run(AuxLevel::None);
    let with = run(AuxLevel::Reporting);
    let mut out = String::from("### A2: auxiliary structures on the reporting part\n\n");
    out.push_str(&format!(
        "{:<28} {:>14} {:>14}\n",
        "quantity", "no aux", "reporting aux"
    ));
    out.push_str(&format!(
        "{:<28} {:>14} {:>14}\n",
        "load time",
        format!("{:?}", without.t_load),
        format!("{:?}", with.t_load)
    ));
    out.push_str(&format!(
        "{:<28} {:>14} {:>14}\n",
        "QR1 + QR2",
        format!("{:?}", without.t_qr1 + without.t_qr2),
        format!("{:?}", with.t_qr1 + with.t_qr2)
    ));
    out.push_str(&format!(
        "{:<28} {:>14.2} {:>14.2}\n",
        "QphDS (load term included)",
        without.qphds(),
        with.qphds()
    ));
    out.push_str(
        "\nThe load-time term charges the cost of building auxiliary structures\nagainst the metric, as §5.3 argues it must.\n",
    );
    out
}

/// A3 — load-coefficient sensitivity: sweep the 0.01 factor of the metric
/// on fixed measured times.
pub fn ablation_load_coefficient(sf: f64, streams: usize, queries_per_stream: usize) -> String {
    let result = runner::run_benchmark(BenchmarkConfig {
        scale_factor: sf,
        seed: tpcds_core::types::rng::DEFAULT_SEED,
        streams: Some(streams),
        queries_per_stream: Some(queries_per_stream),
        aux: AuxLevel::Reporting,
        threads: None,
        via_server: false,
    })
    .expect("benchmark run");
    let inputs = result.metric_inputs();
    let mut out = String::from("### A3: load-time coefficient sensitivity\n\n");
    out.push_str("coefficient  QphDS     load share of denominator\n");
    for coeff in [0.0, 0.005, 0.01, 0.02, 0.05, 0.1] {
        let q = metric::qphds_with_load_coefficient(&inputs, coeff)
            .expect("measured run has positive elapsed time");
        let load = coeff * streams as f64 * inputs.t_load.as_secs_f64();
        let denom = inputs.t_qr1.as_secs_f64()
            + inputs.t_dm.as_secs_f64()
            + inputs.t_qr2.as_secs_f64()
            + load;
        out.push_str(&format!(
            "{coeff:>10.3}  {q:>9.1}  {:>6.1}%\n",
            100.0 * load / denom
        ));
    }
    out.push_str("\n0.01 keeps the load visible without letting it dominate (paper §5.3).\n");
    out
}

/// A4 — optimizer ablation: the same star-join query with and without the
/// greedy join-reordering / predicate-pushdown pass — the paper's §2.1
/// claim that the snowstorm schema "challenges the query optimizer".
///
/// Runs on a bounded synthetic star (the naive plan materializes the full
/// cross product, which on the real tables would be astronomically large —
/// itself the point of the experiment).
pub fn ablation_optimizer(fact_rows: usize) -> String {
    use tpcds_core::engine::{ColumnMeta, Database};
    use tpcds_core::types::{DataType, Value};
    let db = Database::new();
    let col = |n: &str| ColumnMeta {
        name: n.to_string(),
        dtype: DataType::Int,
    };
    db.create_table_with_rows(
        "fact",
        vec![col("f_d1"), col("f_d2"), col("f_v")],
        (0..fact_rows as i64)
            .map(|i| vec![Value::Int(i % 40), Value::Int(i % 25), Value::Int(i)])
            .collect(),
    )
    .expect("fact");
    db.create_table_with_rows(
        "dim1",
        vec![col("d1_id"), col("d1_attr")],
        (0..40)
            .map(|i| vec![Value::Int(i), Value::Int(i * 2)])
            .collect(),
    )
    .expect("dim1");
    db.create_table_with_rows(
        "dim2",
        vec![col("d2_id"), col("d2_attr")],
        (0..25)
            .map(|i| vec![Value::Int(i), Value::Int(i * 3)])
            .collect(),
    )
    .expect("dim2");
    let sql = "select d1_attr, sum(f_v) s
               from fact, dim1, dim2
               where f_d1 = d1_id and f_d2 = d2_id and d2_attr < 9
               group by d1_attr order by s desc limit 10";
    let naive_start = std::time::Instant::now();
    let r_naive = tpcds_core::engine::query_unoptimized(&db, sql).expect("naive run");
    let t_naive = naive_start.elapsed();
    let opt_start = std::time::Instant::now();
    let r_opt = tpcds_core::engine::query(&db, sql).expect("optimized run");
    let t_opt = opt_start.elapsed();
    assert_eq!(r_naive.rows, r_opt.rows, "plans disagree");
    let speedup = t_naive.as_secs_f64() / t_opt.as_secs_f64().max(1e-9);
    format!(
        "### A4: join-order optimizer ablation ({fact_rows}-row synthetic star)\n\n\
         naive left-deep cross-join plan: {t_naive:?}\n\
         optimized (pushdown + greedy join order): {t_opt:?}\n\
         speedup: {speedup:.0}x — identical answers ({} rows)\n\n\
         The cross product grows multiplicatively with each snowflake arm;\n\
         on the real 24-table schema a naive plan is not executable at all,\n\
         which is exactly the optimizer pressure §2.1 describes.\n",
        r_opt.rows.len()
    )
}

/// Measured flat-file row lengths at a virtual scale factor — the
/// empirical check behind Table 1's row-byte column.
pub fn measured_row_lengths(sf: f64) -> String {
    let g = Generator::new(sf);
    let schema = Schema::tpcds();
    let mut min = f64::MAX;
    let mut max: f64 = 0.0;
    let mut weighted = 0.0;
    let mut n = 0usize;
    let mut rows_out = Vec::new();
    for t in schema.tables() {
        let rows = g.generate_range(t.name, 0, g.row_count(t.name).min(500));
        let mut buf = Vec::new();
        tpcds_core::dgen::flatfile::write_rows(&mut buf, &rows).expect("write");
        let avg = buf.len() as f64 / rows.len().max(1) as f64;
        min = min.min(avg);
        max = max.max(avg);
        weighted += avg;
        n += 1;
        rows_out.push((
            t.name.to_string(),
            format!("{:.0}", t.est_row_bytes()),
            format!("{avg:.0}"),
        ));
    }
    let mut out = comparison(
        "Measured flat-file bytes/row (model vs generated)",
        &rows_out,
    );
    out.push_str(&format!(
        "\nmeasured min {:.0} / max {:.0} / avg {:.0}; paper: 16 / 317 / 136\n",
        min,
        max,
        weighted / n as f64
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_report_matches_paper_exactly_on_structure() {
        let t = table1();
        // The structural rows must agree exactly.
        for line in t.lines() {
            for (name, val) in [
                ("fact tables", "7"),
                ("dimension tables", "17"),
                ("foreign keys", "104"),
                ("columns (avg)", "18"),
            ] {
                if line.starts_with(name) {
                    let cols: Vec<&str> = line.split_whitespace().collect();
                    assert_eq!(cols[cols.len() - 2], val, "paper value for {name}");
                    assert_eq!(cols[cols.len() - 1], val, "our value for {name}");
                }
            }
        }
    }

    #[test]
    fn table2_report_contains_exact_reproductions() {
        let t = table2();
        assert!(t.contains("288M"), "{t}");
        assert!(t.contains("2.9B"));
        assert!(t.contains("100M"));
        assert!(t.contains("500K"));
    }

    #[test]
    fn optimizer_ablation_agrees_and_wins() {
        let report = ablation_optimizer(500);
        assert!(report.contains("identical answers"));
        // The naive plan materializes 500 x 40 x 25 rows; even in debug the
        // optimized plan must win clearly.
        let speedup: f64 = report
            .lines()
            .find(|l| l.starts_with("speedup:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.trim_end_matches('x').parse().ok())
            .expect("speedup line");
        assert!(speedup > 5.0, "{report}");
    }

    #[test]
    fn power_ablation_shows_equal_gains() {
        let a = ablation_power();
        assert!(a.contains("treats both tunings identically: true"), "{a}");
    }
}
