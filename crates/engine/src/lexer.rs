//! SQL tokenizer.

use crate::error::{EngineError, Result};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (case-insensitive; stored lower-cased, with
    /// the original preserved for error messages only where needed).
    Ident(String),
    /// Double-quoted identifier (case preserved).
    QuotedIdent(String),
    /// Numeric literal (integer or decimal; parsed later).
    Number(String),
    /// Single-quoted string literal (embedded `''` unescaped).
    String(String),
    /// Punctuation / operator.
    Symbol(Sym),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `||`
    Concat,
}

/// Tokenizes `sql`, skipping whitespace and `--` comments.
pub fn lex(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(Sym::Semicolon));
                i += 1;
            }
            '.' if !bytes
                .get(i + 1)
                .map(|b| b.is_ascii_digit())
                .unwrap_or(false) =>
            {
                out.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            '+' => {
                out.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                out.push(Token::Symbol(Sym::Minus));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '/' => {
                out.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            '%' => {
                out.push(Token::Symbol(Sym::Percent));
                i += 1;
            }
            '=' => {
                out.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Symbol(Sym::Ne));
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Symbol(Sym::Le));
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Symbol(Sym::Ne));
                    i += 2;
                }
                _ => {
                    out.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Sym::Ge));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                out.push(Token::Symbol(Sym::Concat));
                i += 2;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(EngineError::Lex("unterminated string".into())),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::String(s));
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(EngineError::Lex("unterminated quoted identifier".into()))
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::QuotedIdent(s));
            }
            c if c.is_ascii_digit()
                || (c == '.'
                    && bytes
                        .get(i + 1)
                        .map(|b| b.is_ascii_digit())
                        .unwrap_or(false)) =>
            {
                let start = i;
                let mut seen_dot = false;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_digit() {
                        i += 1;
                    } else if b == '.' && !seen_dot {
                        seen_dot = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Number(sql[start..i].to_string()));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(sql[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(EngineError::Lex(format!(
                    "unexpected character {other:?} at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_lowercased() {
        let t = lex("SELECT Foo FROM bar").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("select".into()),
                Token::Ident("foo".into()),
                Token::Ident("from".into()),
                Token::Ident("bar".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        let t = lex("a<=b <> c || d != e").unwrap();
        assert!(t.contains(&Token::Symbol(Sym::Le)));
        assert_eq!(
            t.iter().filter(|x| **x == Token::Symbol(Sym::Ne)).count(),
            2
        );
        assert!(t.contains(&Token::Symbol(Sym::Concat)));
    }

    #[test]
    fn strings_with_escapes() {
        let t = lex("'it''s'").unwrap();
        assert_eq!(t, vec![Token::String("it's".into())]);
    }

    #[test]
    fn numbers_and_qualified_names() {
        let t = lex("t.col 1.5 42 .5").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("t".into()),
                Token::Symbol(Sym::Dot),
                Token::Ident("col".into()),
                Token::Number("1.5".into()),
                Token::Number("42".into()),
                Token::Number(".5".into()),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = lex("select -- comment\n 1").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }
}
