//! Server behavior over real sockets: framing, sessions, pinned
//! snapshots, admission, idle timeouts and graceful shutdown.

use std::sync::Arc;
use std::time::Duration;

use tpcds_engine::{ColumnMeta, Database};
use tpcds_server::{Client, ClientError, QueryOpts, Server, ServerConfig};
use tpcds_types::{DataType, Value};

fn tiny_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    let meta = vec![
        ColumnMeta {
            name: "a".to_string(),
            dtype: DataType::Int,
        },
        ColumnMeta {
            name: "b".to_string(),
            dtype: DataType::Str,
        },
    ];
    db.create_table_with_rows(
        "t",
        meta,
        vec![
            vec![Value::Int(1), Value::str("one")],
            vec![Value::Int(2), Value::str("two")],
            vec![Value::Int(3), Value::str("three")],
        ],
    )
    .unwrap();
    db
}

fn start(db: &Arc<Database>) -> Server {
    Server::start(
        Arc::clone(db),
        ServerConfig {
            max_concurrent_queries: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server starts")
}

#[test]
fn ping_query_explain_stats_roundtrip() {
    let db = tiny_db();
    let server = start(&db);
    let mut c = Client::connect(server.local_addr()).unwrap();

    let version = c.ping().unwrap();
    assert_eq!(version, db.version());

    let r = c
        .query("select a, b from t where a >= 2 order by a")
        .unwrap();
    assert_eq!(r.columns, vec!["a", "b"]);
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0].as_int(), Some(2));
    assert_eq!(r.rows[0][1].as_str(), Some("two"));
    assert_eq!(r.version, db.version());

    let plan = c.explain("select count(*) from t").unwrap();
    assert!(plan.contains("Scan t"), "unexpected plan: {plan}");

    let stats = c.stats().unwrap();
    assert!(stats.get("tables").and_then(|j| j.as_i64()).unwrap() >= 1);
    assert_eq!(
        stats.get("sessions_active").and_then(|j| j.as_i64()),
        Some(1)
    );

    server.shutdown();
}

#[test]
fn sql_errors_come_back_as_remote_errors_and_session_survives() {
    let db = tiny_db();
    let server = start(&db);
    let mut c = Client::connect(server.local_addr()).unwrap();
    match c.query("select nope from missing_table") {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("missing_table"), "{msg}"),
        other => panic!("expected remote error, got {other:?}"),
    }
    // The connection is still usable after a query error.
    assert_eq!(c.query("select a from t").unwrap().rows.len(), 3);
    server.shutdown();
}

#[test]
fn pinned_queries_read_frozen_versions_while_head_moves() {
    let db = tiny_db();
    let server = start(&db);
    let mut c = Client::connect(server.local_addr()).unwrap();

    let pinned = c.ping().unwrap();
    db.insert("t", vec![vec![Value::Int(4), Value::str("four")]])
        .unwrap();

    // Head sees four rows, the pinned version still three.
    assert_eq!(c.query("select a from t").unwrap().rows.len(), 4);
    let frozen = c.query_pinned("select a from t", pinned).unwrap();
    assert_eq!(frozen.rows.len(), 3);
    assert_eq!(frozen.version, pinned);

    // A version outside the retention window fails loudly.
    match c.query_pinned("select a from t", 999_999) {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("not retained"), "{msg}"),
        other => panic!("expected remote error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_each_get_their_own_session() {
    let db = tiny_db();
    let server = start(&db);
    let addr = server.local_addr();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..5 {
                    let r = c
                        .query(&format!("select a from t where a > {}", i % 3))
                        .unwrap();
                    assert!(!r.rows.is_empty());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // All sessions drained back to zero.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.sessions_active() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.sessions_active(), 0);
    server.shutdown();
}

#[test]
fn idle_sessions_are_closed_by_the_server() {
    let db = tiny_db();
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig {
            idle_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.ping().unwrap();
    std::thread::sleep(Duration::from_millis(800));
    // The server hung up; the next round trip fails.
    assert!(c.ping().is_err(), "idle session was not closed");
    server.shutdown();
}

#[test]
fn client_shutdown_frame_stops_the_server() {
    let db = tiny_db();
    let server = start(&db);
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.shutdown().unwrap();
    // wait() returns because a client asked for shutdown.
    server.wait();
    assert!(server.is_shutting_down());
    assert!(
        Client::connect(server.local_addr()).is_err() || {
            // The OS may still accept briefly; a round trip must fail.
            let mut c2 = Client::connect(server.local_addr()).unwrap();
            c2.ping().is_err()
        }
    );
}

#[test]
fn sys_tables_answer_over_the_wire_with_client_identity() {
    let db = tiny_db();
    let server = start(&db);
    let mut c = Client::connect(server.local_addr()).unwrap();

    // A client-assigned query_id rides the request, comes back in the
    // response, and lands verbatim in sys.query_log.
    let r = c
        .query_with(
            "select a from t order by a",
            &QueryOpts {
                query_id: Some("wire-q1".to_string()),
                ..QueryOpts::default()
            },
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.query_id.as_deref(), Some("wire-q1"));

    // sys.sessions shows this connection with its traffic counters.
    let sessions = c
        .query("select session, state, queries, bytes_in, bytes_out from sys.sessions")
        .unwrap();
    assert_eq!(sessions.rows.len(), 1, "exactly this connection");
    assert!(sessions.rows[0][0].as_int().unwrap() > 0);
    // The sys.sessions query itself is in-flight, so state is "query".
    assert_eq!(sessions.rows[0][1].as_str(), Some("query"));
    assert!(sessions.rows[0][2].as_int().unwrap() >= 1);
    assert!(
        sessions.rows[0][3].as_int().unwrap() > 0,
        "bytes_in counted"
    );
    assert!(
        sessions.rows[0][4].as_int().unwrap() > 0,
        "bytes_out counted"
    );

    // The scanning query sees itself in sys.queries, same identity.
    let inflight = c
        .query_with(
            "select query_id, state from sys.queries",
            &QueryOpts {
                query_id: Some("wire-q2".to_string()),
                ..QueryOpts::default()
            },
        )
        .unwrap();
    assert_eq!(inflight.rows.len(), 1);
    assert_eq!(inflight.rows[0][0].as_str(), Some("wire-q2"));
    assert_eq!(inflight.rows[0][1].as_str(), Some("running"));

    // The log tied the work to the wire identity, with real timings and
    // the session id (> 0 distinguishes server-side from in-process).
    let logged = c
        .query("select wall_us, session, rows from sys.query_log where query_id = 'wire-q1'")
        .unwrap();
    assert_eq!(logged.rows.len(), 1);
    assert!(
        logged.rows[0][0].as_int().unwrap() > 0,
        "non-zero wall time"
    );
    assert!(logged.rows[0][1].as_int().unwrap() > 0, "server session id");
    assert_eq!(logged.rows[0][2].as_int(), Some(3));

    // The acceptance query shape works end to end over TCP.
    let top = c
        .query("select query_id, wall_us from sys.query_log order by wall_us desc limit 5")
        .unwrap();
    assert!(!top.rows.is_empty());
    let walls: Vec<i64> = top.rows.iter().map(|r| r[1].as_int().unwrap()).collect();
    assert!(walls.windows(2).all(|w| w[0] >= w[1]), "{walls:?}");

    server.shutdown();
}

#[test]
fn killed_mid_query_connection_restores_gauges() {
    let db = Arc::new(Database::new());
    let meta = vec![ColumnMeta {
        name: "a".to_string(),
        dtype: DataType::Int,
    }];
    let rows: Vec<Vec<Value>> = (0..120).map(|i| vec![Value::Int(i)]).collect();
    db.create_table_with_rows("big", meta, rows).unwrap();
    let server = start(&db);

    // Hand-roll the frame so we can vanish without reading the response.
    {
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let req = tpcds_obs::json::Json::Obj(vec![
            (
                "type".to_string(),
                tpcds_obs::json::Json::Str("query".to_string()),
            ),
            (
                "sql".to_string(),
                tpcds_obs::json::Json::Str(
                    // ~1.7M-tuple cross join: long enough to still be
                    // running when the socket dies under it.
                    "select count(*) from big x, big y, big z".to_string(),
                ),
            ),
        ]);
        tpcds_server::protocol::write_frame(&mut raw, &req).unwrap();
        // Let the server pick the query up, then hang up mid-execution.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.queries_inflight() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(server.queries_inflight() > 0, "query never started");
    } // drop = RST/FIN while the query runs

    // The RAII guards must walk both gauges back to zero even though the
    // session died on an error path, not a clean request/response cycle.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while (server.queries_inflight() > 0 || server.sessions_active() > 0)
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(server.queries_inflight(), 0, "queries_inflight leaked");
    assert_eq!(server.sessions_active(), 0, "sessions_active leaked");
    // And the registry-backed sys tables agree (queried in-process).
    let r = tpcds_engine::query(&db, "select count(*) from sys.queries").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(0));
    let r = tpcds_engine::query(&db, "select count(*) from sys.sessions").unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(0));
    server.shutdown();
}

#[test]
fn slow_queries_run_through_analyze_and_are_counted() {
    let db = tiny_db();
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig {
            slow_query_ms: 1, // every non-trivial query trips it
            ..ServerConfig::default()
        },
    )
    .unwrap();
    tpcds_obs::metrics::enable();
    let mut c = Client::connect(server.local_addr()).unwrap();
    // Heavy enough to clear 1ms; results must be unaffected by the
    // slow-query path routing execution through EXPLAIN ANALYZE.
    let r = c
        .query("select count(*) from t a, t b, t c, t d, t e, t f, t g, t h")
        .unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(3i64.pow(8)));
    let slow = tpcds_obs::metrics::counters_snapshot()
        .into_iter()
        .find(|(name, _)| name == "server.slow_queries")
        .map(|(_, v)| v)
        .unwrap_or(0);
    assert!(slow >= 1, "slow query was not counted");
    server.shutdown();
}

#[test]
fn query_options_cross_the_wire() {
    let db = tiny_db();
    let server = start(&db);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let r = c
        .query_with(
            "select count(*) c from t",
            &QueryOpts {
                mode: Some("off"),
                threads: Some(1),
                ..QueryOpts::default()
            },
        )
        .unwrap();
    assert_eq!(r.rows[0][0].as_int(), Some(3));
    match c.query_with(
        "select 1",
        &QueryOpts {
            mode: Some("sideways"),
            ..QueryOpts::default()
        },
    ) {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("sideways"), "{msg}"),
        other => panic!("expected remote error, got {other:?}"),
    }
    server.shutdown();
}
