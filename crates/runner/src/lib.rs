//! # tpcds-runner
//!
//! The TPC-DS execution rules and metrics (paper §5): the benchmark test
//! is a database load test followed by a performance test of two
//! multi-stream query runs around one data maintenance run (Figure 11);
//! the primary metric is QphDS@SF with the 1%·S load-time term; companion
//! metrics are $/QphDS under a documented synthetic price model and the
//! legacy geometric-mean power metric used for the ablation study.

#![warn(missing_docs)]

pub mod metric;
pub mod pricing;
pub mod streams;
pub mod validation;

pub use metric::{power_metric, qphds, MetricInputs};
pub use pricing::{price_performance, PriceModel};
pub use streams::min_streams;
pub use validation::{fingerprint, qualify, AnswerFingerprint};

use std::sync::Mutex;
use std::time::{Duration, Instant};
use tpcds_dgen::Generator;
use tpcds_engine::Database;
use tpcds_maint::MaintenanceReport;
use tpcds_obs::json::Json;
use tpcds_obs::report::LatencyStats;
use tpcds_qgen::Workload;

/// Which auxiliary data structures the load builds (paper §2.1: the
/// reporting part may use rich structures, the ad-hoc part only basic
/// ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuxLevel {
    /// No secondary structures at all.
    None,
    /// Hash indexes on the reporting (catalog) part's join columns —
    /// the configuration the execution rules intend.
    Reporting,
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Scale factor (GB of raw data; fractional "virtual" SFs supported).
    pub scale_factor: f64,
    /// RNG seed (dsdgen's default unless overridden).
    pub seed: u64,
    /// Number of concurrent query streams; `None` uses the Figure 12
    /// minimum for the scale factor.
    pub streams: Option<usize>,
    /// Restrict each stream to the first `n` queries of its permutation
    /// (full 99 when `None`) — useful for quick runs; the metric adjusts.
    pub queries_per_stream: Option<usize>,
    /// Auxiliary structures built during the load.
    pub aux: AuxLevel,
    /// Morsel worker count for columnar scans (`--threads N`); `None`
    /// defers to `TPCDS_THREADS` and then `available_parallelism()`.
    pub threads: Option<usize>,
    /// Route both query runs through real TCP connections: the runner
    /// starts a loopback [`tpcds_server::Server`] after the load and each
    /// stream becomes a connected client, giving the benchmark the
    /// client/server shape the TPC-DS throughput test describes.
    pub via_server: bool,
}

impl BenchmarkConfig {
    /// A small smoke-test configuration.
    pub fn tiny() -> Self {
        BenchmarkConfig {
            scale_factor: 0.01,
            seed: tpcds_types::rng::DEFAULT_SEED,
            streams: Some(2),
            queries_per_stream: Some(10),
            aux: AuxLevel::Reporting,
            threads: None,
            via_server: false,
        }
    }
}

/// Elapsed time of one executed query.
#[derive(Debug, Clone)]
pub struct QueryTiming {
    /// Query run (1 or 2; Figure 11 runs two).
    pub run: u32,
    /// Stream index (0-based).
    pub stream: usize,
    /// Query number (1..=99).
    pub query: u32,
    /// Wall-clock elapsed.
    pub elapsed: Duration,
    /// Result row count.
    pub rows: usize,
}

/// Result of a full benchmark test.
#[derive(Debug)]
pub struct BenchmarkResult {
    /// The configuration used.
    pub config: BenchmarkConfig,
    /// Streams actually run.
    pub streams: usize,
    /// Queries per stream actually run.
    pub queries_per_stream: usize,
    /// Elapsed database load (timed portion).
    pub t_load: Duration,
    /// Elapsed query run 1.
    pub t_qr1: Duration,
    /// Elapsed data maintenance run.
    pub t_dm: Duration,
    /// Elapsed query run 2.
    pub t_qr2: Duration,
    /// Per-query timings of both runs.
    pub query_timings: Vec<QueryTiming>,
    /// Data maintenance outcome.
    pub maintenance: MaintenanceReport,
    /// The loaded database (kept for inspection / follow-up queries;
    /// shared because server mode keeps a reference across threads).
    pub db: std::sync::Arc<Database>,
}

impl BenchmarkResult {
    /// The metric inputs this run produced.
    pub fn metric_inputs(&self) -> MetricInputs {
        MetricInputs {
            scale_factor: self.config.scale_factor,
            streams: self.streams,
            queries_per_stream: self.queries_per_stream,
            t_qr1: self.t_qr1,
            t_dm: self.t_dm,
            t_qr2: self.t_qr2,
            t_load: self.t_load,
        }
    }

    /// The primary performance metric. A completed run always measured
    /// positive elapsed time, so the metric is defined.
    pub fn qphds(&self) -> f64 {
        qphds(&self.metric_inputs()).expect("completed run has positive elapsed time")
    }

    /// Per-query latency distributions (p50/p95/max over both runs and all
    /// streams), keyed by query number.
    pub fn latency_summary(&self) -> std::collections::BTreeMap<u32, LatencyStats> {
        let mut durs: std::collections::BTreeMap<u32, Vec<u64>> = Default::default();
        for t in &self.query_timings {
            durs.entry(t.query)
                .or_default()
                .push(t.elapsed.as_micros() as u64);
        }
        durs.into_iter()
            .map(|(q, d)| (q, LatencyStats::from_durations_us(d)))
            .collect()
    }

    /// Serializes the whole result — config, phase timings, the metric,
    /// per-query timings and latency summaries, and the maintenance
    /// outcome — as one JSON object (the CLI's `--json` output).
    pub fn to_json(&self) -> Json {
        let us = |d: Duration| Json::Int(d.as_micros() as i64);
        let timings: Vec<Json> = self
            .query_timings
            .iter()
            .map(|t| {
                Json::Obj(vec![
                    ("run".into(), Json::Int(t.run as i64)),
                    ("stream".into(), Json::Int(t.stream as i64)),
                    ("query".into(), Json::Int(t.query as i64)),
                    ("elapsed_us".into(), Json::Int(t.elapsed.as_micros() as i64)),
                    ("rows".into(), Json::Int(t.rows as i64)),
                ])
            })
            .collect();
        let latency: Vec<(String, Json)> = self
            .latency_summary()
            .into_iter()
            .map(|(q, s)| {
                (
                    format!("q{q}"),
                    Json::Obj(vec![
                        ("count".into(), Json::Int(s.count as i64)),
                        ("p50_us".into(), Json::Int(s.p50_us as i64)),
                        ("p95_us".into(), Json::Int(s.p95_us as i64)),
                        ("max_us".into(), Json::Int(s.max_us as i64)),
                    ]),
                )
            })
            .collect();
        let maintenance: Vec<Json> = self
            .maintenance
            .ops
            .iter()
            .map(|o| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(o.name.to_string())),
                    ("updated".into(), Json::Int(o.updated as i64)),
                    ("inserted".into(), Json::Int(o.inserted as i64)),
                    ("deleted".into(), Json::Int(o.deleted as i64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("scale_factor".into(), Json::Float(self.config.scale_factor)),
            ("seed".into(), Json::Int(self.config.seed as i64)),
            ("streams".into(), Json::Int(self.streams as i64)),
            (
                "queries_per_stream".into(),
                Json::Int(self.queries_per_stream as i64),
            ),
            ("t_load_us".into(), us(self.t_load)),
            ("t_qr1_us".into(), us(self.t_qr1)),
            ("t_dm_us".into(), us(self.t_dm)),
            ("t_qr2_us".into(), us(self.t_qr2)),
            (
                "qphds".into(),
                qphds(&self.metric_inputs())
                    .map(Json::Float)
                    .unwrap_or(Json::Null),
            ),
            ("query_timings".into(), Json::Arr(timings)),
            ("latency".into(), Json::Obj(latency)),
            ("maintenance".into(), Json::Arr(maintenance)),
        ])
    }
}

/// Error type for benchmark runs.
#[derive(Debug)]
pub enum RunError {
    /// Engine failure, annotated with the query number (0 = load/DM).
    Engine(u32, tpcds_engine::EngineError),
    /// Query generation failure.
    Template(tpcds_qgen::TemplateError),
    /// Server-mode failure (start, connect, or remote query), annotated
    /// with the query number (0 = not query-specific).
    Server(u32, String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Engine(q, e) => write!(f, "query {q}: {e}"),
            RunError::Template(e) => write!(f, "{e}"),
            RunError::Server(0, e) => write!(f, "server: {e}"),
            RunError::Server(q, e) => write!(f, "query {q} via server: {e}"),
        }
    }
}
impl std::error::Error for RunError {}

/// Runs the complete benchmark test: load test, query run 1, data
/// maintenance, query run 2 (Figure 11).
pub fn run_benchmark(config: BenchmarkConfig) -> Result<BenchmarkResult, RunError> {
    tpcds_storage::set_threads(config.threads);
    let generator = Generator::with_seed(config.scale_factor, config.seed);
    let workload = Workload::tpcds().map_err(RunError::Template)?;
    let streams = config
        .streams
        .unwrap_or_else(|| min_streams(config.scale_factor) as usize)
        .max(1);
    let queries_per_stream = config.queries_per_stream.unwrap_or(99).clamp(1, 99);

    // ---- Load test (timed) ----
    let db = std::sync::Arc::new(Database::new());
    let mut phase = tpcds_obs::span("runner", "phase").field("phase", "load");
    let wm = tpcds_obs::mem::Watermark::start();
    let load_start = Instant::now();
    tpcds_maint::load_initial_population(&db, &generator).map_err(|e| RunError::Engine(0, e))?;
    if config.aux == AuxLevel::Reporting {
        build_reporting_aux(&db).map_err(|e| RunError::Engine(0, e))?;
    }
    let t_load = load_start.elapsed();
    phase.add_field("mem_peak", wm.peak_delta() as i64);
    drop(wm);
    phase.finish();

    // Server mode: the query runs go over loopback TCP. The untimed
    // server start sits between the load and QR1, mirroring a real
    // deployment bringing the database online before streams connect.
    let server = if config.via_server {
        let server_config = tpcds_server::ServerConfig {
            max_concurrent_queries: streams,
            ..tpcds_server::ServerConfig::default()
        };
        Some(
            tpcds_server::Server::start(std::sync::Arc::clone(&db), server_config)
                .map_err(|e| RunError::Server(0, e.to_string()))?,
        )
    } else {
        None
    };
    let server_addr = server.as_ref().map(|s| s.local_addr());

    // ---- Query run 1 ----
    let mut phase = tpcds_obs::span("runner", "phase").field("phase", "qr1");
    let wm = tpcds_obs::mem::Watermark::start();
    let (t_qr1, mut query_timings) = query_run(
        &db,
        &workload,
        &config,
        streams,
        queries_per_stream,
        1,
        server_addr,
    )?;
    phase.add_field("mem_peak", wm.peak_delta() as i64);
    drop(wm);
    phase.finish();

    // ---- Data maintenance run ----
    let mut phase = tpcds_obs::span("runner", "phase").field("phase", "dm");
    let wm = tpcds_obs::mem::Watermark::start();
    let dm_start = Instant::now();
    let maintenance =
        tpcds_maint::run_maintenance(&db, &generator, 0).map_err(|e| RunError::Engine(0, e))?;
    let t_dm = dm_start.elapsed();
    phase.add_field("mem_peak", wm.peak_delta() as i64);
    drop(wm);
    phase.finish();

    // ---- Query run 2 ----
    let mut phase = tpcds_obs::span("runner", "phase").field("phase", "qr2");
    let wm = tpcds_obs::mem::Watermark::start();
    let (t_qr2, timings2) = query_run(
        &db,
        &workload,
        &config,
        streams,
        queries_per_stream,
        2,
        server_addr,
    )?;
    query_timings.extend(timings2);
    phase.add_field("mem_peak", wm.peak_delta() as i64);
    drop(wm);
    phase.finish();

    if let Some(server) = server {
        server.shutdown();
    }

    Ok(BenchmarkResult {
        config,
        streams,
        queries_per_stream,
        t_load,
        t_qr1,
        t_dm,
        t_qr2,
        query_timings,
        maintenance,
        db,
    })
}

/// Executes one query run: `streams` concurrent sessions, each running its
/// own permutation of the workload with stream-specific substitutions.
/// `run` is 1 or 2; run 2's sessions use fresh stream IDs so their
/// permutations and substitutions differ from run 1's. With `server_addr`
/// set, every stream opens its own TCP connection and the queries execute
/// remotely (`via_server` mode).
fn query_run(
    db: &Database,
    workload: &Workload,
    config: &BenchmarkConfig,
    streams: usize,
    queries_per_stream: usize,
    run: u32,
    server_addr: Option<std::net::SocketAddr>,
) -> Result<(Duration, Vec<QueryTiming>), RunError> {
    let stream_base = (run as u64 - 1) * streams as u64;
    let timings: Mutex<Vec<QueryTiming>> = Mutex::new(Vec::new());
    let failure: Mutex<Option<RunError>> = Mutex::new(None);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for s in 0..streams {
            let timings = &timings;
            let failure = &failure;
            scope.spawn(move || {
                let mut client = match server_addr.map(tpcds_server::Client::connect) {
                    None => None,
                    Some(Ok(c)) => Some(c),
                    Some(Err(e)) => {
                        *failure.lock().expect("poisoned") =
                            Some(RunError::Server(0, e.to_string()));
                        return;
                    }
                };
                let stream_id = stream_base + s as u64;
                let order = workload.stream_order(config.seed, stream_id);
                for id in order.into_iter().take(queries_per_stream) {
                    let sql = match workload.instantiate(id, config.seed, stream_id) {
                        Ok(sql) => sql,
                        Err(e) => {
                            *failure.lock().expect("poisoned") = Some(RunError::Template(e));
                            return;
                        }
                    };
                    let span = tpcds_obs::span("runner", "query")
                        .field("run", run)
                        .field("stream", s)
                        .field("query", id);
                    let q_start = Instant::now();
                    let rows = match &mut client {
                        None => tpcds_engine::query(db, &sql)
                            .map(|r| r.rows.len())
                            .map_err(|e| RunError::Engine(id, e)),
                        Some(c) => c
                            .query(&sql)
                            .map(|r| r.rows.len())
                            .map_err(|e| RunError::Server(id, e.to_string())),
                    };
                    match rows {
                        Ok(rows) => {
                            span.field("rows", rows).finish();
                            timings.lock().expect("poisoned").push(QueryTiming {
                                run,
                                stream: s,
                                query: id,
                                elapsed: q_start.elapsed(),
                                rows,
                            })
                        }
                        Err(e) => {
                            *failure.lock().expect("poisoned") = Some(e);
                            return;
                        }
                    }
                }
            });
        }
    });
    if let Some(e) = failure.into_inner().expect("poisoned") {
        return Err(e);
    }
    Ok((start.elapsed(), timings.into_inner().expect("poisoned")))
}

/// Builds the reporting part's auxiliary structures: hash indexes on the
/// catalog channel's most selective join/filter columns, plus a
/// pre-aggregated monthly revenue summary (the materialized-view-style
/// structure the catalog channel is allowed; paper §2.1).
pub fn build_reporting_aux(db: &Database) -> tpcds_engine::Result<()> {
    for (table, column) in [
        ("catalog_sales", "cs_sold_date_sk"),
        ("catalog_sales", "cs_item_sk"),
        ("catalog_sales", "cs_bill_customer_sk"),
        ("catalog_returns", "cr_returned_date_sk"),
        ("catalog_returns", "cr_order_number"),
        ("catalog_page", "cp_catalog_page_sk"),
        ("call_center", "cc_call_center_sk"),
    ] {
        db.create_index(table, column)?;
    }
    if !db.has_table("catalog_monthly_summary") {
        tpcds_engine::create_table_as(
            db,
            "catalog_monthly_summary",
            "select d_year, d_moy, sum(cs_ext_sales_price) net_sales,
                    sum(cs_net_profit) net_profit, count(*) line_items
             from catalog_sales, date_dim
             where cs_sold_date_sk = d_date_sk
             group by d_year, d_moy",
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_benchmark_completes_all_phases() {
        let result = run_benchmark(BenchmarkConfig::tiny()).unwrap();
        assert_eq!(result.streams, 2);
        assert_eq!(result.queries_per_stream, 10);
        // Two runs x streams x queries.
        assert_eq!(result.query_timings.len(), 2 * 2 * 10);
        assert!(result.t_load > Duration::ZERO);
        assert!(result.t_qr1 > Duration::ZERO);
        assert!(result.t_dm > Duration::ZERO);
        assert!(result.t_qr2 > Duration::ZERO);
        assert_eq!(result.maintenance.ops.len(), 12);
        assert!(result.qphds() > 0.0);
        // Both query runs are represented, 20 timings each.
        for run in [1u32, 2] {
            assert_eq!(
                result.query_timings.iter().filter(|t| t.run == run).count(),
                20
            );
        }
        // Latency summary covers every executed query with sane stats.
        let latency = result.latency_summary();
        let total: u64 = latency.values().map(|s| s.count).sum();
        assert_eq!(total, 40);
        for s in latency.values() {
            assert!(s.p50_us <= s.p95_us && s.p95_us <= s.max_us);
        }
        // JSON export round-trips through the obs parser.
        let json = result.to_json().to_string();
        let parsed = tpcds_obs::json::Json::parse(&json).unwrap();
        assert_eq!(parsed.get("streams").and_then(|j| j.as_i64()), Some(2));
        assert!(parsed.get("qphds").and_then(|j| j.as_f64()).unwrap() > 0.0);
        assert_eq!(
            parsed
                .get("query_timings")
                .and_then(|j| j.as_arr())
                .map(|a| a.len()),
            Some(40)
        );
    }

    #[test]
    fn server_mode_runs_the_query_streams_over_tcp() {
        let result = run_benchmark(BenchmarkConfig {
            scale_factor: 0.005,
            queries_per_stream: Some(5),
            via_server: true,
            ..BenchmarkConfig::tiny()
        })
        .unwrap();
        // Same shape as the in-process run: 2 runs x 2 streams x 5 queries.
        assert_eq!(result.query_timings.len(), 2 * 2 * 5);
        assert!(result.qphds() > 0.0);
        // The shared handle is still queryable after the server stopped.
        assert!(
            tpcds_engine::query(&result.db, "select count(*) from item")
                .unwrap()
                .rows[0][0]
                .as_int()
                .unwrap()
                > 0
        );
    }

    #[test]
    fn streams_use_different_orderings() {
        let cfg = BenchmarkConfig::tiny();
        let w = Workload::tpcds().unwrap();
        let o0 = w.stream_order(cfg.seed, 0);
        let o1 = w.stream_order(cfg.seed, 1);
        assert_ne!(o0[..5], o1[..5]);
    }
}
