//! Bound (name-resolved) expressions and their evaluation.
//!
//! Evaluation follows SQL three-valued logic: comparisons over NULL yield
//! NULL, AND/OR use Kleene logic, and a WHERE predicate admits a row only
//! when it evaluates to exactly TRUE.

use crate::error::{EngineError, Result};
use crate::exec::ExecCtx;
use crate::plan::Plan;
use crate::sync::Mutex;
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tpcds_types::{DataType, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn test(&self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

// Arithmetic operators and scalar functions are defined in `tpcds-types`
// so the columnar expression kernels share the exact same semantics
// (checked overflow, decimal rescale, NULL-on-zero-divide); re-exported
// here for existing callers.
pub use tpcds_types::scalar::{ArithOp, ScalarFunc};

/// A correlated or uncorrelated subplan embedded in an expression.
#[derive(Clone)]
pub struct SubPlan {
    /// The bound plan.
    pub plan: Arc<Plan>,
    /// Outer-scope column positions the plan references (`OuterCol`
    /// indexes); the memo key is the tuple of these values.
    pub outer_refs: Vec<usize>,
}

impl std::fmt::Debug for SubPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubPlan(outer_refs={:?})", self.outer_refs)
    }
}

/// A bound scalar expression, evaluated against a row.
#[derive(Debug, Clone)]
pub enum BExpr {
    /// Column of the current row.
    Col(usize),
    /// Column of the enclosing query's row (correlated subqueries).
    OuterCol(usize),
    /// Literal.
    Lit(Value),
    /// Comparison.
    Cmp(CmpOp, Box<BExpr>, Box<BExpr>),
    /// Kleene AND.
    And(Box<BExpr>, Box<BExpr>),
    /// Kleene OR.
    Or(Box<BExpr>, Box<BExpr>),
    /// NOT.
    Not(Box<BExpr>),
    /// Arithmetic.
    Arith(ArithOp, Box<BExpr>, Box<BExpr>),
    /// Unary minus.
    Neg(Box<BExpr>),
    /// `IS [NOT] NULL`.
    IsNull(Box<BExpr>, bool),
    /// `[NOT] LIKE`.
    Like(Box<BExpr>, Box<BExpr>, bool),
    /// `[NOT] IN (values...)`.
    InList(Box<BExpr>, Vec<BExpr>, bool),
    /// `[NOT] BETWEEN`.
    Between(Box<BExpr>, Box<BExpr>, Box<BExpr>, bool),
    /// CASE.
    Case {
        /// CASE operand (simple form).
        operand: Option<Box<BExpr>>,
        /// WHEN/THEN pairs.
        branches: Vec<(BExpr, BExpr)>,
        /// ELSE.
        else_branch: Option<Box<BExpr>>,
    },
    /// CAST to a runtime type.
    Cast(Box<BExpr>, DataType),
    /// Scalar function.
    Func(ScalarFunc, Vec<BExpr>),
    /// `||`.
    Concat(Box<BExpr>, Box<BExpr>),
    /// Scalar subquery with memoization over correlated values.
    ScalarSubquery(SubPlan, Arc<Mutex<HashMap<Vec<Value>, Value>>>),
    /// `[NOT] IN (subquery)`.
    #[allow(clippy::type_complexity)]
    InSubquery(
        Box<BExpr>,
        SubPlan,
        bool,
        Arc<Mutex<HashMap<Vec<Value>, Arc<HashSet<Value>>>>>,
    ),
    /// `[NOT] EXISTS (subquery)`.
    Exists(SubPlan, bool, Arc<Mutex<HashMap<Vec<Value>, bool>>>),
}

impl BExpr {
    /// Boxed helper.
    pub fn boxed(self) -> Box<BExpr> {
        Box::new(self)
    }

    /// Evaluates against `row`; `outer` is the enclosing query's row when
    /// evaluating inside a correlated subplan.
    pub fn eval(&self, row: &[Value], ctx: &ExecCtx<'_>, outer: Option<&[Value]>) -> Result<Value> {
        match self {
            BExpr::Col(i) => Ok(row
                .get(*i)
                .cloned()
                .ok_or_else(|| EngineError::exec(format!("column index {i} out of range")))?),
            BExpr::OuterCol(i) => {
                let o = outer.ok_or_else(|| EngineError::exec("no outer row in scope"))?;
                Ok(o.get(*i)
                    .cloned()
                    .ok_or_else(|| EngineError::exec(format!("outer column {i} out of range")))?)
            }
            BExpr::Lit(v) => Ok(v.clone()),
            BExpr::Cmp(op, l, r) => {
                let lv = l.eval(row, ctx, outer)?;
                let rv = r.eval(row, ctx, outer)?;
                Ok(match lv.sql_cmp(&rv) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(op.test(ord)),
                })
            }
            BExpr::And(l, r) => {
                let lv = l.eval(row, ctx, outer)?;
                if lv == Value::Bool(false) {
                    return Ok(Value::Bool(false));
                }
                let rv = r.eval(row, ctx, outer)?;
                Ok(match (lv.as_bool(), rv.as_bool()) {
                    (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                })
            }
            BExpr::Or(l, r) => {
                let lv = l.eval(row, ctx, outer)?;
                if lv == Value::Bool(true) {
                    return Ok(Value::Bool(true));
                }
                let rv = r.eval(row, ctx, outer)?;
                Ok(match (lv.as_bool(), rv.as_bool()) {
                    (_, Some(true)) => Value::Bool(true),
                    (Some(false), Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                })
            }
            BExpr::Not(e) => Ok(match e.eval(row, ctx, outer)?.as_bool() {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            }),
            BExpr::Arith(op, l, r) => {
                let lv = l.eval(row, ctx, outer)?;
                let rv = r.eval(row, ctx, outer)?;
                arith(*op, &lv, &rv)
            }
            BExpr::Neg(e) => {
                tpcds_types::scalar::neg(&e.eval(row, ctx, outer)?).map_err(EngineError::exec)
            }
            BExpr::IsNull(e, negated) => {
                let v = e.eval(row, ctx, outer)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            BExpr::Like(e, p, negated) => {
                let v = e.eval(row, ctx, outer)?;
                let pat = p.eval(row, ctx, outer)?;
                match (v.as_str(), pat.as_str()) {
                    (Some(s), Some(pat)) => Ok(Value::Bool(like_match(s, pat) != *negated)),
                    _ => Ok(Value::Null),
                }
            }
            BExpr::InList(e, list, negated) => {
                let v = e.eval(row, ctx, outer)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(row, ctx, outer)?;
                    match v.sql_cmp(&iv) {
                        Some(Ordering::Equal) => return Ok(Value::Bool(!*negated)),
                        None if iv.is_null() => saw_null = true,
                        _ => {}
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            BExpr::Between(e, lo, hi, negated) => {
                let v = e.eval(row, ctx, outer)?;
                let lov = lo.eval(row, ctx, outer)?;
                let hiv = hi.eval(row, ctx, outer)?;
                match (v.sql_cmp(&lov), v.sql_cmp(&hiv)) {
                    (Some(a), Some(b)) => {
                        let inside = a != Ordering::Less && b != Ordering::Greater;
                        Ok(Value::Bool(inside != *negated))
                    }
                    _ => Ok(Value::Null),
                }
            }
            BExpr::Case {
                operand,
                branches,
                else_branch,
            } => {
                let op_val = operand
                    .as_ref()
                    .map(|o| o.eval(row, ctx, outer))
                    .transpose()?;
                for (cond, result) in branches {
                    let hit = match &op_val {
                        Some(v) => {
                            let cv = cond.eval(row, ctx, outer)?;
                            v.sql_cmp(&cv) == Some(Ordering::Equal)
                        }
                        None => cond.eval(row, ctx, outer)?.as_bool().unwrap_or(false),
                    };
                    if hit {
                        return result.eval(row, ctx, outer);
                    }
                }
                match else_branch {
                    Some(e) => e.eval(row, ctx, outer),
                    None => Ok(Value::Null),
                }
            }
            BExpr::Cast(e, ty) => cast(e.eval(row, ctx, outer)?, *ty),
            BExpr::Func(f, args) => {
                let vals: Result<Vec<Value>> =
                    args.iter().map(|a| a.eval(row, ctx, outer)).collect();
                scalar_func(*f, &vals?)
            }
            BExpr::Concat(l, r) => {
                let lv = l.eval(row, ctx, outer)?;
                let rv = r.eval(row, ctx, outer)?;
                Ok(tpcds_types::scalar::concat(&lv, &rv))
            }
            BExpr::ScalarSubquery(sub, cache) => {
                let key = memo_key(sub, row);
                if let Some(v) = cache.lock().get(&key) {
                    return Ok(v.clone());
                }
                let rows = crate::exec::execute(&sub.plan, ctx, Some(row))?;
                if rows.len() > 1 {
                    return Err(EngineError::exec(
                        "scalar subquery returned more than one row",
                    ));
                }
                let v = rows
                    .into_iter()
                    .next()
                    .and_then(|r| r.into_iter().next())
                    .unwrap_or(Value::Null);
                cache.lock().insert(key, v.clone());
                Ok(v)
            }
            BExpr::InSubquery(e, sub, negated, cache) => {
                let v = e.eval(row, ctx, outer)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let key = memo_key(sub, row);
                let set = {
                    let cached = cache.lock().get(&key).cloned();
                    match cached {
                        Some(s) => s,
                        None => {
                            let rows = crate::exec::execute(&sub.plan, ctx, Some(row))?;
                            let mut s = HashSet::new();
                            let mut has_null = false;
                            for r in rows {
                                let val = r.into_iter().next().unwrap_or(Value::Null);
                                if val.is_null() {
                                    has_null = true;
                                } else {
                                    s.insert(val);
                                }
                            }
                            // Track NULL membership with a sentinel set
                            // entry-free approach: store under a Bool key
                            // wrapper would be hacky — keep NULL semantics
                            // simple: presence of NULLs makes non-matches
                            // UNKNOWN, which we approximate as false here.
                            let _ = has_null;
                            let s = Arc::new(s);
                            cache.lock().insert(key.clone(), s.clone());
                            s
                        }
                    }
                };
                Ok(Value::Bool(set.contains(&v) != *negated))
            }
            BExpr::Exists(sub, negated, cache) => {
                let key = memo_key(sub, row);
                if let Some(b) = cache.lock().get(&key) {
                    return Ok(Value::Bool(b != negated));
                }
                let rows = crate::exec::execute(&sub.plan, ctx, Some(row))?;
                let b = !rows.is_empty();
                cache.lock().insert(key, b);
                Ok(Value::Bool(b != *negated))
            }
        }
    }

    /// True when the predicate admits the row (strict TRUE).
    pub fn matches(
        &self,
        row: &[Value],
        ctx: &ExecCtx<'_>,
        outer: Option<&[Value]>,
    ) -> Result<bool> {
        Ok(self.eval(row, ctx, outer)? == Value::Bool(true))
    }

    /// Visits all column indexes referenced by this expression.
    pub fn visit_columns(&self, f: &mut impl FnMut(usize)) {
        match self {
            BExpr::Col(i) => f(*i),
            BExpr::OuterCol(_) | BExpr::Lit(_) => {}
            BExpr::Cmp(_, a, b)
            | BExpr::And(a, b)
            | BExpr::Or(a, b)
            | BExpr::Arith(_, a, b)
            | BExpr::Concat(a, b) => {
                a.visit_columns(f);
                b.visit_columns(f);
            }
            BExpr::Not(a) | BExpr::Neg(a) | BExpr::IsNull(a, _) | BExpr::Cast(a, _) => {
                a.visit_columns(f)
            }
            BExpr::Like(a, b, _) => {
                a.visit_columns(f);
                b.visit_columns(f);
            }
            BExpr::InList(a, list, _) => {
                a.visit_columns(f);
                for e in list {
                    e.visit_columns(f);
                }
            }
            BExpr::Between(a, lo, hi, _) => {
                a.visit_columns(f);
                lo.visit_columns(f);
                hi.visit_columns(f);
            }
            BExpr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(o) = operand {
                    o.visit_columns(f);
                }
                for (c, r) in branches {
                    c.visit_columns(f);
                    r.visit_columns(f);
                }
                if let Some(e) = else_branch {
                    e.visit_columns(f);
                }
            }
            BExpr::Func(_, args) => {
                for a in args {
                    a.visit_columns(f);
                }
            }
            BExpr::ScalarSubquery(sub, _) => {
                for i in &sub.outer_refs {
                    f(*i);
                }
            }
            BExpr::InSubquery(a, sub, _, _) => {
                a.visit_columns(f);
                for i in &sub.outer_refs {
                    f(*i);
                }
            }
            BExpr::Exists(sub, _, _) => {
                for i in &sub.outer_refs {
                    f(*i);
                }
            }
        }
    }

    /// Rewrites column indexes through `map` (old index → new index).
    /// Used when pushing predicates below projections or to join sides.
    pub fn remap_columns(&self, map: &impl Fn(usize) -> usize) -> BExpr {
        let rm = |e: &BExpr| e.remap_columns(map).boxed();
        match self {
            BExpr::Col(i) => BExpr::Col(map(*i)),
            BExpr::OuterCol(i) => BExpr::OuterCol(*i),
            BExpr::Lit(v) => BExpr::Lit(v.clone()),
            BExpr::Cmp(op, a, b) => BExpr::Cmp(*op, rm(a), rm(b)),
            BExpr::And(a, b) => BExpr::And(rm(a), rm(b)),
            BExpr::Or(a, b) => BExpr::Or(rm(a), rm(b)),
            BExpr::Not(a) => BExpr::Not(rm(a)),
            BExpr::Arith(op, a, b) => BExpr::Arith(*op, rm(a), rm(b)),
            BExpr::Neg(a) => BExpr::Neg(rm(a)),
            BExpr::IsNull(a, n) => BExpr::IsNull(rm(a), *n),
            BExpr::Like(a, b, n) => BExpr::Like(rm(a), rm(b), *n),
            BExpr::InList(a, list, n) => BExpr::InList(
                rm(a),
                list.iter().map(|e| e.remap_columns(map)).collect(),
                *n,
            ),
            BExpr::Between(a, lo, hi, n) => BExpr::Between(rm(a), rm(lo), rm(hi), *n),
            BExpr::Case {
                operand,
                branches,
                else_branch,
            } => BExpr::Case {
                operand: operand.as_ref().map(|o| rm(o)),
                branches: branches
                    .iter()
                    .map(|(c, r)| (c.remap_columns(map), r.remap_columns(map)))
                    .collect(),
                else_branch: else_branch.as_ref().map(|e| rm(e)),
            },
            BExpr::Cast(a, t) => BExpr::Cast(rm(a), *t),
            BExpr::Func(f, args) => {
                BExpr::Func(*f, args.iter().map(|e| e.remap_columns(map)).collect())
            }
            BExpr::Concat(a, b) => BExpr::Concat(rm(a), rm(b)),
            BExpr::ScalarSubquery(sub, cache) => BExpr::ScalarSubquery(
                SubPlan {
                    plan: sub.plan.clone(),
                    outer_refs: sub.outer_refs.iter().map(|i| map(*i)).collect(),
                },
                cache.clone(),
            ),
            BExpr::InSubquery(a, sub, n, cache) => BExpr::InSubquery(
                rm(a),
                SubPlan {
                    plan: sub.plan.clone(),
                    outer_refs: sub.outer_refs.iter().map(|i| map(*i)).collect(),
                },
                *n,
                cache.clone(),
            ),
            BExpr::Exists(sub, n, cache) => BExpr::Exists(
                SubPlan {
                    plan: sub.plan.clone(),
                    outer_refs: sub.outer_refs.iter().map(|i| map(*i)).collect(),
                },
                *n,
                cache.clone(),
            ),
        }
    }

    /// True when the expression contains a subquery (which may be
    /// correlated against columns that a remap cannot chase into the plan).
    pub fn has_subquery(&self) -> bool {
        match self {
            BExpr::ScalarSubquery(..) | BExpr::InSubquery(..) | BExpr::Exists(..) => true,
            BExpr::Col(_) | BExpr::OuterCol(_) | BExpr::Lit(_) => false,
            BExpr::Cmp(_, a, b)
            | BExpr::And(a, b)
            | BExpr::Or(a, b)
            | BExpr::Arith(_, a, b)
            | BExpr::Concat(a, b)
            | BExpr::Like(a, b, _) => a.has_subquery() || b.has_subquery(),
            BExpr::Not(a) | BExpr::Neg(a) | BExpr::IsNull(a, _) | BExpr::Cast(a, _) => {
                a.has_subquery()
            }
            BExpr::InList(a, list, _) => a.has_subquery() || list.iter().any(|e| e.has_subquery()),
            BExpr::Between(a, lo, hi, _) => {
                a.has_subquery() || lo.has_subquery() || hi.has_subquery()
            }
            BExpr::Case {
                operand,
                branches,
                else_branch,
            } => {
                operand.as_ref().map(|o| o.has_subquery()).unwrap_or(false)
                    || branches
                        .iter()
                        .any(|(c, r)| c.has_subquery() || r.has_subquery())
                    || else_branch
                        .as_ref()
                        .map(|e| e.has_subquery())
                        .unwrap_or(false)
            }
            BExpr::Func(_, args) => args.iter().any(|e| e.has_subquery()),
        }
    }
}

/// Memo key for a subplan: the correlated outer values (empty when
/// uncorrelated, so the subquery executes exactly once).
fn memo_key(sub: &SubPlan, row: &[Value]) -> Vec<Value> {
    sub.outer_refs.iter().map(|&i| row[i].clone()).collect()
}

/// Arithmetic with numeric widening, date arithmetic and NULL propagation
/// (shared implementation in [`tpcds_types::scalar`]).
pub fn arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    tpcds_types::scalar::arith(op, l, r).map_err(EngineError::exec)
}

/// CAST implementation (shared implementation in [`tpcds_types::scalar`]).
pub fn cast(v: Value, ty: DataType) -> Result<Value> {
    tpcds_types::scalar::cast(v, ty).map_err(EngineError::exec)
}

// SQL LIKE with `%` and `_` wildcards. The implementation lives in
// `tpcds-types` so the columnar kernels share it; re-exported here for
// existing callers.
pub use tpcds_types::like_match;

fn scalar_func(f: ScalarFunc, args: &[Value]) -> Result<Value> {
    tpcds_types::scalar::scalar_func(f, args).map_err(EngineError::exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcds_types::Date;

    #[test]
    fn like_semantics() {
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "h_y%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "a%c"));
        assert!(like_match("a%c", "a%c"));
        assert!(!like_match("ab", "a"));
    }

    #[test]
    fn arith_widening() {
        let five = Value::Int(5);
        let half = Value::Decimal("0.5".parse().unwrap());
        assert_eq!(
            arith(ArithOp::Add, &five, &half).unwrap(),
            Value::Decimal("5.5".parse().unwrap())
        );
        // int/int is exact decimal
        assert_eq!(
            arith(ArithOp::Div, &Value::Int(1), &Value::Int(4)).unwrap(),
            Value::Decimal("0.25".parse().unwrap())
        );
        assert_eq!(
            arith(ArithOp::Div, &five, &Value::Int(0)).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn date_arith() {
        let d = Value::Date(Date::from_ymd(1999, 2, 21));
        let plus = arith(ArithOp::Add, &d, &Value::Int(30)).unwrap();
        assert_eq!(plus.to_flat(), "1999-03-23");
        let diff = arith(ArithOp::Sub, &plus, &d).unwrap();
        assert_eq!(diff, Value::Int(30));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(
            arith(ArithOp::Add, &Value::Null, &Value::Int(1)).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn casts() {
        assert_eq!(
            cast(Value::str("42"), DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            cast(Value::str("1999-01-02"), DataType::Date)
                .unwrap()
                .to_flat(),
            "1999-01-02"
        );
        assert_eq!(
            cast(Value::Decimal("3.99".parse().unwrap()), DataType::Int).unwrap(),
            Value::Int(3)
        );
        assert!(cast(Value::str("zip"), DataType::Int).is_err());
        assert_eq!(cast(Value::Null, DataType::Int).unwrap(), Value::Null);
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(
            scalar_func(
                ScalarFunc::Substr,
                &[Value::str("customer"), Value::Int(1), Value::Int(4)]
            )
            .unwrap(),
            Value::str("cust")
        );
        assert_eq!(
            scalar_func(ScalarFunc::Coalesce, &[Value::Null, Value::Int(2)]).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            scalar_func(ScalarFunc::Nullif, &[Value::Int(2), Value::Int(2)]).unwrap(),
            Value::Null
        );
        assert_eq!(
            scalar_func(
                ScalarFunc::Round,
                &[Value::Decimal("2.675".parse().unwrap()), Value::Int(2)]
            )
            .unwrap(),
            Value::Decimal("2.68".parse().unwrap())
        );
        assert_eq!(
            scalar_func(ScalarFunc::Length, &[Value::str("abc")]).unwrap(),
            Value::Int(3)
        );
    }
}
