//! Join reordering and predicate pushdown.
//!
//! The binder emits `Filter(cross-join chain)` for comma-joined FROM
//! clauses. This pass flattens that shape into a relation list plus a
//! conjunct list, pushes single-relation predicates into their scans,
//! extracts equi-join edges, and rebuilds a greedy left-deep hash-join
//! tree: the largest relation (the fact table, in star queries) is the
//! probe side and the smallest connected relation joins next — exactly the
//! "star transformation vs hash join" decision space the paper says
//! optimizers must navigate (§2.1).

use crate::catalog::Database;
use crate::expr::{BExpr, CmpOp};
use crate::plan::{JoinKind, Plan};
use std::collections::HashSet;
use std::sync::Arc;

/// Optimizes one FROM/WHERE block. Safe to call on any plan; only the
/// flattenable prefix is rewritten.
pub fn optimize(plan: Plan, db: &Database) -> Plan {
    let mut relations: Vec<Plan> = Vec::new();
    let mut conjuncts: Vec<BExpr> = Vec::new();
    flatten(plan, &mut relations, &mut conjuncts);

    if relations.len() == 1 && conjuncts.is_empty() {
        return relations.pop().expect("one relation");
    }

    // Column ranges of each relation within the flattened row.
    let widths: Vec<usize> = relations.iter().map(|r| r.width()).collect();
    let mut offsets = Vec::with_capacity(widths.len());
    let mut acc = 0;
    for w in &widths {
        offsets.push(acc);
        acc += w;
    }
    let total_width = acc;

    // Classify conjuncts.
    let mut local: Vec<Vec<BExpr>> = vec![Vec::new(); relations.len()];
    let mut edges: Vec<(usize, usize, BExpr, BExpr)> = Vec::new(); // (rel_a, rel_b, a_expr, b_expr)
    let mut residual: Vec<BExpr> = Vec::new();
    for c in conjuncts {
        let rels = referenced_relations(&c, &offsets, &widths);
        if c.has_subquery() {
            residual.push(c);
            continue;
        }
        match rels.len() {
            0 => residual.push(c), // constant predicate: evaluate at the top
            1 => {
                let r = *rels.iter().next().expect("one relation");
                local[r].push(c.remap_columns(&|i| i - offsets[r]));
            }
            2 => {
                if let BExpr::Cmp(CmpOp::Eq, a, b) = &c {
                    let ra = referenced_relations(a, &offsets, &widths);
                    let rb = referenced_relations(b, &offsets, &widths);
                    if ra.len() == 1 && rb.len() == 1 && ra != rb {
                        let ia = *ra.iter().next().expect("rel");
                        let ib = *rb.iter().next().expect("rel");
                        edges.push((
                            ia,
                            ib,
                            a.remap_columns(&|i| i - offsets[ia]),
                            b.remap_columns(&|i| i - offsets[ib]),
                        ));
                        continue;
                    }
                }
                residual.push(c);
            }
            _ => residual.push(c),
        }
    }

    // Push local predicates into the relations.
    let mut rels: Vec<Option<Plan>> = relations
        .into_iter()
        .zip(local.iter())
        .map(|(r, preds)| {
            let mut r = r;
            if !preds.is_empty() {
                let combined = and_all(preds.clone());
                r = push_into(r, combined);
            }
            Some(r)
        })
        .collect();

    // Cardinality estimates (after filtering). Selectivities come from
    // the statistics-backed estimator when the relation's base table has
    // collected stats (local predicates are in relation-local column
    // coordinates, matching the table's column order); tables without
    // stats degrade to the same shape-based defaults as before.
    let est: Vec<f64> = rels
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let r = r.as_ref().expect("present");
            let base = base_rows(r, db).max(1) as f64;
            let stats = crate::estimate::scan_table_stats(r, db);
            let mut sel = 1.0;
            for p in &local[i] {
                sel *= crate::estimate::predicate_selectivity(p, stats.as_deref());
            }
            base * sel
        })
        .collect();

    // Greedy left-deep join order starting from the largest relation.
    let n = rels.len();
    let start = (0..n)
        .max_by(|&a, &b| est[a].partial_cmp(&est[b]).expect("finite estimate"))
        .expect("non-empty");
    let mut joined: Vec<usize> = vec![start];
    let mut in_tree: HashSet<usize> = HashSet::from([start]);
    let mut tree = rels[start].take().expect("start relation");
    // new layout: map relation -> offset in the join output
    let mut new_offsets = vec![0usize; n];
    new_offsets[start] = 0;
    let mut tree_width = widths[start];

    while in_tree.len() < n {
        // Pick the connected relation with the smallest estimate; fall back
        // to the smallest disconnected one (cross join).
        let connected: Vec<usize> = (0..n)
            .filter(|i| !in_tree.contains(i))
            .filter(|i| {
                edges.iter().any(|(a, b, _, _)| {
                    (a == i && in_tree.contains(b)) || (b == i && in_tree.contains(a))
                })
            })
            .collect();
        let next = connected
            .iter()
            .copied()
            .min_by(|&a, &b| est[a].partial_cmp(&est[b]).expect("finite estimate"))
            .or_else(|| {
                (0..n)
                    .filter(|i| !in_tree.contains(i))
                    .min_by(|&a, &b| est[a].partial_cmp(&est[b]).expect("finite estimate"))
            })
            .expect("some relation left");
        let right = rels[next].take().expect("unjoined relation");

        // Gather all equi edges between the tree and `next`.
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        for (a, b, ea, eb) in &edges {
            if *a == next && in_tree.contains(b) {
                // tree side is b
                left_keys.push(eb.remap_columns(&|i| i + new_offsets[*b]));
                right_keys.push(ea.clone());
            } else if *b == next && in_tree.contains(a) {
                left_keys.push(ea.remap_columns(&|i| i + new_offsets[*a]));
                right_keys.push(eb.clone());
            }
        }
        tree = if left_keys.is_empty() {
            Plan::NestedLoopJoin {
                left: Arc::new(tree),
                right: Arc::new(right),
                kind: JoinKind::Inner,
                predicate: None,
            }
        } else {
            Plan::HashJoin {
                left: Arc::new(tree),
                right: Arc::new(right),
                kind: JoinKind::Inner,
                left_keys,
                right_keys,
                residual: None,
            }
        };
        new_offsets[next] = tree_width;
        tree_width += widths[next];
        in_tree.insert(next);
        joined.push(next);
    }

    // Restore the original column order.
    let mut order: Vec<usize> = Vec::with_capacity(total_width);
    for (rel, (off, w)) in offsets.iter().zip(&widths).enumerate() {
        let _ = off;
        for c in 0..*w {
            order.push(new_offsets[rel] + c);
        }
    }
    let identity = order.iter().enumerate().all(|(i, &c)| i == c);
    if !identity {
        tree = Plan::Project {
            input: Arc::new(tree),
            exprs: order.into_iter().map(BExpr::Col).collect(),
        };
    }

    // Residual predicates (original coordinates, incl. subquery filters).
    if !residual.is_empty() {
        tree = Plan::Filter {
            input: Arc::new(tree),
            predicate: and_all(residual),
        };
    }
    tree
}

/// Fuses `Limit`-over-`Sort` into a [`Plan::TopN`] node, recursing
/// through the whole tree (subquery bodies live inside expressions and
/// are left alone — they rarely carry ORDER BY + LIMIT). A `Prefix`
/// between the two (hidden sort columns) commutes with the fusion:
/// `Limit(Prefix(Sort))` becomes `Prefix(TopN)`, since `Prefix` only
/// drops trailing columns row-by-row.
///
/// Applied by the binder after planning (and skipped by
/// `without_optimizer`, so the ablation study measures the unfused tail).
pub fn fuse_topn(plan: Plan) -> Plan {
    fn unwrap(p: Arc<Plan>) -> Plan {
        Arc::try_unwrap(p).unwrap_or_else(|a| a.as_ref().clone())
    }
    fn recurse(p: Arc<Plan>) -> Arc<Plan> {
        Arc::new(fuse_topn(unwrap(p)))
    }
    match plan {
        Plan::Limit { input, n } => match unwrap(input) {
            Plan::Sort { input, keys } => Plan::TopN {
                input: recurse(input),
                keys,
                n,
            },
            Plan::Prefix { input, keep } => match unwrap(input) {
                Plan::Sort { input, keys } => Plan::Prefix {
                    input: Arc::new(Plan::TopN {
                        input: recurse(input),
                        keys,
                        n,
                    }),
                    keep,
                },
                other => Plan::Limit {
                    input: Arc::new(Plan::Prefix {
                        input: Arc::new(fuse_topn(other)),
                        keep,
                    }),
                    n,
                },
            },
            other => Plan::Limit {
                input: Arc::new(fuse_topn(other)),
                n,
            },
        },
        Plan::Scan { .. } => plan,
        Plan::Filter { input, predicate } => Plan::Filter {
            input: recurse(input),
            predicate,
        },
        Plan::Project { input, exprs } => Plan::Project {
            input: recurse(input),
            exprs,
        },
        Plan::HashJoin {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
        } => Plan::HashJoin {
            left: recurse(left),
            right: recurse(right),
            kind,
            left_keys,
            right_keys,
            residual,
        },
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            predicate,
        } => Plan::NestedLoopJoin {
            left: recurse(left),
            right: recurse(right),
            kind,
            predicate,
        },
        Plan::Aggregate {
            input,
            groups,
            sets,
            aggs,
        } => Plan::Aggregate {
            input: recurse(input),
            groups,
            sets,
            aggs,
        },
        Plan::Window { input, calls } => Plan::Window {
            input: recurse(input),
            calls,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: recurse(input),
            keys,
        },
        Plan::TopN { input, keys, n } => Plan::TopN {
            input: recurse(input),
            keys,
            n,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: recurse(input),
        },
        Plan::SetOp {
            left,
            right,
            op,
            all,
        } => Plan::SetOp {
            left: recurse(left),
            right: recurse(right),
            op,
            all,
        },
        Plan::CteRef { id, plan, width } => Plan::CteRef {
            id,
            plan: recurse(plan),
            width,
        },
        Plan::Prefix { input, keep } => Plan::Prefix {
            input: recurse(input),
            keep,
        },
    }
}

/// Flattens inner cross-join chains and filters.
fn flatten(plan: Plan, relations: &mut Vec<Plan>, conjuncts: &mut Vec<BExpr>) {
    match plan {
        Plan::NestedLoopJoin {
            left,
            right,
            kind: JoinKind::Inner,
            predicate: None,
        } => {
            let l = Arc::try_unwrap(left).unwrap_or_else(|a| a.as_ref().clone());
            let r = Arc::try_unwrap(right).unwrap_or_else(|a| a.as_ref().clone());
            flatten(l, relations, conjuncts);
            // Conjuncts discovered inside the right subtree would have
            // right-local coordinates; the binder only nests filters above
            // the join chain, so right subtrees contain no filters.
            let before = conjuncts.len();
            flatten(r, relations, conjuncts);
            debug_assert_eq!(before, conjuncts.len(), "filter below right join input");
        }
        Plan::Filter { input, predicate } => {
            let i = Arc::try_unwrap(input).unwrap_or_else(|a| a.as_ref().clone());
            // Only filters directly over the join chain flatten; collect
            // this predicate in post-flatten (full-row) coordinates.
            flatten(i, relations, conjuncts);
            split_conjuncts(predicate, conjuncts);
        }
        other => relations.push(other),
    }
}

/// Splits nested ANDs.
pub fn split_conjuncts(e: BExpr, out: &mut Vec<BExpr>) {
    match e {
        BExpr::And(a, b) => {
            split_conjuncts(*a, out);
            split_conjuncts(*b, out);
        }
        other => out.push(other),
    }
}

/// ANDs a non-empty list.
fn and_all(mut preds: Vec<BExpr>) -> BExpr {
    let mut acc = preds.pop().expect("non-empty");
    while let Some(p) = preds.pop() {
        acc = BExpr::And(p.boxed(), acc.boxed());
    }
    acc
}

/// Which relations a predicate references (by flattened column ranges).
fn referenced_relations(e: &BExpr, offsets: &[usize], widths: &[usize]) -> HashSet<usize> {
    let mut rels = HashSet::new();
    e.visit_columns(&mut |c| {
        for (i, (off, w)) in offsets.iter().zip(widths).enumerate() {
            if c >= *off && c < off + w {
                rels.insert(i);
                break;
            }
        }
    });
    rels
}

/// Pushes a predicate into a scan filter when possible, else wraps.
fn push_into(plan: Plan, pred: BExpr) -> Plan {
    match plan {
        Plan::Scan {
            table,
            width,
            filter,
        } => {
            let combined = match filter {
                None => pred,
                Some(f) => BExpr::And(f.boxed(), pred.boxed()),
            };
            Plan::Scan {
                table,
                width,
                filter: Some(combined),
            }
        }
        other => Plan::Filter {
            input: Arc::new(other),
            predicate: pred,
        },
    }
}

/// Rows of the underlying base table (pre-filter).
fn base_rows(plan: &Plan, db: &Database) -> usize {
    match plan {
        Plan::Scan { table, .. } => db.row_count(table),
        Plan::Filter { input, .. } => base_rows(input, db),
        Plan::CteRef { .. } => 1_000, // CTE results: assume modest
        _ => 10_000,
    }
}
