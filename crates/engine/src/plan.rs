//! The bound logical/physical plan. With full materialization between
//! operators, logical and physical plans coincide.

use crate::expr::BExpr;
use std::sync::Arc;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `count(expr)` — non-null count.
    Count,
    /// `count(*)`.
    CountStar,
    /// `sum(expr)`.
    Sum,
    /// `min(expr)`.
    Min,
    /// `max(expr)`.
    Max,
    /// `avg(expr)`.
    Avg,
    /// `stddev_samp(expr)`.
    StddevSamp,
    /// `grouping(group_expr_index)` — 1 when the group column is rolled up
    /// in the current grouping set, else 0.
    Grouping(usize),
}

/// One aggregate call.
#[derive(Debug, Clone)]
pub struct AggCall {
    /// Function.
    pub func: AggFunc,
    /// Argument (None for `count(*)` / `grouping`).
    pub arg: Option<BExpr>,
    /// DISTINCT aggregate.
    pub distinct: bool,
}

/// Window functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WinFunc {
    /// Running / partition-wide sum.
    Sum,
    /// Running / partition-wide average.
    Avg,
    /// Running / partition-wide count.
    Count,
    /// Running / partition-wide min.
    Min,
    /// Running / partition-wide max.
    Max,
    /// RANK().
    Rank,
    /// DENSE_RANK().
    DenseRank,
    /// ROW_NUMBER().
    RowNumber,
}

/// One window-function call; the executor appends its result column.
#[derive(Debug, Clone)]
pub struct WindowCall {
    /// Function.
    pub func: WinFunc,
    /// Argument (None for rank-family functions).
    pub arg: Option<BExpr>,
    /// PARTITION BY keys.
    pub partition: Vec<BExpr>,
    /// ORDER BY keys with descending flags. When non-empty, aggregate
    /// window functions use the default frame (unbounded preceding through
    /// current peer group); when empty, the whole partition.
    pub order: Vec<(BExpr, bool)>,
}

/// Set operation kinds (bound form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// UNION.
    Union,
    /// INTERSECT.
    Intersect,
    /// EXCEPT.
    Except,
}

/// Join kinds (bound form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left outer join.
    Left,
}

/// The plan tree.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Base-table scan with an optional pushed-down filter.
    Scan {
        /// Table name in the catalog.
        table: String,
        /// Number of columns (scan output width).
        width: usize,
        /// Filter applied during the scan.
        filter: Option<BExpr>,
    },
    /// Row filter.
    Filter {
        /// Input.
        input: Arc<Plan>,
        /// Predicate.
        predicate: BExpr,
    },
    /// Projection: computes `exprs` over each input row.
    Project {
        /// Input.
        input: Arc<Plan>,
        /// Output expressions.
        exprs: Vec<BExpr>,
    },
    /// Hash equi-join. Output rows are `left ++ right`.
    HashJoin {
        /// Left (probe) input.
        left: Arc<Plan>,
        /// Right (build) input.
        right: Arc<Plan>,
        /// Join kind.
        kind: JoinKind,
        /// Equi-key expressions over the left input.
        left_keys: Vec<BExpr>,
        /// Equi-key expressions over the right input.
        right_keys: Vec<BExpr>,
        /// Residual predicate over the combined row.
        residual: Option<BExpr>,
    },
    /// Nested-loop join for non-equi conditions (and cross joins).
    NestedLoopJoin {
        /// Left input.
        left: Arc<Plan>,
        /// Right input.
        right: Arc<Plan>,
        /// Join kind.
        kind: JoinKind,
        /// Join predicate over the combined row (None = cross join).
        predicate: Option<BExpr>,
    },
    /// Hash aggregation with grouping sets (plain GROUP BY is one set).
    Aggregate {
        /// Input.
        input: Arc<Plan>,
        /// Group-key expressions.
        groups: Vec<BExpr>,
        /// Grouping sets as masks over `groups` (true = grouped). A plain
        /// GROUP BY is a single all-true mask; ROLLUP(a,b) is
        /// `[[t,t],[t,f],[f,f]]`.
        sets: Vec<Vec<bool>>,
        /// Aggregate calls; output row = group values ++ aggregate values.
        aggs: Vec<AggCall>,
    },
    /// Window computation: appends one column per call.
    Window {
        /// Input.
        input: Arc<Plan>,
        /// The calls.
        calls: Vec<WindowCall>,
    },
    /// Sort.
    Sort {
        /// Input.
        input: Arc<Plan>,
        /// (key, descending) pairs. NULLs sort first ascending, last
        /// descending.
        keys: Vec<(BExpr, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input.
        input: Arc<Plan>,
        /// Maximum rows.
        n: u64,
    },
    /// Duplicate elimination over whole rows.
    Distinct {
        /// Input.
        input: Arc<Plan>,
    },
    /// Set operation.
    SetOp {
        /// Left input.
        left: Arc<Plan>,
        /// Right input.
        right: Arc<Plan>,
        /// Kind.
        op: SetOpKind,
        /// Keep duplicates (UNION ALL; INTERSECT/EXCEPT ALL unsupported).
        all: bool,
    },
    /// Reference to a shared CTE plan, executed once per statement and
    /// cached in the execution context.
    CteRef {
        /// Cache slot.
        id: usize,
        /// The CTE's plan.
        plan: Arc<Plan>,
        /// Output width.
        width: usize,
    },
    /// Keep only the first `keep` columns of each row (drops hidden sort
    /// columns after an ORDER BY over non-projected expressions).
    Prefix {
        /// Input.
        input: Arc<Plan>,
        /// Visible column count.
        keep: usize,
    },
}

impl Plan {
    /// Number of columns this plan produces. `db_width` resolves scan
    /// widths eagerly, so this is exact.
    pub fn width(&self) -> usize {
        match self {
            Plan::Scan { width, .. } => *width,
            Plan::Filter { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Distinct { input } => input.width(),
            Plan::Project { exprs, .. } => exprs.len(),
            Plan::HashJoin { left, right, .. } | Plan::NestedLoopJoin { left, right, .. } => {
                left.width() + right.width()
            }
            Plan::Aggregate { groups, aggs, .. } => groups.len() + aggs.len(),
            Plan::Window { input, calls } => input.width() + calls.len(),
            Plan::SetOp { left, .. } => left.width(),
            Plan::CteRef { width, .. } => *width,
            Plan::Prefix { keep, .. } => *keep,
        }
    }

    /// Wraps in a filter unless the predicate is trivially absent.
    pub fn filtered(self, predicate: Option<BExpr>) -> Plan {
        match predicate {
            None => self,
            Some(p) => Plan::Filter { input: Arc::new(self), predicate: p },
        }
    }

    /// Pretty-prints the plan tree (EXPLAIN output).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan { table, filter, .. } => {
                let f = if filter.is_some() { " [filtered]" } else { "" };
                writeln!(out, "{pad}Scan {table}{f}").unwrap();
            }
            Plan::Filter { input, .. } => {
                writeln!(out, "{pad}Filter").unwrap();
                input.explain_into(out, depth + 1);
            }
            Plan::Project { input, exprs } => {
                writeln!(out, "{pad}Project [{} cols]", exprs.len()).unwrap();
                input.explain_into(out, depth + 1);
            }
            Plan::HashJoin { left, right, kind, left_keys, .. } => {
                writeln!(out, "{pad}HashJoin {kind:?} on {} key(s)", left_keys.len()).unwrap();
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::NestedLoopJoin { left, right, kind, predicate } => {
                let p = if predicate.is_some() { "" } else { " (cross)" };
                writeln!(out, "{pad}NestedLoopJoin {kind:?}{p}").unwrap();
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::Aggregate { input, groups, sets, aggs } => {
                writeln!(
                    out,
                    "{pad}Aggregate [{} group(s), {} set(s), {} agg(s)]",
                    groups.len(),
                    sets.len(),
                    aggs.len()
                )
                .unwrap();
                input.explain_into(out, depth + 1);
            }
            Plan::Window { input, calls } => {
                writeln!(out, "{pad}Window [{} call(s)]", calls.len()).unwrap();
                input.explain_into(out, depth + 1);
            }
            Plan::Sort { input, keys } => {
                writeln!(out, "{pad}Sort [{} key(s)]", keys.len()).unwrap();
                input.explain_into(out, depth + 1);
            }
            Plan::Limit { input, n } => {
                writeln!(out, "{pad}Limit {n}").unwrap();
                input.explain_into(out, depth + 1);
            }
            Plan::Distinct { input } => {
                writeln!(out, "{pad}Distinct").unwrap();
                input.explain_into(out, depth + 1);
            }
            Plan::SetOp { left, right, op, all } => {
                writeln!(out, "{pad}SetOp {op:?} all={all}").unwrap();
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::CteRef { id, .. } => {
                writeln!(out, "{pad}CteRef #{id}").unwrap();
            }
            Plan::Prefix { input, keep } => {
                writeln!(out, "{pad}Prefix keep={keep}").unwrap();
                input.explain_into(out, depth + 1);
            }
        }
    }
}
