//! Row-path vs expression-kernel conformance: the interpreted row path is
//! the correctness oracle, and every compiled kernel must reproduce its
//! results — and its *errors* — bit for bit, at every worker count.
//!
//! The cases here pin the arithmetic edge semantics the kernels share with
//! `tpcds_types::scalar`: checked i64 overflow (same message, first-row-wins
//! precedence), Decimal rescale through mixed-scale arithmetic, division and
//! modulo by zero yielding NULL (never an error), and NULL propagation
//! through CASE / COALESCE / NULLIF.

use tpcds_engine::{ColumnMeta, ColumnarMode, Database, ExecOptions};
use tpcds_types::{DataType, Decimal, Row, Value};

const OFF: ExecOptions = ExecOptions {
    columnar: ColumnarMode::Off,
    threads: None,
};

fn force(threads: usize) -> ExecOptions {
    ExecOptions {
        columnar: ColumnarMode::Force,
        threads: Some(threads),
    }
}

/// 300 well-behaved rows; `edge_db` swaps in poisoned values near the i64
/// boundaries when a test needs overflow to actually fire.
fn db_with(big: impl Fn(i64) -> Value) -> Database {
    let db = Database::new();
    let meta = vec![
        ColumnMeta {
            name: "id".into(),
            dtype: DataType::Int,
        },
        ColumnMeta {
            name: "n".into(),
            dtype: DataType::Int,
        },
        ColumnMeta {
            name: "big".into(),
            dtype: DataType::Int,
        },
        ColumnMeta {
            name: "amt".into(),
            dtype: DataType::Decimal,
        },
    ];
    let rows: Vec<Row> = (0..300i64)
        .map(|i| {
            vec![
                Value::Int(i),
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % 5 - 2) // includes zeros for div-by-zero
                },
                big(i),
                Value::Decimal(Decimal::from_cents(i * 17 - 400)),
            ]
        })
        .collect();
    db.create_table_with_rows("t", meta, rows).unwrap();
    db.build_columnar_shadows();
    db
}

fn plain_db() -> Database {
    db_with(|i| Value::Int(i * 1000))
}

/// Rows 100 and 200 carry i64::MAX / i64::MIN: any +/-/* over them traps.
fn edge_db() -> Database {
    db_with(|i| match i {
        100 => Value::Int(i64::MAX),
        200 => Value::Int(i64::MIN),
        _ => Value::Int(i),
    })
}

/// Oracle run (row path, single thread) vs kernels at 1/2/8 workers: all
/// four runs must agree byte-for-byte.
fn assert_parity(db: &Database, sql: &str) {
    let oracle = tpcds_engine::query_with(db, sql, OFF).unwrap();
    for threads in [1, 2, 8] {
        let k = tpcds_engine::query_with(db, sql, force(threads)).unwrap();
        assert_eq!(
            oracle.rows, k.rows,
            "kernel diverges from row path for: {sql} (threads={threads})"
        );
    }
}

/// Both paths must fail, with the *same* message, at every worker count —
/// the deferred-error cell keeps the lowest row key so parallel kernels
/// report the same first error the serial row loop hits.
fn assert_error_parity(db: &Database, sql: &str) {
    let oracle = tpcds_engine::query_with(db, sql, OFF)
        .unwrap_err()
        .to_string();
    for threads in [1, 2, 8] {
        let k = tpcds_engine::query_with(db, sql, force(threads))
            .unwrap_err()
            .to_string();
        assert_eq!(
            oracle, k,
            "error message diverges for: {sql} (threads={threads})"
        );
    }
}

#[test]
fn integer_overflow_messages_match_the_row_path() {
    let db = edge_db();
    for sql in [
        "select big + 1 from t",
        "select big - 1 from t where id >= 150", // only the MIN row traps
        "select big * 3 from t",
        "select id from t where big + 1 > 0",
        "select id from t order by big * 2",
    ] {
        assert_error_parity(&db, sql);
    }
    // The overflow messages themselves are pinned to the shared scalar
    // vocabulary, not some kernel-specific wording.
    let e = tpcds_engine::query_with(&db, "select big + 1 from t", force(8)).unwrap_err();
    assert!(
        e.to_string().contains("integer overflow in +"),
        "unexpected message: {e}"
    );
}

#[test]
fn division_and_modulo_by_zero_yield_null_not_errors() {
    let db = plain_db();
    // n cycles through -2..=2, so zero divisors occur mid-segment.
    for sql in [
        "select id, id / n from t",
        "select id, id % n from t",
        "select id, amt / n from t",
        "select id from t where id / n > 10",
        "select id from t where id % n = 0",
    ] {
        assert_parity(&db, sql);
    }
    // And the NULL actually lands where the divisor is zero.
    let r = tpcds_engine::query_with(&db, "select id / n from t where n = 0", force(8)).unwrap();
    assert!(r.rows.iter().all(|row| row[0] == Value::Null));
}

#[test]
fn decimal_rescale_is_identical_across_paths() {
    let db = plain_db();
    for sql in [
        "select amt * 3, amt + 0.005, amt - 1.25 from t",
        "select amt * 1.5 from t where amt * 1.5 > 2.00",
        "select id / 4, amt / 7 from t", // Int / Int widens to Decimal too
        "select id from t order by amt * -1.01, id",
    ] {
        assert_parity(&db, sql);
    }
}

#[test]
fn null_propagation_through_case_coalesce_nullif() {
    let db = plain_db();
    for sql in [
        "select case when n > 0 then id else -id end from t",
        "select case when n + 1 > 0 then 'pos' end from t", // NULL arm via missing ELSE
        "select coalesce(n, id, 0) from t",
        "select nullif(n, 0), nullif(id, 5) from t",
        "select case when n is null then coalesce(n, -1) else nullif(n, 2) end from t",
        "select id from t where case when n = 0 then null else n end > 0",
    ] {
        assert_parity(&db, sql);
    }
}

#[test]
fn mixed_expression_shapes_agree_everywhere() {
    let db = plain_db();
    for sql in [
        "select id + n * 2 - 1 from t",
        "select -n, abs(n), abs(amt) from t",
        "select id from t where id + 1 between 50 and 60",
        "select id, n from t where n * n >= 4 order by id desc limit 25",
        "select id from t where coalesce(n, 0) * id < 100 and id > 10",
    ] {
        assert_parity(&db, sql);
    }
}
