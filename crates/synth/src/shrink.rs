//! Greedy spec-level shrinking of a failing query.
//!
//! Given a [`QuerySpec`] whose differential check fails, repeatedly try
//! structurally smaller variants — biggest cuts first — and keep any
//! variant that *still fails*, until a fixpoint. Because shrinking edits
//! the spec (not the SQL text), dropping a join also drops every
//! predicate, group key and projection item that referenced the joined
//! table, so each candidate is well-formed by construction.
//!
//! A candidate whose row-path oracle errors counts as *not failing*
//! (that variant left the supported dialect) and is discarded.

use std::sync::Arc;

use tpcds_engine::{Database, DbSnapshot};

use crate::diff::run_differential;
use crate::spec::QuerySpec;

/// Hard cap on differential runs during one shrink, so a pathological
/// failure cannot stall the soak.
const MAX_ATTEMPTS: usize = 400;

fn size(spec: &QuerySpec) -> usize {
    let mut n = spec.joins.len() * 4
        + spec.predicates.len()
        + spec.projection.len()
        + spec.group_by.len()
        + spec.aggs.len()
        + spec.order_by.len()
        + spec.having.iter().count()
        + spec.window.iter().count()
        + spec.limit.iter().count()
        + usize::from(spec.distinct);
    if let Some((_, arm)) = &spec.set_op {
        n += 8 + size(arm);
    }
    n
}

/// Drops join `i` together with every item that referenced its table.
/// Returns `None` when the drop would orphan a later edge (its FK side
/// lives on the dropped table) or empty the select list.
fn drop_join(spec: &QuerySpec, i: usize) -> Option<QuerySpec> {
    let victim = spec.joins[i].table.clone();
    if spec
        .joins
        .iter()
        .enumerate()
        .any(|(j, e)| j != i && e.fk_table == victim)
    {
        return None;
    }
    let mut s = spec.clone();
    s.joins.remove(i);
    s.predicates.retain(|p| p.table != victim);
    s.projection.retain(|p| p.table != victim);
    s.group_by.retain(|g| g.table != victim);
    s.aggs.retain(|a| a.table != victim);
    // Dropping the join that owned every group key degrades the query to
    // a global aggregate (HAVING has no home without GROUP BY).
    if s.group_by.is_empty() && s.projection.is_empty() && !s.aggs.is_empty() {
        s.projection = std::mem::take(&mut s.aggs);
        s.having = None;
    }
    if s.select_items().is_empty() {
        return None;
    }
    Some(s)
}

/// All single-step shrink candidates of `spec`, biggest cuts first.
fn candidates(spec: &QuerySpec) -> Vec<QuerySpec> {
    let mut out = Vec::new();

    // A set-op arm alone is half the query.
    if let Some((_, arm)) = &spec.set_op {
        let mut left = spec.clone();
        left.set_op = None;
        out.push(left);
        let mut right = (**arm).clone();
        right.class = spec.class;
        right.set_op = None;
        out.push(right);
    }

    for i in 0..spec.joins.len() {
        if let Some(s) = drop_join(spec, i) {
            out.push(s);
        }
    }

    // Convert LEFT joins to INNER (and vice versa is never smaller).
    for i in 0..spec.joins.len() {
        if spec.joins[i].left {
            let mut s = spec.clone();
            s.joins[i].left = false;
            out.push(s);
        }
    }

    if spec.window.is_some() && !spec.projection.is_empty() {
        let mut s = spec.clone();
        s.window = None;
        out.push(s);
    }
    if spec.distinct {
        let mut s = spec.clone();
        s.distinct = false;
        out.push(s);
    }
    if spec.having.is_some() {
        let mut s = spec.clone();
        s.having = None;
        out.push(s);
    }
    if spec.limit.is_some() {
        let mut s = spec.clone();
        s.limit = None;
        out.push(s);
    }
    if !spec.order_by.is_empty() {
        let mut s = spec.clone();
        s.order_by.clear();
        out.push(s);
    }

    for i in 0..spec.predicates.len() {
        let mut s = spec.clone();
        s.predicates.remove(i);
        out.push(s);
    }
    if spec.aggs.len() > 1 {
        for i in 0..spec.aggs.len() {
            let mut s = spec.clone();
            s.aggs.remove(i);
            out.push(s);
        }
    }
    if spec.group_by.len() > 1 {
        for i in 0..spec.group_by.len() {
            let mut s = spec.clone();
            s.group_by.remove(i);
            out.push(s);
        }
    }
    if spec.projection.len() > 1 {
        for i in 0..spec.projection.len() {
            let mut s = spec.clone();
            s.projection.remove(i);
            out.push(s);
        }
    }

    out
}

/// Shrinks a failing spec to a locally minimal reproducer using the
/// generic `still_fails` predicate. Exposed for unit-testing the search
/// itself without a database.
pub fn shrink_with(spec: &QuerySpec, mut still_fails: impl FnMut(&QuerySpec) -> bool) -> QuerySpec {
    let mut best = spec.clone();
    let mut attempts = 0usize;
    'outer: loop {
        for cand in candidates(&best) {
            if attempts >= MAX_ATTEMPTS {
                break 'outer;
            }
            attempts += 1;
            if size(&cand) < size(&best) && still_fails(&cand) {
                best = cand;
                continue 'outer;
            }
        }
        break;
    }
    best
}

/// Shrinks a spec whose differential check fails against `snap` to a
/// locally minimal spec that still fails. If the input does not actually
/// fail, it is returned unchanged.
pub fn shrink(db: &Database, snap: &Arc<DbSnapshot>, spec: &QuerySpec) -> QuerySpec {
    shrink_with(spec, |cand| {
        matches!(
            run_differential(db, snap, &cand.sql()),
            Err(ref e) if e.is_mismatch()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Item, JoinEdge, OnMode, ShapeClass};

    fn wide_spec() -> QuerySpec {
        let mut s = QuerySpec::new(ShapeClass::JoinAgg, "store_sales");
        s.joins.push(JoinEdge {
            table: "date_dim".into(),
            fk_table: "store_sales".into(),
            fk_col: "ss_sold_date_sk".into(),
            pk_col: "d_date_sk".into(),
            left: false,
            on: OnMode::Plain,
        });
        s.joins.push(JoinEdge {
            table: "item".into(),
            fk_table: "store_sales".into(),
            fk_col: "ss_item_sk".into(),
            pk_col: "i_item_sk".into(),
            left: true,
            on: OnMode::Plain,
        });
        s.predicates.push(Item::on("date_dim", "d_year = 2000"));
        s.predicates.push(Item::on("item", "i_color is not null"));
        s.group_by.push(Item::on("date_dim", "d_moy"));
        s.aggs.push(Item::free("count(*)"));
        s.aggs.push(Item::on("store_sales", "sum(ss_quantity)"));
        s.having = Some("count(*) > 0".into());
        s.order_by = vec![1];
        s.limit = Some(10);
        s
    }

    #[test]
    fn shrinks_to_the_failing_kernel() {
        // Pretend the failure needs exactly the item join and nothing
        // else: the shrinker should strip everything orthogonal.
        let spec = wide_spec();
        let min = shrink_with(&spec, |s| s.joins.iter().any(|j| j.table == "item"));
        assert!(min.joins.iter().any(|j| j.table == "item"));
        assert!(min.predicates.is_empty());
        assert!(min.having.is_none());
        assert!(min.limit.is_none());
        assert!(min.order_by.is_empty());
        assert!(size(&min) < size(&spec));
    }

    #[test]
    fn dropping_a_join_drops_its_dependents() {
        let spec = wide_spec();
        // The item join owns one predicate; everything else survives.
        let dropped = drop_join(&spec, 1).expect("item is droppable");
        assert!(dropped.predicates.iter().all(|p| p.table != "item"));
        assert_eq!(dropped.group_by.len(), 1);
        assert!(!dropped.select_items().is_empty());
    }

    #[test]
    fn dropping_the_grouping_join_degrades_to_global_aggregate() {
        let spec = wide_spec();
        // date_dim owns the only group key; the drop must fall back to a
        // global aggregate rather than an empty select list.
        let dropped = drop_join(&spec, 0).expect("date_dim is droppable");
        assert!(dropped.group_by.is_empty());
        assert!(dropped.having.is_none());
        assert!(dropped
            .sql()
            .starts_with("select count(*), sum(ss_quantity)"));
    }

    #[test]
    fn never_orphans_a_chained_join() {
        // Re-hang the item edge off date_dim: date_dim then cannot be
        // dropped while the chained edge needs it.
        let mut spec = wide_spec();
        spec.joins[1].fk_table = "date_dim".into();
        assert!(drop_join(&spec, 0).is_none());
    }

    #[test]
    fn non_failing_spec_survives_unchanged() {
        let spec = wide_spec();
        let same = shrink_with(&spec, |_| false);
        assert_eq!(same.sql(), spec.sql());
    }
}
