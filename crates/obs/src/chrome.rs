//! Chrome Trace Event Format export: converts a recorded event stream
//! into the JSON array format Perfetto and `chrome://tracing` load, with
//! **one track per morsel worker** so scheduling skew is visible at a
//! glance.
//!
//! Mapping:
//!
//! * spans → complete events (`"ph":"X"`) with microsecond `ts`/`dur`;
//! * counters → counter events (`"ph":"C"`), one series per counter name;
//! * points → instant events (`"ph":"i"`).
//!
//! Track (`tid`) assignment: events carrying a `worker` field land on
//! track `worker + 1` (named `worker N`); events carrying a `session`
//! field (the server's per-connection spans) land on a high track
//! numbered off [`SESSION_TID_BASE`] (named `session N`); everything else
//! lands on track 0 (`main`). The `pid` is the emitting layer's index, so
//! Perfetto groups tracks under one process group per layer.

use crate::json::Json;
use crate::{Event, EventKind, FieldValue};
use std::collections::BTreeMap;

/// Session tracks start here, far above any plausible worker count, so
/// server sessions and morsel workers can never collide on a `tid`.
pub const SESSION_TID_BASE: i64 = 100_000;

fn field_json(v: &FieldValue) -> Json {
    match v {
        FieldValue::Int(i) => Json::Int(*i),
        FieldValue::Float(f) => Json::Float(*f),
        FieldValue::Str(s) => Json::Str(s.clone()),
    }
}

fn args_json(e: &Event) -> Json {
    Json::Obj(
        e.fields
            .iter()
            .map(|(k, v)| (k.clone(), field_json(v)))
            .collect(),
    )
}

/// Converts parsed trace events into one Chrome Trace Event Format
/// document (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
pub fn to_chrome_trace(events: &[Event]) -> Json {
    // (layer -> pid), (pid, tid) -> track name; pid 0 is reserved so
    // layer indexes start at 1 (Perfetto hides pid 0 oddly).
    let mut layer_pid: BTreeMap<String, i64> = BTreeMap::new();
    let mut tracks: BTreeMap<(i64, i64), String> = BTreeMap::new();
    let mut out: Vec<Json> = Vec::with_capacity(events.len() + 16);

    for e in events {
        let next = layer_pid.len() as i64 + 1;
        let pid = *layer_pid.entry(e.layer.clone()).or_insert(next);
        let tid = match (e.int_field("worker"), e.int_field("session")) {
            (Some(w), _) => w + 1,
            (None, Some(s)) => SESSION_TID_BASE + s,
            (None, None) => 0,
        };
        tracks.entry((pid, tid)).or_insert_with(|| {
            if tid == 0 {
                "main".to_string()
            } else if tid >= SESSION_TID_BASE {
                format!("session {}", tid - SESSION_TID_BASE)
            } else {
                format!("worker {}", tid - 1)
            }
        });
        let name = format!("{}/{}", e.layer, e.name);
        let mut obj = vec![
            ("name".to_string(), Json::Str(name)),
            ("cat".to_string(), Json::Str(e.layer.clone())),
            ("pid".to_string(), Json::Int(pid)),
            ("tid".to_string(), Json::Int(tid)),
            ("ts".to_string(), Json::Int(e.ts_us as i64)),
        ];
        match e.kind {
            EventKind::Span => {
                obj.push(("ph".to_string(), Json::Str("X".into())));
                obj.push(("dur".to_string(), Json::Int(e.dur_us.unwrap_or(0) as i64)));
                obj.push(("args".to_string(), args_json(e)));
            }
            EventKind::Counter => {
                obj.push(("ph".to_string(), Json::Str("C".into())));
                obj.push((
                    "args".to_string(),
                    Json::Obj(vec![(
                        "value".to_string(),
                        Json::Float(e.value.unwrap_or(0.0)),
                    )]),
                ));
            }
            EventKind::Point => {
                obj.push(("ph".to_string(), Json::Str("i".into())));
                obj.push(("s".to_string(), Json::Str("t".into())));
                obj.push(("args".to_string(), args_json(e)));
            }
        }
        out.push(Json::Obj(obj));
    }

    // Metadata: name each process (layer) and thread (track).
    for (layer, pid) in &layer_pid {
        out.push(Json::Obj(vec![
            ("name".to_string(), Json::Str("process_name".into())),
            ("ph".to_string(), Json::Str("M".into())),
            ("pid".to_string(), Json::Int(*pid)),
            ("tid".to_string(), Json::Int(0)),
            (
                "args".to_string(),
                Json::Obj(vec![("name".to_string(), Json::Str(layer.clone()))]),
            ),
        ]));
    }
    for ((pid, tid), name) in &tracks {
        out.push(Json::Obj(vec![
            ("name".to_string(), Json::Str("thread_name".into())),
            ("ph".to_string(), Json::Str("M".into())),
            ("pid".to_string(), Json::Int(*pid)),
            ("tid".to_string(), Json::Int(*tid)),
            (
                "args".to_string(),
                Json::Obj(vec![("name".to_string(), Json::Str(name.clone()))]),
            ),
        ]));
    }

    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(out)),
        ("displayTimeUnit".to_string(), Json::Str("ms".into())),
    ])
}

/// Parses a JSONL trace and renders the Chrome trace document text.
pub fn export(trace_text: &str) -> Result<String, String> {
    let events = crate::report::parse_trace(trace_text)?;
    Ok(to_chrome_trace(&events).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, layer: &str, name: &str, worker: Option<i64>) -> Event {
        Event {
            ts_us: 10,
            kind,
            layer: layer.into(),
            name: name.into(),
            dur_us: matches!(kind, EventKind::Span).then_some(50),
            value: matches!(kind, EventKind::Counter).then_some(3.0),
            fields: worker
                .map(|w| vec![("worker".to_string(), FieldValue::Int(w))])
                .unwrap_or_default(),
        }
    }

    #[test]
    fn workers_get_their_own_tracks() {
        let events = vec![
            ev(EventKind::Span, "storage", "scan_worker", Some(0)),
            ev(EventKind::Span, "storage", "scan_worker", Some(3)),
            ev(EventKind::Span, "runner", "phase", None),
            ev(EventKind::Counter, "storage", "scan.rows", None),
            ev(EventKind::Point, "runner", "phase.start", None),
        ];
        let doc = to_chrome_trace(&events);
        let items = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 5 events + 2 process_name + 4 thread_name (storage: main/0/3, runner: main).
        let spans: Vec<_> = items
            .iter()
            .filter(|j| j.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 3);
        let tids: Vec<i64> = spans
            .iter()
            .filter_map(|j| j.get("tid").and_then(Json::as_i64))
            .collect();
        assert!(tids.contains(&1) && tids.contains(&4) && tids.contains(&0));
        let thread_names: Vec<&str> = items
            .iter()
            .filter(|j| j.get("name").and_then(Json::as_str) == Some("thread_name"))
            .filter_map(|j| {
                j.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert!(thread_names.contains(&"worker 0"), "{thread_names:?}");
        assert!(thread_names.contains(&"worker 3"), "{thread_names:?}");
        assert!(thread_names.contains(&"main"));
        // The document is valid JSON end-to-end.
        let text = doc.to_string();
        Json::parse(&text).unwrap();
    }

    #[test]
    fn sessions_get_their_own_tracks() {
        let mut span = ev(EventKind::Span, "server", "session.query", None);
        span.fields
            .push(("session".to_string(), FieldValue::Int(7)));
        let doc = to_chrome_trace(&[span]);
        let items = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let tid = items
            .iter()
            .find(|j| j.get("ph").and_then(Json::as_str) == Some("X"))
            .and_then(|j| j.get("tid"))
            .and_then(Json::as_i64)
            .unwrap();
        assert_eq!(tid, SESSION_TID_BASE + 7);
        let thread_names: Vec<&str> = items
            .iter()
            .filter(|j| j.get("name").and_then(Json::as_str) == Some("thread_name"))
            .filter_map(|j| {
                j.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert!(thread_names.contains(&"session 7"), "{thread_names:?}");
    }

    #[test]
    fn export_round_trips_a_jsonl_trace() {
        let e = ev(EventKind::Span, "storage", "scan_worker", Some(1));
        let text = format!("{}\n", e.to_json());
        let chrome = export(&text).unwrap();
        let doc = Json::parse(&chrome).unwrap();
        assert!(doc.get("traceEvents").is_some());
        assert!(export("{broken").is_err());
    }
}
