//! Virtual `sys.*` tables: live engine/server state exposed through the
//! normal query machinery.
//!
//! Each table has a fixed schema known to the binder ([`columns`]) and a
//! row producer ([`rows`]) that materializes ordinary `Vec<Row>` at scan
//! time — so filters, sorts, aggregates, EXPLAIN, the wire protocol and
//! every other layer work on introspection data for free. The tables
//! reflect **live** state at the moment of the scan, not the pinned
//! snapshot the rest of the query reads (a `sys.query_log` scan inside a
//! pinned query still sees the newest records; that is the point).
//!
//! Engine-owned tables (`sys.query_log`, `sys.snapshots`) read the
//! [`Database`] directly; registry tables (`sys.counters`, `sys.gauges`,
//! `sys.histograms`) snapshot the process-wide metrics registry; and
//! server-owned tables (`sys.sessions`, `sys.queries`) are filled by a
//! provider closure the server registers on its `Database`
//! ([`Database::register_sys_provider`]) — in-process, with no server
//! running, they are simply empty.
//!
//! See `docs/OBSERVABILITY.md` for the full column reference with units.

use crate::catalog::{ColumnMeta, Database};
use tpcds_types::{DataType, Row, Value};

/// Every virtual table, sorted.
pub const TABLES: &[&str] = &[
    "sys.counters",
    "sys.gauges",
    "sys.histograms",
    "sys.queries",
    "sys.query_log",
    "sys.sessions",
    "sys.snapshots",
];

fn col(name: &str, dtype: DataType) -> ColumnMeta {
    ColumnMeta {
        name: name.to_string(),
        dtype,
    }
}

/// The schema of a virtual table, or `None` when `name` is not one (the
/// binder then resolves it as an ordinary stored table).
pub fn columns(name: &str) -> Option<Vec<ColumnMeta>> {
    use DataType::{Int, Str};
    Some(match name {
        "sys.sessions" => vec![
            col("session", Int),
            col("peer", Str),
            col("state", Str),
            col("queries", Int),
            col("bytes_in", Int),
            col("bytes_out", Int),
        ],
        "sys.queries" => vec![
            col("session", Int),
            col("query_id", Str),
            col("sql", Str),
            col("elapsed_us", Int),
            col("snapshot_version", Int),
            col("mode", Str),
            col("state", Str),
        ],
        "sys.query_log" => vec![
            col("seq", Int),
            col("query_id", Str),
            col("session", Int),
            col("sql", Str),
            col("wall_us", Int),
            col("cpu_us", Int),
            col("rows", Int),
            col("mem_peak", Int),
            col("admission_wait_us", Int),
            col("best_route", Str),
            col("fallbacks", Str),
            col("snapshot_version", Int),
            col("error", Str),
        ],
        "sys.counters" => vec![col("name", Str), col("value", Int)],
        "sys.gauges" => vec![col("name", Str), col("value", Int)],
        "sys.histograms" => vec![
            col("name", Str),
            col("count", Int),
            col("sum", Int),
            col("p50", Int),
            col("p95", Int),
            col("p99", Int),
            col("max", Int),
        ],
        "sys.snapshots" => vec![
            col("version", Int),
            col("tables", Int),
            col("rows", Int),
            col("is_head", Int),
            col("retain", Int),
        ],
        _ => return None,
    })
}

/// True when `name` names a virtual table this module serves.
pub fn is_sys_table(name: &str) -> bool {
    columns(name).is_some()
}

fn int(v: u64) -> Value {
    Value::Int(v as i64)
}

/// Materializes the rows of a virtual table at this instant, or `None`
/// when `name` is not one. Row order is deterministic where the source
/// is (registry tables sort by name, `sys.query_log` is oldest-first,
/// `sys.snapshots` oldest-first); ORDER BY is for everything else.
pub fn rows(db: &Database, name: &str) -> Option<Vec<Row>> {
    let rows = match name {
        "sys.sessions" | "sys.queries" => db.sys_provider_rows(name).unwrap_or_default(),
        "sys.query_log" => db
            .query_log()
            .snapshot()
            .iter()
            .map(|r| {
                vec![
                    int(r.seq),
                    Value::str(&r.query_id),
                    int(r.session),
                    Value::str(&r.sql),
                    int(r.wall_us),
                    int(r.cpu_us),
                    int(r.rows),
                    int(r.mem_peak),
                    int(r.admission_wait_us),
                    Value::str(r.best_route),
                    Value::str(&r.fallbacks),
                    int(r.snapshot_version),
                    r.error.as_deref().map(Value::str).unwrap_or(Value::Null),
                ]
            })
            .collect(),
        "sys.counters" => tpcds_obs::metrics::counters_snapshot()
            .into_iter()
            .map(|(name, v)| vec![Value::str(&name), int(v)])
            .collect(),
        "sys.gauges" => tpcds_obs::metrics::gauges_snapshot()
            .into_iter()
            .map(|(name, v)| vec![Value::str(&name), Value::Int(v)])
            .collect(),
        "sys.histograms" => tpcds_obs::metrics::histograms_snapshot()
            .into_iter()
            .map(|(name, h)| {
                vec![
                    Value::str(&name),
                    int(h.count),
                    int(h.sum),
                    int(h.percentile(50.0)),
                    int(h.percentile(95.0)),
                    int(h.percentile(99.0)),
                    int(h.max()),
                ]
            })
            .collect(),
        "sys.snapshots" => {
            let (history, retain) = db.snapshot_history();
            history
                .into_iter()
                .map(|s| {
                    vec![
                        int(s.version),
                        int(s.tables as u64),
                        int(s.rows as u64),
                        Value::Int(s.is_head as i64),
                        int(retain as u64),
                    ]
                })
                .collect()
        }
        _ => return None,
    };
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{query, Database};

    #[test]
    fn every_sys_table_has_matching_schema_and_rows() {
        let db = Database::new();
        for name in TABLES {
            let cols = columns(name).expect("schema");
            let rows = rows(&db, name).expect("rows");
            for row in &rows {
                assert_eq!(row.len(), cols.len(), "{name} arity");
            }
        }
        assert!(columns("sys.nope").is_none());
        assert!(rows(&db, "store_sales").is_none());
    }

    #[test]
    fn query_log_is_queryable_with_order_and_limit() {
        let db = Database::new();
        db.create_table_with_rows(
            "t",
            vec![ColumnMeta {
                name: "a".into(),
                dtype: DataType::Int,
            }],
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        query(&db, "select a from t where a > 1").unwrap();
        query(&db, "select count(*) from t").unwrap();
        // Errors are logged too.
        assert!(query(&db, "select nope from t").is_err());

        let r = query(
            &db,
            "select sql, rows, error from sys.query_log order by seq",
        )
        .unwrap();
        assert!(r.rows.len() >= 3);
        let texts: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert!(texts.iter().any(|s| s.contains("a > 1")), "{texts:?}");
        let errored: Vec<&Row> = r.rows.iter().filter(|row| !row[2].is_null()).collect();
        assert_eq!(errored.len(), 1, "exactly the bad query carries an error");
        assert_eq!(errored[0][1], Value::Int(0), "error rows produce 0 rows");

        // The acceptance query shape: machinery (filter/sort/limit) works.
        let top = query(
            &db,
            "select query_id, wall_us from sys.query_log order by wall_us desc limit 5",
        )
        .unwrap();
        assert!(!top.rows.is_empty());
        let walls: Vec<i64> = top.rows.iter().map(|r| r[1].as_int().unwrap()).collect();
        assert!(walls.windows(2).all(|w| w[0] >= w[1]), "{walls:?}");
    }

    #[test]
    fn snapshots_table_tracks_versions_and_head() {
        let db = Database::new();
        db.create_table("t", vec![]).unwrap();
        db.create_table("u", vec![]).unwrap();
        let r = query(
            &db,
            "select version, is_head from sys.snapshots order by version",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 3, "v0 + two commits retained");
        assert_eq!(r.rows[2][0], Value::Int(2));
        assert_eq!(r.rows[2][1], Value::Int(1), "newest is head");
        assert_eq!(r.rows[0][1], Value::Int(0));
        let heads = query(&db, "select count(*) from sys.snapshots where is_head = 1").unwrap();
        assert_eq!(heads.rows[0][0], Value::Int(1));
    }

    #[test]
    fn provider_tables_are_empty_until_registered() {
        let db = Database::new();
        let r = query(&db, "select * from sys.sessions").unwrap();
        assert!(r.rows.is_empty());
        db.register_sys_provider("sys.sessions", || {
            vec![vec![
                Value::Int(1),
                Value::str("127.0.0.1:9"),
                Value::str("idle"),
                Value::Int(3),
                Value::Int(100),
                Value::Int(200),
            ]]
        });
        let r = query(
            &db,
            "select session, peer from sys.sessions where queries >= 3",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(1));
    }

    #[test]
    fn registry_tables_reflect_metrics_with_aliases() {
        let db = Database::new();
        // The registry is process-global and may be disabled; exercise the
        // plumbing through a direct producer call plus a SQL alias query.
        let _ = rows(&db, "sys.counters").unwrap();
        let r = query(
            &db,
            "select c.name, c.value from sys.counters c order by c.name limit 3",
        )
        .unwrap();
        for row in &r.rows {
            assert!(matches!(row[0], Value::Str(_)));
        }
        let h = query(&db, "select name, p99, max from sys.histograms").unwrap();
        assert_eq!(h.columns, vec!["name", "p99", "max"]);
    }
}
