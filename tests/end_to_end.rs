//! Integration: the full Figure 11 benchmark flow — load, query run,
//! maintenance, query run — across all crates, plus metric sanity.

use tpcds_repro::runner::{self, AuxLevel, BenchmarkConfig};
use tpcds_repro::TpcDs;

#[test]
fn benchmark_flow_produces_consistent_metrics() {
    let config = BenchmarkConfig {
        scale_factor: 0.01,
        seed: tpcds_repro::types::rng::DEFAULT_SEED,
        streams: Some(3),
        queries_per_stream: Some(8),
        aux: AuxLevel::Reporting,
        threads: None,
        via_server: false,
    };
    let result = runner::run_benchmark(config).expect("benchmark");
    assert_eq!(result.query_timings.len(), 2 * 3 * 8);
    // Every query produced a timing with non-zero elapsed.
    assert!(result
        .query_timings
        .iter()
        .all(|t| t.elapsed.as_nanos() > 0));
    let q = result.qphds();
    assert!(q.is_finite() && q > 0.0);
    // The database is usable after the benchmark (post-maintenance state).
    let r = tpcds_repro::engine::query(&result.db, "select count(*) from item").unwrap();
    assert!(r.rows[0][0].as_int().unwrap() > 0);
}

#[test]
fn queries_survive_data_maintenance() {
    // The second query run "reveals any query performance changes due to
    // maintenance" — functionally, queries must still answer correctly.
    let tpcds = TpcDs::builder().scale_factor(0.01).build().expect("load");
    let before = tpcds
        .query("select count(*) c from store_sales")
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    let report = tpcds.run_maintenance(0).expect("maintenance");
    let after = tpcds
        .query("select count(*) c from store_sales")
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    let inserted: usize = report
        .ops
        .iter()
        .filter(|o| o.name == "insert_store_channel")
        .map(|o| o.inserted)
        .sum();
    assert!(inserted > 0);
    assert_ne!(before, after, "maintenance must visibly change fact data");

    // Re-run a benchmark query; it must still execute.
    let r = tpcds
        .run_benchmark_query(52, 3)
        .expect("q52 after maintenance");
    let _ = r.rows.len();
}

#[test]
fn surrogate_keys_stay_unique_after_maintenance() {
    let tpcds = TpcDs::builder().scale_factor(0.01).build().expect("load");
    tpcds.run_maintenance(0).expect("maintenance");
    for table in ["item", "store", "call_center", "web_site"] {
        let sql = format!(
            "select cnt from (select {0}, count(*) cnt from {1} group by {0}) x where cnt > 1",
            tpcds.generator().schema().table(table).unwrap().primary_key[0],
            table
        );
        let r = tpcds.query(&sql).expect("pk check");
        assert!(r.rows.is_empty(), "{table} has duplicate surrogate keys");
    }
}

#[test]
fn min_streams_enforced_shape() {
    // Larger scale factors must never require fewer streams.
    let mut prev = 0;
    for sf in [
        0.01, 1.0, 100.0, 300.0, 1000.0, 3000.0, 10_000.0, 30_000.0, 100_000.0,
    ] {
        let s = tpcds_repro::min_streams(sf);
        assert!(s >= prev, "min streams decreased at SF {sf}");
        prev = s;
    }
}
