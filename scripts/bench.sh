#!/usr/bin/env sh
# Columnar storage benchmarks: builds the release harnesses and emits
#  - BENCH_2.json: scan/aggregate rows-per-second for the serial row path
#    vs the columnar path at 1 and N morsel workers, plus a 99-template
#    answer equivalence sweep;
#  - BENCH_3.json: partitioned hash-join build/probe throughput (pure join
#    and fused aggregate-over-join on store_sales ⋈ date_dim) for the
#    row path vs the columnar join at 1 and N workers.
# Exits non-zero on any answer mismatch or columnar-routing fallback.
#
# Knobs:
#   TPCDS_THREADS     morsel worker count (default: available_parallelism)
#   BENCH_SCALE       scale factor for BENCH_2 (default 0.02)
#   BENCH_JOIN_SCALE  scale factor for BENCH_3 (default 0.01)
#   BENCH_OUT         BENCH_2 output path (default BENCH_2.json)
#   BENCH_JOIN_OUT    BENCH_3 output path (default BENCH_3.json)
set -eux

export CARGO_NET_OFFLINE=true

cargo build --release -p tpcds-bench --bin storage_bench --bin join_bench
./target/release/storage_bench \
    --scale "${BENCH_SCALE:-0.02}" \
    --out "${BENCH_OUT:-BENCH_2.json}"
./target/release/join_bench \
    --scale "${BENCH_JOIN_SCALE:-0.01}" \
    --out "${BENCH_JOIN_OUT:-BENCH_3.json}"
