//! Integration: table statistics, cardinality estimates and routing
//! traces end to end — EXPLAIN carries `est_rows=`, EXPLAIN ANALYZE
//! carries `est=`/`qerr=`/`route=`, every executed operator has a routing
//! decision with a reason code on fallback, and data maintenance
//! refreshes the statistics (the differential gate CI runs).

use tpcds_repro::engine::RoutePath;
use tpcds_repro::TpcDs;

fn load(sf: f64) -> TpcDs {
    TpcDs::builder().scale_factor(sf).build().expect("load")
}

#[test]
fn plain_explain_renders_estimates() {
    let t = load(0.005);
    let text = t
        .explain(
            "select d_year, count(*) from store_sales, date_dim \
             where ss_sold_date_sk = d_date_sk and ss_quantity > 10 group by d_year",
        )
        .expect("explain");
    assert!(text.contains("est_rows="), "no estimates in:\n{text}");
    // Every operator line is annotated, not just the root.
    let annotated = text.lines().filter(|l| l.contains("est_rows=")).count();
    assert_eq!(
        annotated,
        text.lines().count(),
        "unannotated lines:\n{text}"
    );
}

#[test]
fn explain_analyze_renders_est_qerr_route() {
    let t = load(0.005);
    let analyzed = t
        .explain_analyze(
            "select d_year, count(*), sum(ss_ext_sales_price) from store_sales, date_dim \
             where ss_sold_date_sk = d_date_sk group by d_year order by d_year",
        )
        .expect("analyze");
    let text = &analyzed.plan_text;
    for marker in ["rows=", "est=", "qerr=", "route="] {
        assert!(
            marker_on_executed_lines(text, marker),
            "no {marker} in:\n{text}"
        );
    }
}

fn marker_on_executed_lines(text: &str, marker: &str) -> bool {
    text.lines()
        .filter(|l| !l.contains("never executed"))
        .all(|l| l.contains(marker))
        && text.lines().any(|l| !l.contains("never executed"))
}

#[test]
fn every_executed_node_has_a_route_and_fallbacks_carry_reasons() {
    let t = load(0.005);
    for sql in [
        "select ss_item_sk from store_sales where ss_quantity > 90",
        "select count(*) from store_sales",
        "select i_category, count(*) from item group by i_category \
         order by count(*) desc limit 5",
        "select c_first_name from customer where c_customer_sk = 17",
        "select d_year, count(*) from store_sales, date_dim \
         where ss_sold_date_sk = d_date_sk group by d_year",
    ] {
        let analyzed = t.explain_analyze(sql).expect(sql);
        let executed: Vec<_> = analyzed.nodes.iter().filter(|n| n.executed).collect();
        assert!(!executed.is_empty(), "{sql}: nothing executed");
        for n in executed {
            assert_ne!(n.route, RoutePath::Unset, "{sql}: {} has no route", n.op);
            if n.route != RoutePath::Columnar && n.route != RoutePath::Index {
                assert!(
                    n.fallback.is_some(),
                    "{sql}: {} took {:?} without a reason code",
                    n.op,
                    n.route
                );
            }
        }
    }
}

#[test]
fn maintenance_refreshes_statistics() {
    let t = load(0.01);
    let db = t.database();
    let before = db
        .table("store_sales")
        .expect("table")
        .stats()
        .expect("stats collected at load");
    assert_eq!(
        before.rows,
        db.row_count("store_sales") as u64,
        "load-time stats must describe the loaded population"
    );

    // The refresh run bulk-deletes a date range and inserts new facts, so
    // the population — and with it the estimates — must change. Table
    // handles are frozen snapshot versions, so re-fetch from the new head.
    t.run_maintenance(1).expect("maintenance");
    let after = db
        .table("store_sales")
        .expect("table")
        .stats()
        .expect("stats refreshed after DM");
    assert!(
        !std::sync::Arc::ptr_eq(&before, &after),
        "stats refresh after data maintenance was skipped"
    );
    assert_eq!(
        after.rows,
        db.row_count("store_sales") as u64,
        "post-DM stats must describe the new population"
    );
    assert_ne!(
        before.rows, after.rows,
        "DM changed the table but not the statistics"
    );

    // And the estimator sees the change: the same unfiltered scan now
    // carries a different est_rows annotation.
    let explain = |t: &TpcDs| {
        t.explain("select ss_item_sk from store_sales")
            .expect("explain")
    };
    let text = explain(&t);
    assert!(
        text.contains(&format!("est_rows={}", after.rows)),
        "estimates don't track the refreshed stats:\n{text}"
    );
}
