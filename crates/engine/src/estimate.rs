//! Cardinality estimation: annotates every plan node with an estimated
//! output row count (`est_rows`).
//!
//! Estimates come from per-column [`TableStats`] where available —
//! NDV-based equality selectivity, histogram interpolation for ranges,
//! null fractions for `IS NULL` — and fall back to the classic textbook
//! constants (the same ones the join-order heuristic always used) when a
//! column's statistics can't be resolved, e.g. above a join where output
//! positions no longer map to one base table.
//!
//! The estimates are rendered by EXPLAIN (`est_rows=`) and EXPLAIN
//! ANALYZE (`est=` with a `qerr=` factor against the actual `rows=`), and
//! aggregated per template by `tpcds-bench coverage`. The map is keyed by
//! node address, exactly like [`crate::exec::StatsMap`], so the two align
//! node-for-node in the rendered plan.

use crate::catalog::Database;
use crate::expr::{BExpr, CmpOp};
use crate::plan::{JoinKind, Plan, SetOpKind};
use std::collections::HashMap;
use std::sync::Arc;
use tpcds_storage::stats::{hist_key, TableStats};
use tpcds_types::Value;

/// Estimated output rows per plan node, keyed by node address (the same
/// key [`crate::exec::StatsMap`] uses).
pub type EstMap = HashMap<usize, f64>;

/// Default equality selectivity when the column's NDV is unknown.
const SEL_EQ: f64 = 0.05;
/// Default range (`<`, `>`, …) selectivity.
const SEL_RANGE: f64 = 0.3;
/// Default BETWEEN selectivity.
const SEL_BETWEEN: f64 = 0.2;
/// Default LIKE selectivity.
const SEL_LIKE: f64 = 0.25;
/// Default IS NULL selectivity.
const SEL_IS_NULL: f64 = 0.1;
/// Per-item IN-list selectivity.
const SEL_IN_ITEM: f64 = 0.03;
/// Selectivity for predicates we can't analyze (subqueries, arithmetic).
const SEL_OTHER: f64 = 0.5;

/// Walks `plan` bottom-up and returns the estimate for every node.
pub fn estimate_plan(plan: &Plan, db: &Database) -> EstMap {
    let mut map = EstMap::new();
    walk(plan, db, &mut map);
    map
}

/// The q-error of an estimate against an actual row count: the factor by
/// which the estimate is off, `max(est/actual, actual/est)`, with both
/// sides floored at one row so zero-row operators don't divide by zero.
/// 1.0 is a perfect estimate.
pub fn q_error(est: f64, actual: u64) -> f64 {
    let e = est.max(1.0);
    let a = (actual as f64).max(1.0);
    (e / a).max(a / e)
}

/// Statistics of the base table a plan node scans, when the node's output
/// coordinates still map 1:1 onto that table's columns (a bare scan, or a
/// filter directly over one).
pub fn scan_table_stats(plan: &Plan, db: &Database) -> Option<Arc<TableStats>> {
    match plan {
        Plan::Scan { table, .. } => db.table(table).ok().and_then(|t| t.stats()),
        Plan::Filter { input, .. } => scan_table_stats(input, db),
        _ => None,
    }
}

fn walk(plan: &Plan, db: &Database, map: &mut EstMap) -> f64 {
    let est = match plan {
        Plan::Scan { table, filter, .. } => {
            let stats = db.table(table).ok().and_then(|t| t.stats());
            let rows = stats
                .as_ref()
                .map(|s| s.rows as f64)
                .unwrap_or_else(|| db.row_count(table) as f64);
            let sel = filter
                .as_ref()
                .map(|f| predicate_selectivity(f, stats.as_deref()))
                .unwrap_or(1.0);
            rows * sel
        }
        Plan::Filter { input, predicate } => {
            let in_est = walk(input, db, map);
            // Coordinates only line up with base-table stats directly
            // above a scan; elsewhere fall back to the crude constants.
            let stats = scan_table_stats(input, db);
            in_est * predicate_selectivity(predicate, stats.as_deref())
        }
        Plan::Project { input, .. } | Plan::Window { input, .. } | Plan::Sort { input, .. } => {
            walk(input, db, map)
        }
        Plan::Prefix { input, .. } => walk(input, db, map),
        Plan::HashJoin {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
        } => {
            let l = walk(left, db, map);
            let r = walk(right, db, map);
            let mut est = equi_join_rows(l, r, left, right, left_keys, right_keys, db);
            if let Some(res) = residual {
                est *= predicate_selectivity(res, None);
            }
            if *kind == JoinKind::Left {
                est = est.max(l);
            }
            est
        }
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            predicate,
        } => {
            let l = walk(left, db, map);
            let r = walk(right, db, map);
            let mut est = l * r;
            if let Some(p) = predicate {
                est *= predicate_selectivity(p, None);
            }
            if *kind == JoinKind::Left {
                est = est.max(l);
            }
            est
        }
        Plan::Aggregate {
            input,
            groups,
            sets,
            aggs: _,
        } => {
            let in_est = walk(input, db, map);
            let per_set = if groups.is_empty() {
                1.0
            } else {
                group_count(groups, input, in_est, db)
            };
            per_set * sets.len().max(1) as f64
        }
        Plan::TopN { input, n, .. } | Plan::Limit { input, n } => {
            let in_est = walk(input, db, map);
            in_est.min(*n as f64)
        }
        Plan::Distinct { input } => {
            // No whole-row NDV; assume halving, floored at one row.
            let in_est = walk(input, db, map);
            if in_est > 0.0 {
                (in_est * 0.5).max(1.0)
            } else {
                0.0
            }
        }
        Plan::SetOp {
            left,
            right,
            op,
            all,
        } => {
            let l = walk(left, db, map);
            let r = walk(right, db, map);
            match op {
                SetOpKind::Union => {
                    if *all {
                        l + r
                    } else {
                        (l + r) * 0.9
                    }
                }
                SetOpKind::Intersect => l.min(r) * 0.5,
                SetOpKind::Except => l,
            }
        }
        Plan::CteRef { plan, .. } => walk(plan, db, map),
    };
    let est = if est.is_finite() { est.max(0.0) } else { 0.0 };
    map.insert(plan as *const Plan as usize, est);
    est
}

/// Classic equi-join estimate: `|L| * |R| / max-key-NDV`, per key pair,
/// falling back to the primary-key assumption `max(|L|, |R|)` when no
/// side's key NDV can be resolved from base-table statistics.
fn equi_join_rows(
    l: f64,
    r: f64,
    left: &Plan,
    right: &Plan,
    left_keys: &[BExpr],
    right_keys: &[BExpr],
    db: &Database,
) -> f64 {
    let ls = scan_table_stats(left, db);
    let rs = scan_table_stats(right, db);
    let mut denom = 1.0f64;
    let mut resolved = false;
    for (lk, rk) in left_keys.iter().zip(right_keys) {
        let ln = key_ndv(lk, ls.as_deref());
        let rn = key_ndv(rk, rs.as_deref());
        if let Some(n) = match (ln, rn) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        } {
            denom *= n.max(1.0);
            resolved = true;
        }
    }
    if resolved {
        l * r / denom
    } else {
        l.max(r).max(1.0)
    }
}

fn key_ndv(key: &BExpr, stats: Option<&TableStats>) -> Option<f64> {
    match (key, stats) {
        (BExpr::Col(i), Some(s)) => s.column(*i).map(|c| c.ndv as f64),
        _ => None,
    }
}

/// Estimated number of distinct group keys: product of group-column NDVs
/// when every group expression is a plain column over a scanned table,
/// clamped to the input row estimate; otherwise a 10% heuristic.
fn group_count(groups: &[BExpr], input: &Plan, in_est: f64, db: &Database) -> f64 {
    let cap = in_est.max(1.0);
    let stats = scan_table_stats(input, db);
    let mut prod = 1.0f64;
    let mut resolved = stats.is_some();
    if let Some(s) = stats.as_deref() {
        for g in groups {
            match g {
                BExpr::Col(i) => match s.column(*i) {
                    Some(c) => prod *= (c.ndv as f64).max(1.0),
                    None => {
                        resolved = false;
                        break;
                    }
                },
                _ => {
                    resolved = false;
                    break;
                }
            }
        }
    }
    if resolved {
        prod.min(cap)
    } else {
        (in_est * 0.1).clamp(1.0, cap)
    }
}

/// Selectivity of `e` in `0.0..=1.0`. With `stats`, column-vs-literal
/// comparisons use NDV, histogram and null-fraction information; without
/// (or for unanalyzable shapes) the classic constants apply.
pub fn predicate_selectivity(e: &BExpr, stats: Option<&TableStats>) -> f64 {
    let s = match e {
        BExpr::Lit(Value::Bool(b)) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        BExpr::And(a, b) => predicate_selectivity(a, stats) * predicate_selectivity(b, stats),
        BExpr::Or(a, b) => {
            let x = predicate_selectivity(a, stats);
            let y = predicate_selectivity(b, stats);
            x + y - x * y
        }
        BExpr::Not(inner) => 1.0 - predicate_selectivity(inner, stats),
        BExpr::Cmp(op, a, b) => cmp_selectivity(*op, a, b, stats),
        BExpr::IsNull(inner, negated) => {
            let frac = match (col_of(inner), stats) {
                (Some(i), Some(s)) => s.null_fraction(i),
                _ => SEL_IS_NULL,
            };
            if *negated {
                1.0 - frac
            } else {
                frac
            }
        }
        BExpr::Like(_, _, negated) => {
            if *negated {
                1.0 - SEL_LIKE
            } else {
                SEL_LIKE
            }
        }
        BExpr::InList(inner, items, negated) => {
            let per = match (col_of(inner), stats) {
                (Some(i), Some(s)) => eq_selectivity(i, s),
                _ => SEL_IN_ITEM,
            };
            let sel = (per * items.len() as f64).min(1.0);
            if *negated {
                1.0 - sel
            } else {
                sel
            }
        }
        BExpr::Between(inner, lo, hi, negated) => {
            let sel = match (col_of(inner), lit_of(lo), lit_of(hi), stats) {
                (Some(i), Some(lo), Some(hi), Some(s)) => range_between(i, lo, hi, s),
                _ => SEL_BETWEEN,
            };
            if *negated {
                1.0 - sel
            } else {
                sel
            }
        }
        _ => SEL_OTHER,
    };
    s.clamp(0.0, 1.0)
}

fn col_of(e: &BExpr) -> Option<usize> {
    match e {
        BExpr::Col(i) => Some(*i),
        _ => None,
    }
}

fn lit_of(e: &BExpr) -> Option<&Value> {
    match e {
        BExpr::Lit(v) => Some(v),
        _ => None,
    }
}

/// `col = const` selectivity: uniform over the distinct values among the
/// non-NULL fraction of the column.
fn eq_selectivity(col: usize, s: &TableStats) -> f64 {
    match s.column(col) {
        Some(c) if s.rows > 0 => {
            let non_null = 1.0 - s.null_fraction(col);
            if c.ndv == 0 {
                0.0
            } else {
                non_null / c.ndv as f64
            }
        }
        _ => SEL_EQ,
    }
}

fn cmp_selectivity(op: CmpOp, a: &BExpr, b: &BExpr, stats: Option<&TableStats>) -> f64 {
    // Normalize to column-vs-literal; flip the operator when the literal
    // is on the left.
    let (col, lit, op) = match (col_of(a), lit_of(b), col_of(b), lit_of(a)) {
        (Some(c), Some(l), _, _) => (Some(c), Some(l), op),
        (_, _, Some(c), Some(l)) => (Some(c), Some(l), flip(op)),
        _ => {
            // `col ± k <op> v` estimates like the shifted range
            // `col <op> v ∓ k` — arithmetic-wrapped comparisons would
            // otherwise all fall to the SEL_OTHER guess even though the
            // histogram answers them exactly.
            if let Some((c, shifted)) = shifted_int_cmp(a, b) {
                return cmp_selectivity(op, &BExpr::Col(c), &BExpr::Lit(shifted), stats);
            }
            if let Some((c, shifted)) = shifted_int_cmp(b, a) {
                return cmp_selectivity(flip(op), &BExpr::Col(c), &BExpr::Lit(shifted), stats);
            }
            (None, None, op)
        }
    };
    match (col, lit, stats) {
        (Some(c), Some(l), Some(s)) => match op {
            CmpOp::Eq => eq_selectivity(c, s),
            CmpOp::Ne => 1.0 - eq_selectivity(c, s),
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => range_selectivity(c, op, l, s),
        },
        _ => match op {
            CmpOp::Eq => SEL_EQ,
            CmpOp::Ne => 1.0 - SEL_EQ,
            _ => SEL_RANGE,
        },
    }
}

/// Matches `Col ± IntLit` (or `IntLit + Col`) compared against an integer
/// literal `other`, returning the column and the literal translated to the
/// column's own scale, so `qty + 1 = 3` estimates exactly like `qty = 2`.
fn shifted_int_cmp(arith_side: &BExpr, other: &BExpr) -> Option<(usize, Value)> {
    let BExpr::Arith(aop, l, r) = arith_side else {
        return None;
    };
    let Some(Value::Int(v)) = lit_of(other) else {
        return None;
    };
    let int_lit = |e: &BExpr| match lit_of(e) {
        Some(Value::Int(k)) => Some(*k),
        _ => None,
    };
    match aop {
        tpcds_types::scalar::ArithOp::Add => match (col_of(l), int_lit(r), col_of(r), int_lit(l)) {
            (Some(c), Some(k), _, _) | (_, _, Some(c), Some(k)) => {
                Some((c, Value::Int(v.checked_sub(k)?)))
            }
            _ => None,
        },
        tpcds_types::scalar::ArithOp::Sub => match (col_of(l), int_lit(r)) {
            // Only `col - k`: `k - col` flips monotonicity, which a pure
            // literal shift cannot express.
            (Some(c), Some(k)) => Some((c, Value::Int(v.checked_add(k)?))),
            _ => None,
        },
        _ => None,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

/// Range selectivity for `col <op> lit` from the histogram (preferred) or
/// a min/max linear interpolation; ranges entirely outside the observed
/// min/max estimate zero.
fn range_selectivity(col: usize, op: CmpOp, lit: &Value, s: &TableStats) -> f64 {
    let Some(c) = s.column(col) else {
        return SEL_RANGE;
    };
    if s.rows == 0 {
        return 0.0;
    }
    let non_null = 1.0 - s.null_fraction(col);
    let frac_le = fraction_le(c, lit, s.rows);
    match (frac_le, op) {
        (Some(f), CmpOp::Lt | CmpOp::Le) => f * non_null,
        (Some(f), CmpOp::Gt | CmpOp::Ge) => (1.0 - f) * non_null,
        _ => SEL_RANGE,
    }
}

/// `BETWEEN lo AND hi` via two cumulative-fraction reads.
fn range_between(col: usize, lo: &Value, hi: &Value, s: &TableStats) -> f64 {
    let Some(c) = s.column(col) else {
        return SEL_BETWEEN;
    };
    if s.rows == 0 {
        return 0.0;
    }
    let non_null = 1.0 - s.null_fraction(col);
    match (fraction_le(c, hi, s.rows), fraction_le(c, lo, s.rows)) {
        (Some(h), Some(l)) => ((h - l) * non_null).max(0.0),
        _ => SEL_BETWEEN,
    }
}

/// Fraction of non-NULL values `<= lit`, from the histogram when it
/// covers the whole column, else from a min/max interpolation. `None`
/// when the column has no usable numeric axis (e.g. strings).
fn fraction_le(c: &tpcds_storage::ColumnStats, lit: &Value, table_rows: u64) -> Option<f64> {
    // Out-of-range shortcuts from exact min/max (work for strings too).
    if let (Some(min), Some(max)) = (&c.min, &c.max) {
        if lit.sort_cmp(min) == std::cmp::Ordering::Less {
            return Some(0.0);
        }
        if lit.sort_cmp(max) != std::cmp::Ordering::Less {
            return Some(1.0);
        }
    }
    let key = hist_key(lit)?;
    if c.hist_covers_column(table_rows) {
        return Some(c.hist.fraction_le(key));
    }
    // Histogram unusable: interpolate linearly between min and max.
    let lo = c.min.as_ref().and_then(hist_key)?;
    let hi = c.max.as_ref().and_then(hist_key)?;
    if hi <= lo {
        return Some(1.0);
    }
    Some((key.saturating_sub(lo)) as f64 / (hi - lo) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnMeta;
    use tpcds_types::DataType;

    fn db_with(name: &str, col: &str, values: Vec<Value>) -> Database {
        let db = Database::new();
        let rows: Vec<Vec<Value>> = values.into_iter().map(|v| vec![v]).collect();
        db.create_table_with_rows(
            name,
            vec![ColumnMeta {
                name: col.into(),
                dtype: DataType::Int,
            }],
            rows,
        )
        .unwrap();
        db.build_columnar_shadows();
        db
    }

    fn scan(db: &Database, table: &str, filter: Option<BExpr>) -> Plan {
        Plan::Scan {
            table: table.into(),
            width: db.columns(table).unwrap().len(),
            filter,
        }
    }

    fn eq_lit(col: usize, v: i64) -> BExpr {
        BExpr::Cmp(
            CmpOp::Eq,
            Box::new(BExpr::Col(col)),
            Box::new(BExpr::Lit(Value::Int(v))),
        )
    }

    fn est_of(plan: &Plan, db: &Database) -> f64 {
        estimate_plan(plan, db)[&(plan as *const Plan as usize)]
    }

    #[test]
    fn empty_table_estimates_zero() {
        let db = db_with("t", "a", vec![]);
        let p = scan(&db, "t", Some(eq_lit(0, 5)));
        assert_eq!(est_of(&p, &db), 0.0);
    }

    #[test]
    fn all_null_column_boundaries() {
        let db = db_with("t", "a", (0..100).map(|_| Value::Null).collect());
        // a = 5 can never match a NULL.
        let p = scan(&db, "t", Some(eq_lit(0, 5)));
        assert_eq!(est_of(&p, &db), 0.0);
        // a IS NULL matches everything.
        let p = scan(
            &db,
            "t",
            Some(BExpr::IsNull(Box::new(BExpr::Col(0)), false)),
        );
        assert!((est_of(&p, &db) - 100.0).abs() < 1e-9);
        // a IS NOT NULL matches nothing.
        let p = scan(&db, "t", Some(BExpr::IsNull(Box::new(BExpr::Col(0)), true)));
        assert_eq!(est_of(&p, &db), 0.0);
    }

    #[test]
    fn single_value_column_eq_estimates_all_rows() {
        let db = db_with("t", "a", (0..1000).map(|_| Value::Int(7)).collect());
        let p = scan(&db, "t", Some(eq_lit(0, 7)));
        let est = est_of(&p, &db);
        assert!((est - 1000.0).abs() / 1000.0 < 0.05, "est {est}");
    }

    #[test]
    fn range_outside_min_max_estimates_zero() {
        let db = db_with("t", "a", (100..200).map(Value::Int).collect());
        for pred in [
            BExpr::Cmp(
                CmpOp::Lt,
                Box::new(BExpr::Col(0)),
                Box::new(BExpr::Lit(Value::Int(50))),
            ),
            BExpr::Cmp(
                CmpOp::Gt,
                Box::new(BExpr::Col(0)),
                Box::new(BExpr::Lit(Value::Int(500))),
            ),
            BExpr::Between(
                Box::new(BExpr::Col(0)),
                Box::new(BExpr::Lit(Value::Int(500))),
                Box::new(BExpr::Lit(Value::Int(600))),
                false,
            ),
        ] {
            let p = scan(&db, "t", Some(pred.clone()));
            let est = est_of(&p, &db);
            assert!(est < 1.0, "pred {pred:?} est {est}");
        }
        // And a range covering everything estimates all rows.
        let p = scan(
            &db,
            "t",
            Some(BExpr::Between(
                Box::new(BExpr::Col(0)),
                Box::new(BExpr::Lit(Value::Int(0))),
                Box::new(BExpr::Lit(Value::Int(1000))),
                false,
            )),
        );
        let est = est_of(&p, &db);
        assert!((est - 100.0).abs() / 100.0 < 0.05, "est {est}");
    }

    #[test]
    fn histogram_range_selectivity_tracks_uniform_data() {
        let db = db_with("t", "a", (0..10_000).map(Value::Int).collect());
        let p = scan(
            &db,
            "t",
            Some(BExpr::Cmp(
                CmpOp::Lt,
                Box::new(BExpr::Col(0)),
                Box::new(BExpr::Lit(Value::Int(2_500))),
            )),
        );
        let est = est_of(&p, &db);
        assert!(
            (est - 2_500.0).abs() / 2_500.0 < 0.3,
            "est {est}, want ~2500"
        );
    }

    #[test]
    fn join_estimate_uses_key_ndv() {
        // Fact (1000 rows, key uniform over 100) ⋈ dim (100 rows, unique
        // key): expect ~1000 output rows.
        let db = Database::new();
        db.create_table_with_rows(
            "fact",
            vec![ColumnMeta {
                name: "fk".into(),
                dtype: DataType::Int,
            }],
            (0..1000).map(|i| vec![Value::Int(i % 100)]).collect(),
        )
        .unwrap();
        db.create_table_with_rows(
            "dim",
            vec![ColumnMeta {
                name: "pk".into(),
                dtype: DataType::Int,
            }],
            (0..100).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap();
        db.build_columnar_shadows();
        let p = Plan::HashJoin {
            left: Arc::new(scan(&db, "fact", None)),
            right: Arc::new(scan(&db, "dim", None)),
            kind: JoinKind::Inner,
            left_keys: vec![BExpr::Col(0)],
            right_keys: vec![BExpr::Col(0)],
            residual: None,
        };
        let est = est_of(&p, &db);
        assert!((est - 1000.0).abs() / 1000.0 < 0.1, "est {est}");
    }

    #[test]
    fn shifted_arithmetic_cmp_matches_plain_range() {
        let db = db_with("t", "a", (0..10_000).map(Value::Int).collect());
        let arith = |aop, k: i64, op, v: i64| {
            BExpr::Cmp(
                op,
                Box::new(BExpr::Arith(
                    aop,
                    Box::new(BExpr::Col(0)),
                    Box::new(BExpr::Lit(Value::Int(k))),
                )),
                Box::new(BExpr::Lit(Value::Int(v))),
            )
        };
        use tpcds_types::scalar::ArithOp;
        // a + 500 < 3000 ≡ a < 2500; a - 500 < 2000 ≡ a < 2500.
        let plain = scan(
            &db,
            "t",
            Some(BExpr::Cmp(
                CmpOp::Lt,
                Box::new(BExpr::Col(0)),
                Box::new(BExpr::Lit(Value::Int(2_500))),
            )),
        );
        let want = est_of(&plain, &db);
        for pred in [
            arith(ArithOp::Add, 500, CmpOp::Lt, 3_000),
            arith(ArithOp::Sub, 500, CmpOp::Lt, 2_000),
        ] {
            let p = scan(&db, "t", Some(pred));
            let est = est_of(&p, &db);
            assert!((est - want).abs() < 1e-9, "est {est}, want {want}");
        }
        // Literal-on-left variant: 3000 > a + 500 ≡ a < 2500.
        let flipped = BExpr::Cmp(
            CmpOp::Gt,
            Box::new(BExpr::Lit(Value::Int(3_000))),
            Box::new(BExpr::Arith(
                ArithOp::Add,
                Box::new(BExpr::Col(0)),
                Box::new(BExpr::Lit(Value::Int(500))),
            )),
        );
        let p = scan(&db, "t", Some(flipped));
        let est = est_of(&p, &db);
        assert!((est - want).abs() < 1e-9, "est {est}, want {want}");
        // `k - col` must NOT shift (monotonicity flips): it stays at the
        // generic range guess rather than producing a wrong exact number.
        let ksub = BExpr::Cmp(
            CmpOp::Lt,
            Box::new(BExpr::Arith(
                ArithOp::Sub,
                Box::new(BExpr::Lit(Value::Int(500))),
                Box::new(BExpr::Col(0)),
            )),
            Box::new(BExpr::Lit(Value::Int(100))),
        );
        let p = scan(&db, "t", Some(ksub));
        let est = est_of(&p, &db);
        assert!(
            (est - 10_000.0 * SEL_RANGE).abs() < 1e-9,
            "k - col must use the generic guess, got {est}"
        );
    }

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(100.0, 100), 1.0);
        assert_eq!(q_error(200.0, 100), 2.0);
        assert_eq!(q_error(50.0, 100), 2.0);
        // Floors keep zero-row nodes finite.
        assert_eq!(q_error(0.0, 0), 1.0);
        assert_eq!(q_error(0.0, 10), 10.0);
    }
}
