//! SQL DDL rendering of the schema — `CREATE TABLE` statements in the
//! dialect of the TPC-DS specification's appendix, for loading the
//! generated flat files into external engines.

use crate::column::{ColumnType, TableDef};
use crate::Schema;
use std::fmt::Write;

/// Renders one column's declared SQL type.
pub fn sql_type(c: &ColumnType) -> String {
    match c {
        ColumnType::Id => "integer".to_string(),
        ColumnType::Int => "integer".to_string(),
        ColumnType::Dec(p, s) => format!("decimal({p},{s})"),
        ColumnType::Char(n) => format!("char({n})"),
        ColumnType::Varchar(n) => format!("varchar({n})"),
        ColumnType::Date => "date".to_string(),
    }
}

/// Renders `CREATE TABLE` for one table, with primary-key constraint.
pub fn create_table(t: &TableDef) -> String {
    let mut out = format!("create table {}\n(\n", t.name);
    let width = t.columns.iter().map(|c| c.name.len()).max().unwrap_or(0);
    for c in &t.columns {
        let null = if c.nullable { "" } else { " not null" };
        writeln!(
            out,
            "    {:<width$}  {}{},",
            c.name,
            sql_type(&c.ctype),
            null,
        )
        .expect("write to string");
    }
    writeln!(out, "    primary key ({})", t.primary_key.join(", ")).expect("write to string");
    out.push_str(");\n");
    out
}

/// Renders `ALTER TABLE ... FOREIGN KEY` statements for one table.
pub fn foreign_keys(t: &TableDef) -> String {
    let mut out = String::new();
    for f in &t.foreign_keys {
        writeln!(
            out,
            "alter table {} add foreign key ({}) references {} ({});",
            t.name, f.column, f.ref_table, f.ref_column
        )
        .expect("write to string");
    }
    out
}

/// The full DDL script: all 24 tables, then all 104 foreign keys (facts
/// reference dimensions, so constraints come after all creates).
pub fn full_ddl(schema: &Schema) -> String {
    let mut out = String::from("-- TPC-DS schema DDL (generated)\n\n");
    for t in schema.tables() {
        out.push_str(&create_table(t));
        out.push('\n');
    }
    for t in schema.tables() {
        out.push_str(&foreign_keys(t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_renders_all_columns() {
        let schema = Schema::tpcds();
        let ddl = create_table(schema.table("income_band").expect("table"));
        assert!(ddl.contains("create table income_band"));
        assert!(ddl.contains("ib_income_band_sk"));
        assert!(ddl.contains("not null"));
        assert!(ddl.contains("primary key (ib_income_band_sk)"));
    }

    #[test]
    fn composite_primary_keys_render() {
        let schema = Schema::tpcds();
        let ddl = create_table(schema.table("store_sales").expect("table"));
        assert!(ddl.contains("primary key (ss_item_sk, ss_ticket_number)"));
        assert!(ddl.contains("decimal(7,2)"));
    }

    #[test]
    fn full_ddl_has_24_creates_and_104_fks() {
        let ddl = full_ddl(&Schema::tpcds());
        assert_eq!(ddl.matches("create table ").count(), 24);
        assert_eq!(ddl.matches("add foreign key").count(), 104);
        // Constraints must come after every create (dimension-before-fact
        // plus deferred FKs).
        let last_create = ddl.rfind("create table ").expect("creates");
        let first_fk = ddl.find("add foreign key").expect("fks");
        assert!(last_create < first_fk);
    }

    #[test]
    fn types_round_trip_sensibly() {
        assert_eq!(sql_type(&ColumnType::Dec(15, 2)), "decimal(15,2)");
        assert_eq!(sql_type(&ColumnType::Char(16)), "char(16)");
        assert_eq!(sql_type(&ColumnType::Varchar(200)), "varchar(200)");
    }
}
