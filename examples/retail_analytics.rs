//! Retail analytics: the business questions the paper's intro motivates,
//! asked through the public API — an ad-hoc store query, a reporting
//! catalog query with a window function, and a cross-channel comparison,
//! with EXPLAIN output showing how the optimizer treats the snowstorm
//! schema.
//!
//! ```sh
//! cargo run --release --example retail_analytics
//! ```

use tpcds_repro::TpcDs;

fn main() {
    let tpcds = TpcDs::builder()
        .scale_factor(0.02)
        .reporting_aux(true)
        .build()
        .expect("generate + load");

    // 1. Ad-hoc: holiday-season brand revenue (query 52 family).
    let q52 = tpcds.benchmark_sql(52, 1).expect("template");
    println!("=== Ad-hoc (store channel): brand revenue ===");
    let r = tpcds.query(&q52).expect("q52");
    println!("{}", r.to_table(5));

    // 2. Reporting: revenue share within the item class (query 20 —
    //    the paper's Figure 7, with the SQL-99 window function).
    let q20 = tpcds.benchmark_sql(20, 1).expect("template");
    println!("=== Reporting (catalog channel): class revenue ratio ===");
    let r = tpcds.query(&q20).expect("q20");
    println!("{}", r.to_table(5));
    println!("Plan:\n{}", tpcds.explain(&q20).expect("explain"));

    // 3. Cross-channel: store vs web revenue by category, exploiting the
    //    shared item dimension (the "joins on mutual dimensions" of §2.2).
    let cross = "
        select i_category,
               sum(case when channel = 's' then rev else 0 end) store_rev,
               sum(case when channel = 'w' then rev else 0 end) web_rev
        from (select 's' channel, i_category, ss_ext_sales_price rev
              from store_sales, item where ss_item_sk = i_item_sk
              union all
              select 'w' channel, i_category, ws_ext_sales_price rev
              from web_sales, item where ws_item_sk = i_item_sk) x
        group by i_category
        order by i_category";
    println!("=== Cross-channel: store vs web revenue by category ===");
    let r = tpcds.query(cross).expect("cross-channel");
    println!("{}", r.to_table(12));

    // 4. The fact-to-fact join of §2.2: sales joined to their returns.
    let returns = "
        select count(*) returned_line_items,
               sum(sr_return_amt) total_returned
        from store_sales, store_returns
        where ss_item_sk = sr_item_sk and ss_ticket_number = sr_ticket_number";
    println!("=== Fact-to-fact join: sales with their returns ===");
    let r = tpcds.query(returns).expect("fact-to-fact");
    println!("{}", r.to_table(3));
}
