//! Column and table metadata types for the TPC-DS snowstorm schema.

use tpcds_types::DataType;

/// Declared SQL type of a schema column (as in the TPC-DS DDL).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// Surrogate-key integer (`*_sk`) or other identifier.
    Id,
    /// Plain integer.
    Int,
    /// `decimal(p, s)`.
    Dec(u8, u8),
    /// Fixed-width character string of the given declared width.
    Char(u16),
    /// Variable-width character string up to the given width.
    Varchar(u16),
    /// Calendar date.
    Date,
}

impl ColumnType {
    /// The runtime [`DataType`] values of this column carry.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnType::Id | ColumnType::Int => DataType::Int,
            ColumnType::Dec(_, _) => DataType::Decimal,
            ColumnType::Char(_) | ColumnType::Varchar(_) => DataType::Str,
            ColumnType::Date => DataType::Date,
        }
    }

    /// Rough average width, in bytes, of this column in a dsdgen-style flat
    /// file (content only, excluding the `|` separator). Used for the
    /// analytic row-length model behind Table 1; the bench harness also
    /// measures real generated files.
    pub fn est_flat_width(&self) -> f64 {
        match self {
            ColumnType::Id => 6.0,
            ColumnType::Int => 4.0,
            ColumnType::Dec(_, s) => 5.0 + *s as f64,
            // dsdgen fills short code columns completely, medium text
            // columns to ~60% and wide free-text columns to ~35% of the
            // declared width on average.
            ColumnType::Char(n) | ColumnType::Varchar(n) => {
                if *n <= 4 {
                    *n as f64
                } else if *n <= 30 {
                    *n as f64 * 0.6
                } else {
                    *n as f64 * 0.35
                }
            }
            ColumnType::Date => 10.0,
        }
    }
}

/// One column of a table.
#[derive(Clone, Debug)]
pub struct Column {
    /// Column name, e.g. `ss_sold_date_sk`.
    pub name: &'static str,
    /// Declared type.
    pub ctype: ColumnType,
    /// Whether NULLs may appear (TPC-DS fact FK columns are nullable; keys
    /// and identifiers are not).
    pub nullable: bool,
}

/// A declared foreign-key relationship.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column in this table.
    pub column: &'static str,
    /// Referenced table.
    pub ref_table: &'static str,
    /// Referenced column (always the surrogate key).
    pub ref_column: &'static str,
}

/// Fact or dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableKind {
    /// Large, linearly scaling transaction table.
    Fact,
    /// Sub-linearly scaling lookup table.
    Dimension,
}

/// How a dimension evolves during data maintenance (paper §3.3.2 / §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScdClass {
    /// Loaded once, never touched (date_dim, time_dim, reason, ...).
    Static,
    /// Updated in place by business key (Figure 8).
    NonHistory,
    /// Versioned with rec_start_date / rec_end_date (Figure 9); up to three
    /// revisions per business key exist in the initial population.
    History,
    /// Fact tables are not dimensions; they take inserts and deletes.
    NotApplicable,
}

/// Which side of the ad-hoc / reporting split a table belongs to
/// (paper §2.1–2.2: store + web channels are ad-hoc, catalog is reporting,
/// shared dimensions serve both).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemaPart {
    /// Store & web channels: only basic auxiliary structures allowed.
    AdHoc,
    /// Catalog channel: rich auxiliary structures allowed.
    Reporting,
    /// Dimensions referenced from both parts.
    Shared,
}

/// Complete definition of one table.
#[derive(Clone, Debug)]
pub struct TableDef {
    /// Table name, e.g. `store_sales`.
    pub name: &'static str,
    /// Fact or dimension.
    pub kind: TableKind,
    /// SCD classification (dimensions) or `NotApplicable` (facts).
    pub scd: ScdClass,
    /// Ad-hoc / reporting / shared partition.
    pub part: SchemaPart,
    /// All columns, in DDL order.
    pub columns: Vec<Column>,
    /// Primary-key column names.
    pub primary_key: Vec<&'static str>,
    /// The OLTP-style business key (`*_id`) joined against during data
    /// maintenance, when the table has one.
    pub business_key: Option<&'static str>,
    /// Declared foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableDef {
    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column definition by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Estimated average flat-file row length in bytes, including one `|`
    /// separator per column (dsdgen terminates every field with `|`).
    pub fn est_row_bytes(&self) -> f64 {
        self.columns
            .iter()
            .map(|c| {
                let w = c.ctype.est_flat_width();
                // NULLs print as empty: assume a modest null rate on
                // nullable columns.
                let w = if c.nullable { w * 0.96 } else { w };
                w + 1.0
            })
            .sum()
    }

    /// True when the dimension keeps history (has rec_start/end dates).
    pub fn is_history_keeping(&self) -> bool {
        self.scd == ScdClass::History
    }
}
