//! Microbenchmarks of query execution: representative queries from each
//! class (the paper's Figures 6 & 7 among them), plus the ad-hoc vs
//! reporting index ablation on a point lookup.

use tpcds_bench::harness::bench;
use tpcds_core::TpcDs;

fn main() {
    let tpcds = TpcDs::builder()
        .scale_factor(0.01)
        .reporting_aux(true)
        .build()
        .expect("load");
    // One per class: 52 ad-hoc (Fig 6), 20 reporting (Fig 7), 5 hybrid
    // rollup, 96 point-ish count, 98 windowed store report.
    for id in [52u32, 20, 5, 96, 98] {
        let sql = tpcds.benchmark_sql(id, 0).expect("template");
        bench(&format!("queries/q{id}"), 10, || {
            tpcds.query(&sql).expect("query");
        });
    }

    let plain = TpcDs::builder().scale_factor(0.01).build().expect("load");
    let sql = "select count(*) c from catalog_sales where cs_item_sk = 17";
    bench("index_ablation/point_lookup/no_aux", 10, || {
        plain.query(sql).expect("query");
    });
    bench("index_ablation/point_lookup/reporting_aux", 10, || {
        tpcds.query(sql).expect("query");
    });
}
