//! Named substitution distributions: the word lists the query templates
//! draw bind values from. These are the same domains the data generator
//! populates the tables with, which is what guarantees substitutions
//! qualify rows at all — the "tight coupling of the two tools" (paper §3).

use tpcds_dgen::words;

/// Months by comparability zone, as textual month numbers.
pub const MONTHS_LOW: &[&str] = &["1", "2", "3", "4", "5", "6", "7"];
/// Medium zone months.
pub const MONTHS_MEDIUM: &[&str] = &["8", "9", "10"];
/// High zone months.
pub const MONTHS_HIGH: &[&str] = &["11", "12"];

/// Gender codes.
pub const GENDERS: &[&str] = &["M", "F"];

/// Resolves a distribution name used by `pick(...)` / `list(...)`.
pub fn named_list(name: &str) -> Option<&'static [&'static str]> {
    Some(match name {
        "categories" => CATEGORY_NAMES,
        "classes" => CLASS_NAMES,
        "colors" => words::COLORS,
        "states" => words::STATES,
        "counties" => words::COUNTIES,
        "cities" => words::CITIES,
        "education" => words::EDUCATION_STATUSES,
        "marital" => words::MARITAL_STATUSES,
        "buy_potential" => words::BUY_POTENTIALS,
        "credit_rating" => words::CREDIT_RATINGS,
        "genders" => GENDERS,
        "months_low" => MONTHS_LOW,
        "months_medium" => MONTHS_MEDIUM,
        "months_high" => MONTHS_HIGH,
        "sizes" => words::SIZES,
        "units" => words::UNITS,
        "containers" => words::CONTAINERS,
        "countries" => words::COUNTRIES,
        "ship_mode_types" => words::SHIP_MODE_TYPES,
        "web_page_types" => words::WEB_PAGE_TYPES,
        "zip_prefixes" => ZIP_PREFIXES,
        _ => return None,
    })
}

/// Two-digit zip prefixes (zips are generated uniformly in 00600-99998,
/// so every prefix qualifies a comparable slice).
pub const ZIP_PREFIXES: &[&str] = &[
    "10", "13", "17", "21", "24", "28", "31", "35", "38", "42", "45", "49", "52", "56", "59", "63",
    "66", "70", "73", "77", "80", "84", "87", "91", "94", "98", "12", "23", "34", "47", "58", "69",
    "71", "82", "93", "19", "27", "39", "44", "55",
];

/// The ten category names.
pub const CATEGORY_NAMES: &[&str] = &[
    "Books",
    "Children",
    "Electronics",
    "Home",
    "Jewelry",
    "Men",
    "Music",
    "Shoes",
    "Sports",
    "Women",
];

/// A flattened sample of class names (for class-level predicates).
pub const CLASS_NAMES: &[&str] = &[
    "arts",
    "business",
    "computers",
    "cooking",
    "fiction",
    "history",
    "mystery",
    "romance",
    "science",
    "travel",
    "infants",
    "toddlers",
    "audio",
    "cameras",
    "monitors",
    "televisions",
    "wireless",
    "bedding",
    "decor",
    "furniture",
    "lighting",
    "rugs",
    "bracelets",
    "diamonds",
    "gold",
    "rings",
    "pants",
    "shirts",
    "classical",
    "country",
    "pop",
    "rock",
    "athletic",
    "mens",
    "womens",
    "baseball",
    "basketball",
    "camping",
    "fishing",
    "fitness",
    "football",
    "golf",
    "tennis",
    "dresses",
    "fragrances",
    "maternity",
    "swimwear",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_names_match_dgen_hierarchy() {
        let from_dgen: Vec<&str> = words::CATEGORIES.iter().map(|(c, _)| *c).collect();
        assert_eq!(CATEGORY_NAMES, from_dgen.as_slice());
    }

    #[test]
    fn class_names_are_real_classes() {
        for class in CLASS_NAMES {
            assert!(
                words::CATEGORIES.iter().any(|(_, cls)| cls.contains(class)),
                "{class} is not a generated class"
            );
        }
    }

    #[test]
    fn all_named_lists_resolve_nonempty() {
        for name in [
            "categories",
            "classes",
            "colors",
            "states",
            "counties",
            "cities",
            "education",
            "marital",
            "buy_potential",
            "credit_rating",
            "genders",
            "months_low",
            "months_medium",
            "months_high",
            "sizes",
            "units",
            "containers",
            "countries",
            "ship_mode_types",
            "web_page_types",
            "zip_prefixes",
        ] {
            let l = named_list(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(!l.is_empty());
        }
        assert!(named_list("bogus").is_none());
    }
}
