//! # tpcds-obs
//!
//! Structured observability for the TPC-DS reproduction, std-only by
//! construction (the build resolves no third-party crates).
//!
//! The paper's execution rules (§5, Figure 11) define the QphDS metric
//! entirely from measured intervals; this crate makes every one of those
//! intervals — and the operator-, table- and operation-level work inside
//! them — a recorded event instead of an opaque stopwatch reading.
//!
//! Three event kinds flow through a global [`Recorder`] into pluggable
//! [`Sink`]s:
//!
//! * **spans** — named intervals with a start offset, a duration and
//!   key/value fields (`runner/query`, `maint/op`, `engine/query`, …);
//! * **counters** — named quantities (`dgen/rows`, `dgen/bytes`, …);
//! * **points** — instantaneous markers (`runner/phase.start`, …).
//!
//! Bundled sinks: a JSON-lines trace file ([`install_jsonl`], one JSON
//! object per event — the schema is documented on [`Event::to_json`]) and
//! a human-readable stderr summary ([`install_stderr_summary`]). The
//! [`report`] module parses a trace file back and renders phase timelines
//! and latency summaries; the [`chrome`] module exports the same trace as
//! a Chrome Trace Event document (one timeline track per morsel worker).
//!
//! Beyond the event stream, the deep-profiling layer adds:
//!
//! * [`hist`] — log-bucketed latency histograms with lock-free sharded
//!   recording and commutative merge;
//! * [`mem`] — a counting global-allocator wrapper (live/peak bytes) with
//!   scoped watermarks for per-operator and per-phase `mem_peak=`;
//! * [`metrics`] — a live registry of counters and histograms served as
//!   Prometheus text over a std-only HTTP endpoint. While the registry is
//!   enabled, every [`counter`] feeds it under `layer.name`, and every
//!   finished span records its duration into the `layer.name_us`
//!   histogram;
//! * [`qlog`] — a fixed-capacity concurrent ring buffer of per-query
//!   records (the backing store of the engine's `sys.query_log` virtual
//!   table), plus the thread-local query identity the server stamps
//!   before dispatching into the engine.
//!
//! ## Counter naming
//!
//! Counter and metric names follow a documented `layer.name` scheme: the
//! `layer` is the emitting crate (`storage`, `engine`, `dgen`, `maint`,
//! `runner`, `cli`) and `name` is a dot-separated path grouping related
//! metrics — `scan.rows`, `scan.bytes`, `join.build_rows`,
//! `gen.rows`. Reports aggregate by subsystem (the path's first segment),
//! so all `join.*` counters roll up together. See `docs/OBSERVABILITY.md`.
//!
//! When no sink is installed and the registry is disabled, the whole API
//! is a handful of atomic loads — instrumented code needs no feature
//! gates.

#![warn(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod json;
pub mod mem;
pub mod metrics;
pub mod ndv;
pub mod qlog;
pub mod report;

use json::Json;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// A field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Integer field.
    Int(i64),
    /// Float field.
    Float(f64),
    /// String field.
    Str(String),
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::Int(v as i64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::Int(v as i64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::Int(v as i64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Float(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn to_json(&self) -> Json {
        match self {
            FieldValue::Int(i) => Json::Int(*i),
            FieldValue::Float(f) => Json::Float(*f),
            FieldValue::Str(s) => Json::Str(s.clone()),
        }
    }
}

/// Event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A named interval (has `dur_us`).
    Span,
    /// A named quantity (has `value`).
    Counter,
    /// An instantaneous marker.
    Point,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Counter => "counter",
            EventKind::Point => "point",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the recorder epoch. For spans this is the
    /// *start* of the interval.
    pub ts_us: u64,
    /// Kind.
    pub kind: EventKind,
    /// The emitting layer (`engine`, `dgen`, `maint`, `runner`, `cli`).
    pub layer: String,
    /// Event name within the layer.
    pub name: String,
    /// Span duration in microseconds (spans only).
    pub dur_us: Option<u64>,
    /// Counter value (counters only).
    pub value: Option<f64>,
    /// Key/value fields.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Serializes the event as one JSON object — the trace JSONL schema:
    ///
    /// ```json
    /// {"ts_us":120,"kind":"span","layer":"runner","name":"query",
    ///  "dur_us":4500,"fields":{"stream":0,"query":52,"rows":100}}
    /// ```
    ///
    /// `dur_us` appears on spans, `value` on counters; `fields` is always
    /// present (possibly empty).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("ts_us".to_string(), Json::Int(self.ts_us as i64)),
            (
                "kind".to_string(),
                Json::Str(self.kind.as_str().to_string()),
            ),
            ("layer".to_string(), Json::Str(self.layer.clone())),
            ("name".to_string(), Json::Str(self.name.clone())),
        ];
        if let Some(d) = self.dur_us {
            pairs.push(("dur_us".to_string(), Json::Int(d as i64)));
        }
        if let Some(v) = self.value {
            pairs.push(("value".to_string(), Json::Float(v)));
        }
        let fields = self
            .fields
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json()))
            .collect();
        pairs.push(("fields".to_string(), Json::Obj(fields)));
        Json::Obj(pairs)
    }

    /// Parses an event back from its JSON form.
    pub fn from_json(j: &Json) -> Result<Event, String> {
        let ts_us = j
            .get("ts_us")
            .and_then(Json::as_i64)
            .ok_or("missing ts_us")? as u64;
        let kind = match j.get("kind").and_then(Json::as_str) {
            Some("span") => EventKind::Span,
            Some("counter") => EventKind::Counter,
            Some("point") => EventKind::Point,
            other => return Err(format!("bad kind {other:?}")),
        };
        let layer = j
            .get("layer")
            .and_then(Json::as_str)
            .ok_or("missing layer")?
            .to_string();
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing name")?
            .to_string();
        let dur_us = j.get("dur_us").and_then(Json::as_i64).map(|d| d as u64);
        let value = j.get("value").and_then(Json::as_f64);
        let mut fields = Vec::new();
        if let Some(Json::Obj(pairs)) = j.get("fields") {
            for (k, v) in pairs {
                let fv = match v {
                    Json::Int(i) => FieldValue::Int(*i),
                    Json::Float(f) => FieldValue::Float(*f),
                    Json::Str(s) => FieldValue::Str(s.clone()),
                    other => return Err(format!("bad field value {other:?}")),
                };
                fields.push((k.clone(), fv));
            }
        }
        Ok(Event {
            ts_us,
            kind,
            layer,
            name,
            dur_us,
            value,
            fields,
        })
    }

    /// The value of an integer field, if present.
    pub fn int_field(&self, key: &str) -> Option<i64> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                FieldValue::Int(i) => Some(*i),
                _ => None,
            })
    }

    /// The value of a string field, if present.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                FieldValue::Str(s) => Some(s.as_str()),
                _ => None,
            })
    }
}

/// A destination for recorded events.
pub trait Sink: Send {
    /// Receives one event.
    fn record(&mut self, event: &Event);
    /// Flushes buffered state (writes, summary output).
    fn flush(&mut self) {}
}

/// The global recorder: an epoch for monotonic offsets plus the installed
/// sinks. Obtain it implicitly through the free functions ([`span`],
/// [`counter`], [`point`], [`install_jsonl`], …).
pub struct Recorder {
    epoch: Instant,
    enabled: AtomicBool,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        enabled: AtomicBool::new(false),
        sinks: Mutex::new(Vec::new()),
    })
}

/// Whether any sink is installed. Instrumented code may use this to skip
/// building expensive field sets; the record functions already no-op.
pub fn is_enabled() -> bool {
    recorder().enabled.load(Ordering::Relaxed)
}

/// Microseconds since the recorder epoch.
pub fn now_us() -> u64 {
    recorder().epoch.elapsed().as_micros() as u64
}

/// Installs any sink.
pub fn add_sink(sink: Box<dyn Sink>) {
    let r = recorder();
    r.sinks
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(sink);
    r.enabled.store(true, Ordering::Relaxed);
}

/// Installs a JSONL trace sink writing to `path` (truncates).
pub fn install_jsonl(path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    add_sink(Box::new(JsonlSink {
        out: std::io::BufWriter::new(file),
    }));
    Ok(())
}

/// Installs the human-readable stderr summary sink; it prints aggregated
/// span and counter tables when [`flush`] is called.
pub fn install_stderr_summary() {
    add_sink(Box::new(StderrSummary::default()));
}

/// Installs an in-memory sink and returns its shared buffer (tests,
/// programmatic inspection).
pub fn install_memory() -> Arc<Mutex<Vec<Event>>> {
    let buf = Arc::new(Mutex::new(Vec::new()));
    add_sink(Box::new(MemorySink(buf.clone())));
    buf
}

/// Removes all sinks and disables recording (tests).
pub fn reset() {
    let r = recorder();
    r.enabled.store(false, Ordering::Relaxed);
    r.sinks
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Flushes every sink (the stderr summary prints here).
pub fn flush() {
    let r = recorder();
    for s in r
        .sinks
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter_mut()
    {
        s.flush();
    }
}

/// Records a fully formed event.
pub fn record(event: Event) {
    let r = recorder();
    if !r.enabled.load(Ordering::Relaxed) {
        return;
    }
    for s in r
        .sinks
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter_mut()
    {
        s.record(&event);
    }
}

/// Records a counter event (and, while the [`metrics`] registry is
/// enabled, accumulates it there under `layer.name`).
pub fn counter(layer: &'static str, name: &str, value: f64, fields: &[(&str, FieldValue)]) {
    if metrics::is_enabled() {
        metrics::counter_add(&format!("{layer}.{name}"), value);
    }
    if !is_enabled() {
        return;
    }
    record(Event {
        ts_us: now_us(),
        kind: EventKind::Counter,
        layer: layer.to_string(),
        name: name.to_string(),
        dur_us: None,
        value: Some(value),
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    });
}

/// Records an instantaneous point event.
pub fn point(layer: &'static str, name: &str, fields: &[(&str, FieldValue)]) {
    if !is_enabled() {
        return;
    }
    record(Event {
        ts_us: now_us(),
        kind: EventKind::Point,
        layer: layer.to_string(),
        name: name.to_string(),
        dur_us: None,
        value: None,
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    });
}

/// Starts a span; it records itself when dropped (or at [`SpanGuard::finish`]).
pub fn span(layer: &'static str, name: &str) -> SpanGuard {
    SpanGuard {
        layer,
        name: name.to_string(),
        start_us: now_us(),
        start: Instant::now(),
        fields: Vec::new(),
        armed: is_enabled(),
    }
}

/// An in-flight span. Fields added before the guard drops are attached to
/// the recorded event.
pub struct SpanGuard {
    layer: &'static str,
    name: String,
    start_us: u64,
    start: Instant,
    fields: Vec<(String, FieldValue)>,
    armed: bool,
}

impl SpanGuard {
    /// Attaches a field (builder style).
    pub fn field(mut self, key: &str, value: impl Into<FieldValue>) -> Self {
        self.add_field(key, value);
        self
    }

    /// Attaches a field.
    pub fn add_field(&mut self, key: &str, value: impl Into<FieldValue>) {
        if self.armed {
            self.fields.push((key.to_string(), value.into()));
        }
    }

    /// Time elapsed since the span started.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if metrics::is_enabled() {
            metrics::observe(
                &format!("{}.{}_us", self.layer, self.name),
                self.start.elapsed().as_micros() as u64,
            );
        }
        if !self.armed {
            return;
        }
        record(Event {
            ts_us: self.start_us,
            kind: EventKind::Span,
            layer: self.layer.to_string(),
            name: std::mem::take(&mut self.name),
            dur_us: Some(self.start.elapsed().as_micros() as u64),
            value: None,
            fields: std::mem::take(&mut self.fields),
        });
    }
}

// ---------- bundled sinks ----------

struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        // A failed trace write must not fail the benchmark; drop the line.
        let _ = writeln!(self.out, "{}", event.to_json());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

struct MemorySink(Arc<Mutex<Vec<Event>>>);

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_us: u64,
    max_us: u64,
    rows: i64,
}

/// Aggregating stderr summary: one line per distinct (layer, name) span
/// and counter, printed on flush.
#[derive(Default)]
struct StderrSummary {
    spans: std::collections::BTreeMap<(String, String), SpanAgg>,
    counters: std::collections::BTreeMap<(String, String), (u64, f64)>,
}

impl Sink for StderrSummary {
    fn record(&mut self, event: &Event) {
        match event.kind {
            EventKind::Span => {
                let agg = self
                    .spans
                    .entry((event.layer.clone(), event.name.clone()))
                    .or_default();
                agg.count += 1;
                let d = event.dur_us.unwrap_or(0);
                agg.total_us += d;
                agg.max_us = agg.max_us.max(d);
                agg.rows += event.int_field("rows").unwrap_or(0);
            }
            EventKind::Counter => {
                let (n, sum) = self
                    .counters
                    .entry((event.layer.clone(), event.name.clone()))
                    .or_insert((0, 0.0));
                *n += 1;
                *sum += event.value.unwrap_or(0.0);
            }
            EventKind::Point => {}
        }
    }

    fn flush(&mut self) {
        if self.spans.is_empty() && self.counters.is_empty() {
            return;
        }
        let mut out = String::from("── obs summary ──────────────────────────────\n");
        for ((layer, name), agg) in &self.spans {
            out.push_str(&format!(
                "{layer:>7}/{name:<18} n={:<6} total={:>10.3}ms max={:>9.3}ms rows={}\n",
                agg.count,
                agg.total_us as f64 / 1e3,
                agg.max_us as f64 / 1e3,
                agg.rows,
            ));
        }
        for ((layer, name), (n, sum)) in &self.counters {
            out.push_str(&format!("{layer:>7}/{name:<18} n={n:<6} sum={sum}\n"));
        }
        eprint!("{out}");
        self.spans.clear();
        self.counters.clear();
    }
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // The recorder is global; tests that install sinks serialize on this.
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_everything() {
        let _guard = test_lock();
        reset();
        counter("test", "c", 1.0, &[]);
        span("test", "s").finish();
        let buf = install_memory();
        point("test", "p", &[]);
        reset();
        let events = buf.lock().unwrap();
        assert_eq!(events.len(), 1, "only the event after install lands");
        assert_eq!(events[0].name, "p");
    }

    #[test]
    fn span_records_duration_and_fields() {
        let _guard = test_lock();
        reset();
        let buf = install_memory();
        {
            let mut s = span("engine", "query").field("query", 52u32);
            s.add_field("rows", 10usize);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        reset();
        let events = buf.lock().unwrap();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.kind, EventKind::Span);
        assert_eq!(e.layer, "engine");
        assert!(
            e.dur_us.unwrap() >= 1_000,
            "slept 2ms, recorded {:?}",
            e.dur_us
        );
        assert_eq!(e.int_field("query"), Some(52));
        assert_eq!(e.int_field("rows"), Some(10));
    }

    #[test]
    fn events_round_trip_through_json() {
        let e = Event {
            ts_us: 123,
            kind: EventKind::Span,
            layer: "runner".into(),
            name: "query".into(),
            dur_us: Some(4500),
            value: None,
            fields: vec![
                ("stream".into(), FieldValue::Int(0)),
                ("table".into(), FieldValue::Str("store_sales".into())),
                ("ratio".into(), FieldValue::Float(0.5)),
            ],
        };
        let back = Event::from_json(&Json::parse(&e.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let _guard = test_lock();
        reset();
        let dir = std::env::temp_dir().join("tpcds_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        install_jsonl(&path).unwrap();
        counter("dgen", "rows", 42.0, &[("table", "item".into())]);
        span("runner", "phase").field("phase", "load").finish();
        flush();
        reset();
        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<Event> = text
            .lines()
            .map(|l| Event::from_json(&Json::parse(l).unwrap()).unwrap())
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].value, Some(42.0));
        assert_eq!(events[1].str_field("phase"), Some("load"));
        std::fs::remove_file(&path).ok();
    }
}
