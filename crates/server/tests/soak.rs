//! Concurrent soak: 16 TCP clients fire seeded random template queries
//! while data maintenance commits new snapshot versions underneath them.
//! Every response is differentially checked against a serial row-path
//! oracle re-executing the same SQL at the same pinned snapshot version —
//! snapshot isolation means the answers must be byte-identical no matter
//! how the concurrent run interleaved with the writer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tpcds_dgen::Generator;
use tpcds_engine::{ColumnarMode, Database, ExecOptions};
use tpcds_qgen::Workload;
use tpcds_server::{Client, Server, ServerConfig};
use tpcds_types::Value;

const CLIENTS: usize = 16;
const QUERIES_PER_CLIENT: usize = 5;
const DM_SEQUENCES: u32 = 2; // 12 snapshot commits each
const SEED: u64 = tpcds_types::rng::DEFAULT_SEED;

/// One checked response: what the client asked, what it got, and the
/// version the server says it executed against.
struct Observation {
    sql: String,
    version: u64,
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

/// Canonical byte form of a result set: rows rendered to their flat text
/// form and sorted, so the concurrent (possibly columnar, multi-threaded)
/// path and the serial row-path oracle compare exactly even where SQL
/// leaves row order unspecified.
fn canonical(columns: &[String], rows: &[Vec<Value>]) -> String {
    let mut lines: Vec<String> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| v.to_flat())
                .collect::<Vec<_>>()
                .join("\x1f")
        })
        .collect();
    lines.sort();
    format!("{}\n{}", columns.join("\x1f"), lines.join("\n"))
}

#[test]
fn sixteen_clients_survive_concurrent_maintenance_and_match_the_oracle() {
    let sf = 0.005;
    let generator = Generator::new(sf);
    let db = Arc::new(Database::new());
    tpcds_maint::load_initial_population(&db, &generator).expect("load");
    // Keep every version committed during the run alive for the oracle:
    // 2 DM sequences = 24 commits, plus slack.
    db.set_snapshot_retention(64);

    let server = Server::start(
        Arc::clone(&db),
        ServerConfig {
            // Fewer permits than clients so admission queueing is real.
            max_concurrent_queries: 8,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    let workload = Workload::tpcds().expect("workload");
    let dm_done = Arc::new(AtomicBool::new(false));

    // Writer: data maintenance commits versions while the clients read.
    let dm = {
        let (db, dm_done) = (Arc::clone(&db), Arc::clone(&dm_done));
        let generator = Generator::new(sf);
        std::thread::spawn(move || {
            let mut committed = Vec::new();
            for seq in 0..DM_SEQUENCES {
                let report = tpcds_maint::run_maintenance(&db, &generator, seq).expect("dm");
                committed.push(report.ops.len());
            }
            dm_done.store(true, Ordering::SeqCst);
            committed
        })
    };

    // Readers: each client cycles its own seeded template slice until the
    // writer has finished, so the query window fully covers the commits.
    let readers: Vec<_> = (0..CLIENTS)
        .map(|stream| {
            let workload = &workload;
            let dm_done = Arc::clone(&dm_done);
            std::thread::spawn({
                let queries: Vec<(u32, String)> = workload
                    .stream_order(SEED, stream as u64)
                    .into_iter()
                    .take(QUERIES_PER_CLIENT)
                    .map(|id| {
                        (
                            id,
                            workload
                                .instantiate(id, SEED, stream as u64)
                                .expect("instantiate"),
                        )
                    })
                    .collect();
                move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut seen = Vec::new();
                    loop {
                        let finished = dm_done.load(Ordering::SeqCst);
                        for (id, sql) in &queries {
                            let r = c
                                .query(sql)
                                .unwrap_or_else(|e| panic!("q{id} stream {stream}: {e}"));
                            seen.push(Observation {
                                sql: sql.clone(),
                                version: r.version,
                                columns: r.columns,
                                rows: r.rows,
                            });
                        }
                        if finished {
                            return seen;
                        }
                    }
                }
            })
        })
        .collect();

    let observations: Vec<Observation> = readers
        .into_iter()
        .flat_map(|h| h.join().expect("reader"))
        .collect();
    let dm_ops: Vec<usize> = dm.join().expect("dm thread");
    assert_eq!(dm_ops, vec![12; DM_SEQUENCES as usize]);
    server.shutdown();

    // The writer really did publish versions mid-run: the clients'
    // responses span several distinct snapshot versions.
    let mut versions: Vec<u64> = observations.iter().map(|o| o.version).collect();
    versions.sort_unstable();
    versions.dedup();
    assert!(
        versions.len() >= 3,
        "expected >= 3 distinct snapshot versions mid-run, saw {versions:?}"
    );
    assert!(
        observations.len() >= CLIENTS * QUERIES_PER_CLIENT,
        "only {} observations",
        observations.len()
    );

    // Differential check: re-run every observed query serially on the row
    // path, pinned to the exact version the server reported, and demand
    // byte-identical results.
    let oracle_opts = ExecOptions {
        columnar: ColumnarMode::Off,
        threads: Some(1),
    };
    for (i, o) in observations.iter().enumerate() {
        let snap = db
            .snapshot_at(o.version)
            .unwrap_or_else(|| panic!("version {} fell out of retention", o.version));
        let expected = tpcds_engine::query_pinned(&db, &snap, &o.sql, oracle_opts)
            .unwrap_or_else(|e| panic!("oracle failed for {}: {e}", o.sql));
        assert_eq!(
            canonical(&o.columns, &o.rows),
            canonical(&expected.columns, &expected.rows),
            "divergence at observation {i} (v{}):\n{}",
            o.version,
            o.sql
        );
    }

    // Sessions fully drained after shutdown.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.sessions_active() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.sessions_active(), 0);
}
