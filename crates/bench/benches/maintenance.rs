//! Criterion microbenchmarks of the data maintenance operations
//! (Figures 8-10): dimension updates, fact inserts with surrogate
//! resolution, and the clustered delete.

use criterion::{criterion_group, criterion_main, Criterion};
use tpcds_core::{maint, TpcDs};

fn bench_maintenance(c: &mut Criterion) {
    c.bench_function("maint/fig8_non_history_update", |b| {
        b.iter_with_setup(
            || TpcDs::builder().scale_factor(0.01).build().expect("load"),
            |t| {
                maint::update_non_history_dimension(t.database(), t.generator(), "customer", 0)
                    .expect("fig8")
            },
        )
    });
    c.bench_function("maint/fig9_history_update", |b| {
        b.iter_with_setup(
            || TpcDs::builder().scale_factor(0.01).build().expect("load"),
            |t| {
                let when = maint::refresh_date(t.generator(), 0);
                maint::update_history_dimension(t.database(), t.generator(), "item", 0, when)
                    .expect("fig9")
            },
        )
    });
    c.bench_function("maint/fig10_fact_insert", |b| {
        b.iter_with_setup(
            || TpcDs::builder().scale_factor(0.01).build().expect("load"),
            |t| {
                maint::insert_channel(
                    t.database(),
                    t.generator(),
                    "insert_store_channel",
                    &["store_sales", "store_returns"],
                    0,
                )
                .expect("fig10")
            },
        )
    });
    c.bench_function("maint/clustered_delete", |b| {
        b.iter_with_setup(
            || TpcDs::builder().scale_factor(0.01).build().expect("load"),
            |t| maint::delete_fact_range(t.database(), t.generator(), 0).expect("delete"),
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_maintenance
}
criterion_main!(benches);
