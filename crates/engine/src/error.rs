//! Engine error type.

use std::fmt;

/// Any failure raised while parsing, planning or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Tokenizer failure with position.
    Lex(String),
    /// Grammar failure.
    Parse(String),
    /// Name resolution / type failure.
    Bind(String),
    /// Runtime failure (overflow, bad cast, ...).
    Exec(String),
    /// Catalog failure (unknown / duplicate table, arity mismatch, ...).
    Catalog(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Lex(m) => write!(f, "lex error: {m}"),
            EngineError::Parse(m) => write!(f, "parse error: {m}"),
            EngineError::Bind(m) => write!(f, "bind error: {m}"),
            EngineError::Exec(m) => write!(f, "execution error: {m}"),
            EngineError::Catalog(m) => write!(f, "catalog error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Shorthand constructors.
impl EngineError {
    /// Bind-time error.
    pub fn bind(m: impl Into<String>) -> Self {
        EngineError::Bind(m.into())
    }
    /// Execution-time error.
    pub fn exec(m: impl Into<String>) -> Self {
        EngineError::Exec(m.into())
    }
    /// Parse-time error.
    pub fn parse(m: impl Into<String>) -> Self {
        EngineError::Parse(m.into())
    }
}
