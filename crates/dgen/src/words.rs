//! Embedded word lists — the "real world based data domains" of paper §3.2.
//!
//! dsdgen ships these as `.dst` distribution files; we embed equivalents.
//! First names carry census-style frequency weights ("frequent names" skew);
//! the remaining lists are drawn uniformly or with simple weights.

/// (name, relative frequency) — approximates US census first-name skew.
pub const FIRST_NAMES: &[(&str, f64)] = &[
    ("James", 3.3), ("John", 3.3), ("Robert", 3.1), ("Michael", 2.6), ("William", 2.5),
    ("David", 2.4), ("Richard", 1.7), ("Charles", 1.5), ("Joseph", 1.4), ("Thomas", 1.4),
    ("Mary", 2.6), ("Patricia", 1.1), ("Linda", 1.0), ("Barbara", 1.0), ("Elizabeth", 0.9),
    ("Jennifer", 0.9), ("Maria", 0.8), ("Susan", 0.8), ("Margaret", 0.8), ("Dorothy", 0.7),
    ("Christopher", 1.3), ("Daniel", 1.3), ("Paul", 1.2), ("Mark", 1.2), ("Donald", 1.1),
    ("George", 1.1), ("Kenneth", 1.0), ("Steven", 1.0), ("Edward", 1.0), ("Brian", 0.9),
    ("Ronald", 0.9), ("Anthony", 0.9), ("Kevin", 0.8), ("Jason", 0.8), ("Matthew", 0.8),
    ("Gary", 0.7), ("Timothy", 0.7), ("Jose", 0.7), ("Larry", 0.7), ("Jeffrey", 0.7),
    ("Lisa", 0.7), ("Nancy", 0.7), ("Karen", 0.6), ("Betty", 0.6), ("Helen", 0.6),
    ("Sandra", 0.6), ("Donna", 0.6), ("Carol", 0.6), ("Ruth", 0.5), ("Sharon", 0.5),
    ("Michelle", 0.5), ("Laura", 0.5), ("Sarah", 0.5), ("Kimberly", 0.5), ("Deborah", 0.5),
    ("Jessica", 0.5), ("Shirley", 0.5), ("Cynthia", 0.4), ("Angela", 0.4), ("Melissa", 0.4),
    ("Frank", 0.6), ("Scott", 0.6), ("Eric", 0.6), ("Stephen", 0.6), ("Andrew", 0.5),
    ("Raymond", 0.5), ("Gregory", 0.5), ("Joshua", 0.5), ("Jerry", 0.5), ("Dennis", 0.5),
    ("Walter", 0.4), ("Patrick", 0.4), ("Peter", 0.4), ("Harold", 0.4), ("Douglas", 0.4),
    ("Henry", 0.4), ("Carl", 0.4), ("Arthur", 0.4), ("Ryan", 0.4), ("Roger", 0.4),
    ("Brenda", 0.4), ("Amy", 0.4), ("Anna", 0.4), ("Rebecca", 0.4), ("Virginia", 0.4),
    ("Kathleen", 0.4), ("Pamela", 0.4), ("Martha", 0.4), ("Debra", 0.4), ("Amanda", 0.4),
    ("Stephanie", 0.3), ("Carolyn", 0.3), ("Christine", 0.3), ("Marie", 0.3), ("Janet", 0.3),
    ("Catherine", 0.3), ("Frances", 0.3), ("Ann", 0.3), ("Joyce", 0.3), ("Diane", 0.3),
    ("Joe", 0.3), ("Juan", 0.3), ("Jack", 0.3), ("Albert", 0.3), ("Jonathan", 0.3),
    ("Justin", 0.3), ("Terry", 0.3), ("Gerald", 0.3), ("Keith", 0.3), ("Samuel", 0.3),
    ("Willie", 0.3), ("Ralph", 0.3), ("Lawrence", 0.3), ("Nicholas", 0.3), ("Roy", 0.3),
    ("Benjamin", 0.3), ("Bruce", 0.3), ("Brandon", 0.3), ("Adam", 0.3), ("Harry", 0.3),
    ("Fred", 0.3), ("Wayne", 0.3), ("Billy", 0.3), ("Steve", 0.3), ("Louis", 0.3),
    ("Jeremy", 0.3), ("Aaron", 0.3), ("Randy", 0.3), ("Howard", 0.3), ("Eugene", 0.3),
];

/// Common US surnames (uniform draw).
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Williams", "Jones", "Brown", "Davis", "Miller", "Wilson",
    "Moore", "Taylor", "Anderson", "Thomas", "Jackson", "White", "Harris", "Martin",
    "Thompson", "Garcia", "Martinez", "Robinson", "Clark", "Rodriguez", "Lewis", "Lee",
    "Walker", "Hall", "Allen", "Young", "Hernandez", "King", "Wright", "Lopez",
    "Hill", "Scott", "Green", "Adams", "Baker", "Gonzalez", "Nelson", "Carter",
    "Mitchell", "Perez", "Roberts", "Turner", "Phillips", "Campbell", "Parker", "Evans",
    "Edwards", "Collins", "Stewart", "Sanchez", "Morris", "Rogers", "Reed", "Cook",
    "Morgan", "Bell", "Murphy", "Bailey", "Rivera", "Cooper", "Richardson", "Cox",
    "Howard", "Ward", "Torres", "Peterson", "Gray", "Ramirez", "James", "Watson",
    "Brooks", "Kelly", "Sanders", "Price", "Bennett", "Wood", "Barnes", "Ross",
    "Henderson", "Coleman", "Jenkins", "Perry", "Powell", "Long", "Patterson", "Hughes",
    "Flores", "Washington", "Butler", "Simmons", "Foster", "Gonzales", "Bryant", "Alexander",
    "Russell", "Griffin", "Diaz", "Hayes", "Myers", "Ford", "Hamilton", "Graham",
    "Sullivan", "Wallace", "Woods", "Cole", "West", "Jordan", "Owens", "Reynolds",
    "Fisher", "Ellis", "Harrison", "Gibson", "Mcdonald", "Cruz", "Marshall", "Ortiz",
    "Gomez", "Murray", "Freeman", "Wells", "Webb", "Simpson", "Stevens", "Tucker",
];

/// Salutations with gender hints (M, F, or either).
pub const SALUTATIONS: &[(&str, char)] = &[
    ("Mr.", 'M'), ("Sir", 'M'),
    ("Mrs.", 'F'), ("Ms.", 'F'), ("Miss", 'F'),
    ("Dr.", 'B'),
];

/// US cities (a subset of dsdgen's list; drawn uniformly).
pub const CITIES: &[&str] = &[
    "Fairview", "Midway", "Oak Grove", "Five Points", "Oakland", "Riverside", "Bethel",
    "Pleasant Hill", "Centerville", "Liberty", "Salem", "Mount Pleasant", "Georgetown",
    "Union", "Greenville", "Franklin", "Marion", "Springfield", "Clinton", "Jackson",
    "Lakeside", "Glendale", "Farmington", "Shady Grove", "Sunnyside", "Mount Zion",
    "Antioch", "Friendship", "Concord", "Highland", "Lakeview", "Pine Grove", "Hamilton",
    "Red Hill", "Summit", "Bridgeport", "Lincoln", "Arlington", "Ashland", "Belmont",
    "Buena Vista", "Cedar Grove", "Deerfield", "Edgewood", "Enterprise", "Florence",
    "Glenwood", "Greenfield", "Harmony", "Hillcrest", "Hopewell", "Kingston", "Lebanon",
    "Macedonia", "Maple Grove", "Newport", "Newtown", "Plainview", "Pleasant Valley",
    "Providence", "Riverdale", "Stringtown", "Walnut Grove", "Waterloo", "Woodville",
];

/// US counties — dsdgen's county domain is about 1800 entries and is scaled
/// down for small tables (paper §3.1). We embed a sample; the generator
/// derives additional synthetic counties when a wider domain is needed.
pub const COUNTIES: &[&str] = &[
    "Williamson County", "Walker County", "Ziebach County", "Barrow County",
    "Daviess County", "Franklin Parish", "Luce County", "Richland County",
    "Bronx County", "Maverick County", "Mesa County", "Raleigh County",
    "Oglethorpe County", "Mobile County", "Huron County", "Kittitas County",
    "San Miguel County", "Fairfield County", "Cherokee County", "Jackson County",
    "Marshall County", "Lincoln County", "Madison County", "Washington County",
    "Union County", "Clay County", "Montgomery County", "Greene County",
    "Wayne County", "Monroe County", "Perry County", "Warren County",
    "Lake County", "Brown County", "Carroll County", "Douglas County",
    "Grant County", "Henry County", "Johnson County", "Lawrence County",
    "Lee County", "Logan County", "Morgan County", "Orange County",
    "Polk County", "Pulaski County", "Scott County", "Shelby County",
    "Calhoun County", "Crawford County", "Fayette County", "Hamilton County",
    "Hancock County", "Hardin County", "Knox County", "Marion County",
    "Mercer County", "Owen County", "Pierce County", "Putnam County",
];

/// US state abbreviations.
pub const STATES: &[&str] = &[
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN",
    "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV",
    "NH", "NJ", "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN",
    "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY",
];

/// Street name stems.
pub const STREET_NAMES: &[&str] = &[
    "Main", "Oak", "Elm", "Park", "Maple", "Washington", "Lake", "Hill", "Walnut",
    "Spring", "North", "Ridge", "Lincoln", "Church", "Willow", "Mill", "Sunset",
    "Railroad", "Jackson", "River", "Highland", "Johnson", "Dogwood", "Chestnut",
    "Spruce", "Wilson", "Meadow", "Forest", "Second", "Third", "Fourth", "Fifth",
    "Sixth", "Seventh", "Eighth", "Ninth", "Tenth", "Cedar", "Pine", "Poplar",
    "Adams", "Franklin", "Green", "Valley", "College", "Broadway", "Locust", "Smith",
    "Davis", "Lakeview", "Birch", "Hickory", "View", "Woodland", "Center", "Laurel",
];

/// Street types.
pub const STREET_TYPES: &[&str] = &[
    "Street", "Avenue", "Boulevard", "Circle", "Court", "Drive", "Lane", "Parkway",
    "Pkwy", "Road", "Way", "Blvd", "Ave", "Dr", "Ct", "RD", "ST", "Ln", "Cir", "Wy",
];

/// Countries for `c_birth_country` (uniform).
pub const COUNTRIES: &[&str] = &[
    "UNITED STATES", "CANADA", "MEXICO", "BRAZIL", "GERMANY", "FRANCE", "ITALY",
    "UNITED KINGDOM", "SPAIN", "PORTUGAL", "NETHERLANDS", "BELGIUM", "SWITZERLAND",
    "AUSTRIA", "POLAND", "RUSSIA", "CHINA", "JAPAN", "INDIA", "AUSTRALIA",
    "NEW ZEALAND", "ARGENTINA", "CHILE", "PERU", "COLOMBIA", "VENEZUELA", "EGYPT",
    "NIGERIA", "KENYA", "SOUTH AFRICA", "MOROCCO", "TURKEY", "GREECE", "SWEDEN",
    "NORWAY", "DENMARK", "FINLAND", "IRELAND", "ISRAEL", "SAUDI ARABIA", "THAILAND",
    "VIETNAM", "INDONESIA", "MALAYSIA", "PHILIPPINES", "SOUTH KOREA", "PAKISTAN",
    "BANGLADESH", "UKRAINE", "ROMANIA",
];

/// Item colors (subset of dsdgen's 92-entry list).
pub const COLORS: &[&str] = &[
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched",
    "blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate",
    "coral", "cornflower", "cornsilk", "cream", "cyan", "dark", "deep", "dim", "dodger",
    "drab", "firebrick", "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
    "green", "grey", "honeydew", "hot", "indian", "ivory", "khaki", "lace", "lavender",
    "lawn", "lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
    "pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff", "purple", "red",
    "rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell", "sienna", "sky",
    "slate", "smoke", "snow", "spring", "steel", "tan", "thistle", "tomato", "turquoise",
    "violet", "wheat", "white", "yellow",
];

/// Item size domain.
pub const SIZES: &[&str] = &["small", "medium", "large", "extra large", "economy", "petite", "N/A"];

/// Item units domain.
pub const UNITS: &[&str] = &[
    "Unknown", "Each", "Case", "Pallet", "Gross", "Dozen", "Box", "Bundle", "Tsp",
    "Oz", "Lb", "Ton", "Gram", "Dram", "Carton", "Cup", "Pound", "Bunch", "N/A",
];

/// Item container domain.
pub const CONTAINERS: &[&str] = &["Unknown", "LARGE BOX", "SMALL BOX", "PALLET", "CASE", "N/A"];

/// The 10 TPC-DS item categories with their classes (single-inheritance
/// hierarchy of Figure 5: each class belongs to exactly one category).
pub const CATEGORIES: &[(&str, &[&str])] = &[
    ("Books", &["arts", "business", "computers", "cooking", "entertainments", "fiction",
        "history", "home repair", "mystery", "parenting", "reference", "romance",
        "science", "self-help", "sports", "travel"]),
    ("Children", &["infants", "newborn", "school-uniforms", "toddlers"]),
    ("Electronics", &["audio", "automotive", "camcorders", "cameras", "disk drives",
        "dvd/vcr players", "karoke", "memory", "monitors", "musical", "personal",
        "portable", "scanners", "stereo", "televisions", "wireless"]),
    ("Home", &["accent", "bathroom", "bedding", "blinds/shades", "curtains/drapes",
        "decor", "flatware", "furniture", "glassware", "kids", "lighting",
        "mattresses", "paint", "rugs", "tables", "wallpaper"]),
    ("Jewelry", &["birdal", "bracelets", "consignment", "costume", "custom", "diamonds",
        "earings", "estate", "gold", "jewelry boxes", "loose stones", "mens watch",
        "pendants", "rings", "semi-precious", "womens watch"]),
    ("Men", &["accessories", "pants", "shirts", "sports-apparel"]),
    ("Music", &["classical", "country", "pop", "rock"]),
    ("Shoes", &["athletic", "kids", "mens", "womens"]),
    ("Sports", &["archery", "athletic shoes", "baseball", "basketball", "camping",
        "fishing", "fitness", "football", "golf", "guns", "hockey", "optics",
        "outdoor", "pools", "sailing", "tennis"]),
    ("Women", &["dresses", "fragrances", "maternity", "swimwear"]),
];

/// Corporation-style syllables used to synthesize brand and manufacturer
/// names ("scholaramalgamalg #14" in dsdgen).
pub const CORP_SYLLABLES: &[&str] = &[
    "amalg", "importo", "edu pack", "exporti", "scholar", "corp", "brand", "univ",
    "nameless", "maxi",
];

/// Return reasons (dsdgen's reason descriptions, sampled).
pub const RETURN_REASONS: &[&str] = &[
    "Package was damaged", "Stopped working", "Did not fit", "Found a better price in a store",
    "Not the product that was ordred", "Parts missing", "Does not work with a product that I have",
    "Gift exchange", "Did not like the color", "Did not like the model", "Did not like the make",
    "Did not like the warranty", "No service location in my area", "Unauthorized purchase",
    "Duplicate purchase", "Lost my job", "Found a better extended warranty",
    "Wrong size", "Changed my mind", "Arrived too late", "Ordered twice by mistake",
    "Quality not as expected", "Better price online", "Item was recalled",
    "Allergic reaction", "Did not like the fabric", "Packaging was open",
    "Missing instructions", "Incompatible accessory", "Too heavy",
    "Too difficult to assemble", "Defective on arrival", "Expired product",
    "Wrong color shipped", "Wrong model shipped", "Late delivery", "Found cheaper elsewhere",
    "No longer needed", "Warranty concerns", "Product review was misleading",
    "Safety concerns", "Shipping box damaged", "Could not install", "Poor performance",
    "Battery life too short", "Screen was scratched", "Fabric tore", "Seams failed",
    "Zipper broke", "Buttons missing", "Stitching came apart", "Faded after wash",
    "Shrunk after wash", "Smelled odd", "Did not match description",
];

/// Ship-mode types and carriers.
pub const SHIP_MODE_TYPES: &[&str] = &["EXPRESS", "NEXT DAY", "OVERNIGHT", "REGULAR", "TWO DAY"];
/// Carriers for [`SHIP_MODE_TYPES`].
pub const SHIP_MODE_CARRIERS: &[&str] = &[
    "AIRBORNE", "ALLIANCE", "BARIAN", "BOXBUNDLES", "CARGO", "DHL", "DIAMOND", "FEDEX",
    "GERMA", "GREAT EASTERN", "HARMSTORF", "LATVIAN", "MSC", "ORIENTAL", "PRIVATECARRIER",
    "RUPEKSA", "TBS", "UPS", "USPS", "ZHOU", "ZOUROS",
];

/// `hd_buy_potential` domain.
pub const BUY_POTENTIALS: &[&str] =
    &[">10000", "5001-10000", "1001-5000", "501-1000", "0-500", "Unknown"];

/// `cd_education_status` domain.
pub const EDUCATION_STATUSES: &[&str] = &[
    "Primary", "Secondary", "College", "2 yr Degree", "4 yr Degree", "Advanced Degree",
    "Unknown",
];

/// `cd_credit_rating` domain.
pub const CREDIT_RATINGS: &[&str] = &["Good", "High Risk", "Low Risk", "Unknown"];

/// `cd_marital_status` domain.
pub const MARITAL_STATUSES: &[&str] = &["M", "S", "D", "W", "U"];

/// `p_purpose` domain for promotions.
pub const PROMO_PURPOSES: &[&str] = &["Unknown", "ad", "birthday", "anniversary", "holiday"];

/// Department names for catalog pages.
pub const DEPARTMENTS: &[&str] = &["DEPARTMENT"];

/// Web page types.
pub const WEB_PAGE_TYPES: &[&str] =
    &["ad", "dynamic", "feedback", "general", "order", "protected", "welcome"];

/// Nouns used to synthesize item descriptions and market descriptions.
pub const DESC_WORDS: &[&str] = &[
    "considerations", "systems", "engineers", "things", "processes", "values", "figures",
    "areas", "models", "sources", "activities", "conditions", "examples", "problems",
    "services", "methods", "workers", "leaders", "members", "children", "students",
    "managers", "owners", "years", "weeks", "hours", "minutes", "words", "books",
    "rates", "prices", "costs", "goods", "sales", "plans", "rules", "roles", "ideas",
    "images", "trees", "rivers", "mountains", "markets", "futures", "options", "shares",
    "regions", "nations", "cities", "towns", "homes", "rooms", "tables", "chairs",
];

/// Adjectives for synthesized text.
pub const DESC_ADJECTIVES: &[&str] = &[
    "sorry", "large", "small", "high", "low", "early", "late", "young", "old", "major",
    "minor", "good", "great", "new", "important", "different", "social", "national",
    "available", "difficult", "necessary", "similar", "actual", "general", "special",
    "recent", "quiet", "bright", "simple", "sharp", "broad", "flat", "deep", "warm",
];
