//! End-to-end tests of the `tpcds` command-line toolkit.

use std::process::Command;

fn tpcds() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tpcds"))
}

#[test]
fn schema_stats_match_paper() {
    let out = tpcds().args(["schema", "--stats"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fact tables       7"), "{text}");
    assert!(text.contains("dimension tables  17"));
    assert!(text.contains("foreign keys      104"));
}

#[test]
fn schema_dot_renders_graph() {
    let out = tpcds().args(["schema", "--dot"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("digraph tpcds"));
    assert!(text.contains("store_sales ->"));
}

#[test]
fn dsqgen_prints_one_query() {
    let out = tpcds()
        .args(["dsqgen", "--query", "52", "--streams", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("-- query 52, stream 0"));
    assert!(text.contains("-- query 52, stream 1"));
    assert!(text.to_lowercase().contains("ss_ext_sales_price"));
}

#[test]
fn dsdgen_writes_flat_files() {
    let dir = std::env::temp_dir().join(format!("tpcds_cli_{}", std::process::id()));
    let out = tpcds()
        .args([
            "dsdgen",
            "--scale",
            "0.005",
            "--table",
            "income_band",
            "--dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let data = std::fs::read_to_string(dir.join("income_band.dat")).unwrap();
    assert_eq!(data.lines().count(), 20);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_by_id_executes() {
    let out = tpcds()
        .args(["query", "--scale", "0.005", "--id", "96"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rows in"), "{text}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = tpcds().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn trace_export_chrome_gives_worker_tracks() {
    let dir = std::env::temp_dir().join(format!("tpcds_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("run.jsonl");
    let chrome = dir.join("chrome.json");

    // A traced query (forced columnar, several threads) records
    // worker-id'd spans for the morsel workers.
    let out = tpcds()
        .env("TPCDS_COLUMNAR", "force")
        .args([
            "query",
            "--scale",
            "0.01",
            "--id",
            "96",
            "--trace",
            jsonl.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = tpcds()
        .args([
            "trace",
            "export",
            "--chrome",
            chrome.to_str().unwrap(),
            jsonl.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&chrome).unwrap();
    assert!(doc.contains("\"traceEvents\""), "{doc}");
    assert!(doc.contains("\"ph\":\"X\""), "missing complete events");
    // One named track per morsel worker.
    assert!(doc.contains("\"worker 0\""), "missing worker track");
    assert!(doc.contains("thread_name"), "missing track metadata");

    // The same trace renders as a report with the layer.name counters.
    let out = tpcds()
        .args(["report", jsonl.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("storage/scan.rows") || text.contains("storage/join.rows"),
        "{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_export_requires_arguments() {
    let out = tpcds().args(["trace"]).output().unwrap();
    assert!(!out.status.success());
    let out = tpcds().args(["trace", "export"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn explain_analyze_reports_memory() {
    let out = tpcds()
        .args(["explain", "--scale", "0.01", "--id", "96", "--analyze"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // The tpcds binary installs the counting allocator, so the analyzed
    // plan attributes peak memory to operators.
    assert!(text.contains("mem_peak="), "{text}");
}
