//! Partitioned hash-join benchmark: the single-threaded row-store
//! `hash_join` vs the morsel-driven columnar join, on the SF 0.01
//! store_sales ⋈ date_dim microbench.
//!
//! Writes `BENCH_3.json` (override with `--out PATH`):
//!
//! ```json
//! {"scale_factor": .., "threads": .., "build": {..rows/s..},
//!  "join": {..rows/s..}, "join_agg": {..rows/s..}}
//! ```
//!
//! Throughput is probe-side rows per second (the fact table drives the
//! work); `build` isolates the partitioned build phase with a probe
//! predicate that rejects every fact row. The process exits non-zero if
//! the two paths disagree on any answer, or if the supposedly-columnar
//! queries fall back to the row path — a benchmark of the wrong code
//! path is worse than no benchmark.

use std::time::Instant;
use tpcds_core::engine::{self, ColumnarMode, ExecOptions};
use tpcds_core::obs::json::Json;
use tpcds_core::runner::fingerprint;
use tpcds_core::TpcDs;

/// Pure join: every matching (fact, dimension) pair is materialized.
const JOIN_SQL: &str = "select ss_item_sk, ss_ticket_number, d_year \
     from store_sales, date_dim where ss_sold_date_sk = d_date_sk and ss_quantity > 10";
/// Fused aggregate-over-join: no join materialization on the columnar path.
const JOIN_AGG_SQL: &str = "select d_year, count(*), sum(ss_ext_sales_price) \
     from store_sales, date_dim where ss_sold_date_sk = d_date_sk group by d_year";
/// Build-dominated: the probe predicate rejects every fact row, so the
/// partitioned build of date_dim is the bulk of the work.
const BUILD_SQL: &str = "select d_year from store_sales, date_dim \
     where ss_sold_date_sk = d_date_sk and ss_sold_date_sk < 0";

fn opts(columnar: ColumnarMode, threads: usize) -> ExecOptions {
    ExecOptions {
        columnar,
        threads: Some(threads),
    }
}

/// Median wall-clock of `iters` runs, in seconds.
fn time_query(db: &tpcds_core::Database, sql: &str, o: ExecOptions, iters: usize) -> f64 {
    let _ = engine::query_with(db, sql, o).expect("warmup"); // warmup
    let mut secs: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            let r = engine::query_with(db, sql, o).expect("bench query");
            std::hint::black_box(r.rows.len());
            t.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(|a, b| a.total_cmp(b));
    secs[secs.len() / 2]
}

fn rate_obj(
    name: &str,
    db: &tpcds_core::Database,
    sql: &str,
    basis_rows: f64,
    threads: usize,
) -> (String, Json, f64) {
    let iters = 5;
    let serial = time_query(db, sql, opts(ColumnarMode::Off, 1), iters);
    let col1 = time_query(db, sql, opts(ColumnarMode::Force, 1), iters);
    let coln = time_query(db, sql, opts(ColumnarMode::Force, threads), iters);
    let rps = |s: f64| basis_rows / s.max(1e-9);
    let speedup = serial / coln.max(1e-9);
    println!(
        "{name:<9} row-serial {:>12.0} rows/s | columnar x1 {:>12.0} rows/s | columnar x{threads} {:>12.0} rows/s | speedup {speedup:.2}x",
        rps(serial),
        rps(col1),
        rps(coln),
    );
    (
        name.to_string(),
        Json::Obj(vec![
            ("serial_row_rows_per_s".into(), Json::Float(rps(serial))),
            ("columnar_1t_rows_per_s".into(), Json::Float(rps(col1))),
            ("columnar_nt_rows_per_s".into(), Json::Float(rps(coln))),
            ("speedup_nt_vs_row".into(), Json::Float(speedup)),
        ]),
        speedup,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let sf: f64 = flag("--scale")
        .map(|v| v.parse().expect("bad --scale"))
        .unwrap_or(0.01);
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_3.json".to_string());
    let threads = tpcds_core::storage::effective_threads();

    eprintln!("loading TPC-DS at SF {sf} ({threads} morsel workers)...");
    let tpcds = TpcDs::builder()
        .scale_factor(sf)
        .reporting_aux(true)
        .build()
        .expect("load");
    let db = tpcds.database();
    let fact_rows = db.row_count("store_sales") as f64;
    let dim_rows = db.row_count("date_dim") as f64;

    // ---- Guard 1: the benched queries must route through the columnar
    // join under Force, and agree with the row path. ----
    let mut broken = false;
    for (name, sql) in [
        ("join", JOIN_SQL),
        ("join_agg", JOIN_AGG_SQL),
        ("build", BUILD_SQL),
    ] {
        let analyzed =
            engine::query_analyze_with(db, sql, opts(ColumnarMode::Force, threads)).expect(name);
        if !analyzed.plan_text.contains("build_rows=") {
            eprintln!("{name}: fell back to the row path:\n{}", analyzed.plan_text);
            broken = true;
        }
        let row = engine::query_with(db, sql, opts(ColumnarMode::Off, 1)).expect(name);
        if fingerprint(&row) != fingerprint(&analyzed.result) {
            eprintln!("{name}: columnar answer diverges from row path");
            broken = true;
        }
    }

    // ---- Throughput ----
    let build = rate_obj("build", db, BUILD_SQL, dim_rows, threads);
    let join = rate_obj("join", db, JOIN_SQL, fact_rows, threads);
    let join_agg = rate_obj("join_agg", db, JOIN_AGG_SQL, fact_rows, threads);

    let report = Json::Obj(vec![
        ("scale_factor".into(), Json::Float(sf)),
        ("threads".into(), Json::Int(threads as i64)),
        ("store_sales_rows".into(), Json::Int(fact_rows as i64)),
        ("date_dim_rows".into(), Json::Int(dim_rows as i64)),
        ("build".into(), build.1),
        ("join".into(), join.1),
        ("join_agg".into(), join_agg.1),
    ]);
    std::fs::write(&out_path, format!("{report}\n")).expect("write report");
    println!("wrote {out_path}");
    if broken {
        std::process::exit(1);
    }
}
