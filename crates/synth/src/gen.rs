//! The rule-based query synthesizer.
//!
//! A [`Synthesizer`] is built once from a loaded database: it captures
//! the TPC-DS schema's FK graph plus a frozen copy of every table's
//! [`ColumnStats`], then turns `(seed, qid)` coordinates into
//! [`QuerySpec`]s deterministically — the same counter-based RNG
//! discipline the data generator uses, so query `qid` of a stream is the
//! same SQL on every machine and every rerun regardless of thread
//! interleaving.
//!
//! Joins are walked along declared FK edges with tunable depth;
//! predicate literals come from the column histograms, so a requested
//! selectivity (50% / 20% / 5% / 1%) lands near its target instead of
//! degenerating to always-empty or always-full scans. Four adversarial
//! classes deliberately break the statistics' assumptions: provably
//! empty predicates, `NULLIF`-poisoned join keys, modulo-collapsed skew
//! joins, and LIMITs pinned to the 64k segment boundary.

use std::collections::BTreeMap;
use std::sync::Arc;

use tpcds_engine::Database;
use tpcds_schema::{Column, ColumnType, Schema, TableDef, TableKind};
use tpcds_storage::stats::{ColumnStats, TableStats};
use tpcds_types::rng::ColumnRng;
use tpcds_types::{Date, Value};

use crate::spec::{sql_literal, Item, JoinEdge, OnMode, QuerySpec, ShapeClass};

/// Logical RNG stream id for query synthesis (distinct from every table
/// stream, which live at `(idx + 1) << 16`).
pub const SYNTH_STREAM: u64 = 0x5EED_0008;

/// Tunables for the synthesizer. All defaults are what `tpcds-bench
/// synth` and CI run with.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// RNG seed; `(seed, qid)` fully determines a query.
    pub seed: u64,
    /// Maximum FK-join depth for walked joins.
    pub max_join_depth: usize,
    /// Fraction of queries drawn from the adversarial classes.
    pub adversarial_frac: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: tpcds_types::rng::DEFAULT_SEED,
            max_join_depth: 3,
            adversarial_frac: 0.3,
        }
    }
}

/// Frozen per-table facts captured at construction time. Statistics are
/// immutable `Arc` snapshots, so synthesis stays deterministic even
/// while concurrent DM commits publish fresher stats.
struct TableInfo {
    rows: u64,
    stats: Option<Arc<TableStats>>,
}

/// The seeded, deterministic SQL generator.
pub struct Synthesizer {
    schema: Schema,
    info: BTreeMap<&'static str, TableInfo>,
    cfg: SynthConfig,
}

impl Synthesizer {
    /// Captures schema + statistics from the database head snapshot.
    pub fn from_db(db: &Database, cfg: SynthConfig) -> Synthesizer {
        let schema = Schema::tpcds();
        let snap = db.snapshot();
        let mut info = BTreeMap::new();
        for t in schema.tables() {
            if let Ok(table) = snap.table(t.name) {
                info.insert(
                    t.name,
                    TableInfo {
                        rows: table.rows.len() as u64,
                        stats: table.stats(),
                    },
                );
            }
        }
        Synthesizer { schema, info, cfg }
    }

    /// The configuration this synthesizer was built with.
    pub fn config(&self) -> &SynthConfig {
        &self.cfg
    }

    fn rows(&self, table: &str) -> u64 {
        self.info.get(table).map(|i| i.rows).unwrap_or(0)
    }

    fn stats(&self, table: &str) -> Option<&TableStats> {
        self.info.get(table).and_then(|i| i.stats.as_deref())
    }

    fn def(&self, table: &str) -> &TableDef {
        self.schema.table(table).expect("known table")
    }

    /// Column + stats pairs of `table`, in DDL order.
    fn columns_with_stats(&self, table: &str) -> Vec<(&Column, Option<&ColumnStats>)> {
        let def = self.def(table);
        let stats = self.stats(table);
        def.columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c, stats.and_then(|s| s.column(i))))
            .collect()
    }

    /// Generates query `qid` of the stream. Same `(seed, qid)` → same
    /// spec, independent of call order.
    pub fn generate(&self, qid: u64) -> QuerySpec {
        let mut rng = ColumnRng::at(self.cfg.seed, SYNTH_STREAM, qid);
        let class = self.pick_class(&mut rng);
        match class {
            ShapeClass::ScanFilter => self.gen_scan_filter(&mut rng),
            ShapeClass::JoinChain => self.gen_join_chain(&mut rng),
            ShapeClass::JoinAgg => self.gen_join_agg(&mut rng),
            ShapeClass::AggSort => self.gen_agg_sort(&mut rng),
            ShapeClass::Window => self.gen_window(&mut rng),
            ShapeClass::SetOp => self.gen_set_op(&mut rng),
            ShapeClass::DistinctTail => self.gen_distinct(&mut rng),
            ShapeClass::ExprCompute => self.gen_expr_compute(&mut rng),
            ShapeClass::EmptyResult => self.gen_empty_result(&mut rng),
            ShapeClass::NullKeyJoin => self.gen_null_key_join(&mut rng),
            ShapeClass::SkewJoin => self.gen_skew_join(&mut rng),
            ShapeClass::LimitBoundary => self.gen_limit_boundary(&mut rng),
        }
    }

    fn pick_class(&self, rng: &mut ColumnRng) -> ShapeClass {
        if rng.chance(self.cfg.adversarial_frac) {
            let adversarial = [
                ShapeClass::EmptyResult,
                ShapeClass::NullKeyJoin,
                ShapeClass::SkewJoin,
                ShapeClass::LimitBoundary,
            ];
            adversarial[rng.uniform_i64(0, 3) as usize]
        } else {
            // Join-bearing shapes get most of the weight: they are where
            // routing and differential bugs live.
            let weights = [1.0, 2.0, 3.0, 1.5, 1.5, 1.0, 1.0, 2.0];
            let organic = [
                ShapeClass::ScanFilter,
                ShapeClass::JoinChain,
                ShapeClass::JoinAgg,
                ShapeClass::AggSort,
                ShapeClass::Window,
                ShapeClass::SetOp,
                ShapeClass::DistinctTail,
                ShapeClass::ExprCompute,
            ];
            organic[rng.weighted_index(&weights)]
        }
    }

    // ----- table / column pickers -------------------------------------

    /// Fact tables present with at least one row.
    fn facts(&self) -> Vec<&'static str> {
        self.schema
            .tables()
            .iter()
            .filter(|t| t.kind == TableKind::Fact && self.rows(t.name) > 0)
            .map(|t| t.name)
            .collect()
    }

    /// Any populated table (dimensions included) with enough rows for
    /// predicates to be interesting.
    fn populated(&self, min_rows: u64) -> Vec<&'static str> {
        self.schema
            .tables()
            .iter()
            .filter(|t| self.rows(t.name) >= min_rows)
            .map(|t| t.name)
            .collect()
    }

    fn pick_fact(&self, rng: &mut ColumnRng) -> &'static str {
        let facts = self.facts();
        if facts.is_empty() {
            return "date_dim";
        }
        facts[rng.uniform_i64(0, facts.len() as i64 - 1) as usize]
    }

    fn pick_table(&self, rng: &mut ColumnRng) -> &'static str {
        let tables = self.populated(50);
        if tables.is_empty() {
            return "date_dim";
        }
        tables[rng.uniform_i64(0, tables.len() as i64 - 1) as usize]
    }

    /// Walks FK edges outward from `base`, avoiding duplicate tables (the
    /// dialect has no aliases to disambiguate a twice-joined dimension).
    fn walk_joins(&self, rng: &mut ColumnRng, base: &str, depth: usize) -> Vec<JoinEdge> {
        let mut used: Vec<&str> = vec![self.def(base).name];
        let mut edges = Vec::new();
        for _ in 0..depth {
            // Candidate edges from every table already in the query.
            let mut cands: Vec<(&'static str, &'static str, &'static str, &'static str)> =
                Vec::new();
            for &t in &used {
                for fk in &self.def(t).foreign_keys {
                    if used.contains(&fk.ref_table) || self.rows(fk.ref_table) == 0 {
                        continue;
                    }
                    if cands.iter().any(|c| c.1 == fk.ref_table) {
                        continue;
                    }
                    cands.push((self.def(t).name, fk.ref_table, fk.column, fk.ref_column));
                }
            }
            if cands.is_empty() {
                break;
            }
            let (fk_table, table, fk_col, pk_col) =
                cands[rng.uniform_i64(0, cands.len() as i64 - 1) as usize];
            used.push(table);
            edges.push(JoinEdge {
                table: table.to_string(),
                fk_table: fk_table.to_string(),
                fk_col: fk_col.to_string(),
                pk_col: pk_col.to_string(),
                left: rng.chance(0.2),
                on: OnMode::Plain,
            });
        }
        edges
    }

    /// Renders a histogram-axis key back to a literal of the column's
    /// type (the axis is ints-as-themselves, decimals truncated, dates as
    /// surrogate keys — see `tpcds_storage::stats::hist_key`).
    fn axis_literal(ctype: ColumnType, key: u64) -> String {
        match ctype {
            ColumnType::Date => {
                let sk = i64::try_from(key).unwrap_or(i64::MAX);
                format!("date '{}'", Date::from_date_sk(sk))
            }
            _ => key.to_string(),
        }
    }

    /// A selectivity-steered predicate over one histogram-covered column
    /// of `table`, or a NULL-test fallback when nothing is covered.
    fn steered_predicate(&self, rng: &mut ColumnRng, table: &str) -> Item {
        let rows = self.rows(table);
        let covered: Vec<(&Column, &ColumnStats)> = self
            .columns_with_stats(table)
            .into_iter()
            .filter_map(|(c, s)| s.map(|s| (c, s)))
            .filter(|(_, s)| s.hist_covers_column(rows) && s.ndv >= 2)
            .collect();
        if covered.is_empty() {
            return self.null_test_predicate(rng, table);
        }
        let (col, stats) = covered[rng.uniform_i64(0, covered.len() as i64 - 1) as usize];
        let sel = *rng.pick_of(&[50.0, 20.0, 5.0, 1.0]);
        let pred = match rng.uniform_i64(0, 2) {
            0 => {
                let lit = Self::axis_literal(col.ctype, stats.hist.percentile(sel));
                format!("{} <= {lit}", col.name)
            }
            1 => {
                let lit = Self::axis_literal(col.ctype, stats.hist.percentile(100.0 - sel));
                format!("{} >= {lit}", col.name)
            }
            _ => {
                let lo = rng.uniform_f64() * (100.0 - sel);
                let a = Self::axis_literal(col.ctype, stats.hist.percentile(lo));
                let b = Self::axis_literal(col.ctype, stats.hist.percentile(lo + sel));
                format!("{} between {a} and {b}", col.name)
            }
        };
        Item::on(table, pred)
    }

    /// `IS [NOT] NULL` over a nullable column (or the first column when
    /// none is nullable) — the fallback predicate and a NULL-filter
    /// stressor in its own right.
    fn null_test_predicate(&self, rng: &mut ColumnRng, table: &str) -> Item {
        let def = self.def(table);
        let nullable: Vec<&Column> = def.columns.iter().filter(|c| c.nullable).collect();
        let col = if nullable.is_empty() {
            &def.columns[0]
        } else {
            nullable[rng.uniform_i64(0, nullable.len() as i64 - 1) as usize]
        };
        let test = if rng.chance(0.8) {
            "is not null"
        } else {
            "is null"
        };
        Item::on(table, format!("{} {test}", col.name))
    }

    /// A predicate provably selecting zero rows at synthesis time:
    /// strictly above the column's observed maximum (`1 = 0` when no
    /// stats exist).
    fn empty_predicate(&self, rng: &mut ColumnRng, table: &str) -> Item {
        let with_max: Vec<(&Column, &Value)> = self
            .columns_with_stats(table)
            .into_iter()
            .filter_map(|(c, s)| s.and_then(|s| s.max.as_ref()).map(|m| (c, m)))
            .filter(|(_, m)| !matches!(m, Value::Time(_) | Value::Null))
            .collect();
        if with_max.is_empty() {
            return Item::free("1 = 0".to_string());
        }
        let (col, max) = with_max[rng.uniform_i64(0, with_max.len() as i64 - 1) as usize];
        Item::on(table, format!("{} > {}", col.name, sql_literal(max)))
    }

    /// 2–4 projection columns drawn across the query's tables.
    fn pick_projection(&self, rng: &mut ColumnRng, tables: &[&str]) -> Vec<Item> {
        let n = rng.uniform_i64(2, 4) as usize;
        let mut items = Vec::new();
        for _ in 0..n {
            let t = tables[rng.uniform_i64(0, tables.len() as i64 - 1) as usize];
            let def = self.def(t);
            let col = &def.columns[rng.uniform_i64(0, def.width() as i64 - 1) as usize];
            if items.iter().any(|i: &Item| i.text == col.name) {
                continue;
            }
            items.push(Item::on(t, col.name));
        }
        if items.is_empty() {
            let def = self.def(tables[0]);
            items.push(Item::on(tables[0], def.columns[0].name));
        }
        items
    }

    /// Grouping-key candidates: low-NDV columns (2..=64 distinct values)
    /// so aggregates produce comparable-sized results.
    fn group_key_candidates(&self, table: &str) -> Vec<&'static str> {
        self.columns_with_stats(table)
            .into_iter()
            .filter_map(|(c, s)| s.map(|s| (c, s)))
            .filter(|(_, s)| s.ndv >= 2 && s.ndv <= 64)
            .map(|(c, _)| c.name)
            .collect()
    }

    /// Numeric (Int / Id / Decimal) column names of `table`.
    fn numeric_columns(&self, table: &str) -> Vec<&'static str> {
        self.def(table)
            .columns
            .iter()
            .filter(|c| {
                matches!(
                    c.ctype,
                    ColumnType::Id | ColumnType::Int | ColumnType::Dec(_, _)
                )
            })
            .map(|c| c.name)
            .collect()
    }

    /// 1–2 aggregate select items over the given tables. AVG is restricted
    /// to decimal columns (exact arithmetic on both paths); STDDEV is
    /// deliberately excluded — float partial-sum order differs across
    /// worker counts.
    fn pick_aggs(&self, rng: &mut ColumnRng, tables: &[&str]) -> Vec<Item> {
        let mut aggs = vec![Item::free("count(*)")];
        let t = tables[rng.uniform_i64(0, tables.len() as i64 - 1) as usize];
        let nums = self.numeric_columns(t);
        if !nums.is_empty() && rng.chance(0.9) {
            let col = nums[rng.uniform_i64(0, nums.len() as i64 - 1) as usize];
            let is_dec = matches!(
                self.def(t).column(col).map(|c| c.ctype),
                Some(ColumnType::Dec(_, _))
            );
            let func = match rng.uniform_i64(0, if is_dec { 4 } else { 3 }) {
                0 => "sum",
                1 => "min",
                2 => "max",
                3 => "count",
                _ => "avg",
            };
            aggs.push(Item::on(t, format!("{func}({col})")));
        }
        if rng.chance(0.25) {
            let def = self.def(t);
            let col = &def.columns[rng.uniform_i64(0, def.width() as i64 - 1) as usize];
            aggs.push(Item::on(t, format!("count(distinct {})", col.name)));
        }
        aggs
    }

    // ----- class generators -------------------------------------------

    fn gen_scan_filter(&self, rng: &mut ColumnRng) -> QuerySpec {
        let base = self.pick_table(rng);
        let mut s = QuerySpec::new(ShapeClass::ScanFilter, base);
        s.projection = self.pick_projection(rng, &[base]);
        s.predicates.push(self.steered_predicate(rng, base));
        if rng.chance(0.4) {
            s.predicates.push(self.null_test_predicate(rng, base));
        }
        s
    }

    fn gen_join_chain(&self, rng: &mut ColumnRng) -> QuerySpec {
        let base = self.pick_fact(rng);
        let mut s = QuerySpec::new(ShapeClass::JoinChain, base);
        let depth = rng.uniform_i64(1, self.cfg.max_join_depth.max(1) as i64) as usize;
        s.joins = self.walk_joins(rng, base, depth);
        let tables = s.tables().iter().map(|t| t.to_string()).collect::<Vec<_>>();
        let refs: Vec<&str> = tables.iter().map(|t| t.as_str()).collect();
        s.projection = self.pick_projection(rng, &refs);
        s.predicates.push(self.steered_predicate(rng, base));
        if let Some(j) = s.joins.first() {
            if !j.left && rng.chance(0.6) {
                let t = j.table.clone();
                s.predicates.push(self.steered_predicate(rng, &t));
            }
        }
        s
    }

    fn gen_join_agg(&self, rng: &mut ColumnRng) -> QuerySpec {
        let base = self.pick_fact(rng);
        let mut s = QuerySpec::new(ShapeClass::JoinAgg, base);
        let depth = rng.uniform_i64(1, self.cfg.max_join_depth.max(1) as i64) as usize;
        s.joins = self.walk_joins(rng, base, depth);
        // Group on a key from one of the joined dimensions when possible
        // (the classic star-schema rollup), else on the base table.
        let tables = s.tables().iter().map(|t| t.to_string()).collect::<Vec<_>>();
        let mut group_tables: Vec<&str> = tables.iter().skip(1).map(|t| t.as_str()).collect();
        if group_tables.is_empty() {
            group_tables.push(base);
        }
        for _ in 0..rng.uniform_i64(1, 2) {
            let t = group_tables[rng.uniform_i64(0, group_tables.len() as i64 - 1) as usize];
            let keys = self.group_key_candidates(t);
            if keys.is_empty() {
                continue;
            }
            let k = keys[rng.uniform_i64(0, keys.len() as i64 - 1) as usize];
            if s.group_by.iter().any(|g| g.text == k) {
                continue;
            }
            s.group_by.push(Item::on(t, k));
        }
        if s.group_by.is_empty() {
            // Degenerate to a global aggregate (rendered via projection).
            s.projection = self.pick_aggs(rng, &[base]);
            s.predicates.push(self.steered_predicate(rng, base));
            return s;
        }
        s.aggs = self.pick_aggs(rng, &[base]);
        s.predicates.push(self.steered_predicate(rng, base));
        if rng.chance(0.3) {
            s.having = Some(format!("count(*) > {}", rng.uniform_i64(0, 10)));
        }
        // Ordering by every group key makes rows unique, so LIMIT is
        // deterministic across paths.
        s.order_by = (1..=s.group_by.len()).collect();
        if rng.chance(0.3) {
            s.limit = Some(rng.uniform_i64(1, 100) as u64);
        }
        s
    }

    fn gen_agg_sort(&self, rng: &mut ColumnRng) -> QuerySpec {
        let base = self.pick_table(rng);
        let mut s = QuerySpec::new(ShapeClass::AggSort, base);
        let keys = self.group_key_candidates(base);
        if keys.is_empty() {
            s.projection = self.pick_aggs(rng, &[base]);
            return s;
        }
        let n = rng.uniform_i64(1, 2).min(keys.len() as i64) as usize;
        for _ in 0..n {
            let k = keys[rng.uniform_i64(0, keys.len() as i64 - 1) as usize];
            if s.group_by.iter().any(|g| g.text == k) {
                continue;
            }
            s.group_by.push(Item::on(base, k));
        }
        s.aggs = self.pick_aggs(rng, &[base]);
        if rng.chance(0.5) {
            s.predicates.push(self.steered_predicate(rng, base));
        }
        s.order_by = (1..=s.group_by.len()).collect();
        if rng.chance(0.4) {
            s.limit = Some(rng.uniform_i64(1, 50) as u64);
        }
        s
    }

    fn gen_window(&self, rng: &mut ColumnRng) -> QuerySpec {
        let base = self.pick_table(rng);
        let mut s = QuerySpec::new(ShapeClass::Window, base);
        let def = self.def(base);
        let parts = {
            // Prefer nullable low-NDV partition keys: the NULL partition
            // is the semantics we are pinning.
            let keys = self.group_key_candidates(base);
            let nullable: Vec<&'static str> = keys
                .iter()
                .copied()
                .filter(|k| def.column(k).map(|c| c.nullable).unwrap_or(false))
                .collect();
            if !nullable.is_empty() && rng.chance(0.7) {
                nullable
            } else if !keys.is_empty() {
                keys
            } else {
                vec![def.columns[0].name]
            }
        };
        let part = parts[rng.uniform_i64(0, parts.len() as i64 - 1) as usize];
        let nums = self.numeric_columns(base);
        let num = if nums.is_empty() {
            def.primary_key[0]
        } else {
            nums[rng.uniform_i64(0, nums.len() as i64 - 1) as usize]
        };
        let order = if nums.is_empty() {
            def.primary_key[0]
        } else {
            nums[rng.uniform_i64(0, nums.len() as i64 - 1) as usize]
        };
        let pk = def.primary_key.join(", ");
        // Tie-stable forms only: ranks and peer-group aggregates give
        // every tied row the same value, and ROW_NUMBER orders by the
        // (unique) primary key — so results do not depend on the input
        // order the columnar child happens to produce.
        s.window = Some(match rng.uniform_i64(0, 4) {
            0 => format!("sum({num}) over (partition by {part})"),
            1 => format!("sum({num}) over (partition by {part} order by {order})"),
            2 => format!("rank() over (partition by {part} order by {order})"),
            3 => format!("dense_rank() over (partition by {part} order by {order})"),
            _ => format!("row_number() over (partition by {part} order by {pk})"),
        });
        let mut proj = vec![Item::on(base, part)];
        for c in &def.primary_key {
            if *c != part {
                proj.push(Item::on(base, *c));
            }
        }
        s.projection = proj;
        if rng.chance(0.5) {
            s.predicates.push(self.steered_predicate(rng, base));
        }
        s
    }

    fn gen_set_op(&self, rng: &mut ColumnRng) -> QuerySpec {
        let base = self.pick_table(rng);
        let mut s = QuerySpec::new(ShapeClass::SetOp, base);
        // Project a mix that includes nullable columns, so dedup has NULL
        // rows to disambiguate.
        let def = self.def(base);
        let nullable: Vec<&'static str> = def
            .columns
            .iter()
            .filter(|c| c.nullable)
            .map(|c| c.name)
            .collect();
        let mut proj = self.pick_projection(rng, &[base]);
        proj.truncate(2);
        if !nullable.is_empty() {
            let n = nullable[rng.uniform_i64(0, nullable.len() as i64 - 1) as usize];
            if !proj.iter().any(|i| i.text == n) {
                proj.push(Item::on(base, n));
            }
        }
        s.projection = proj;
        s.predicates.push(self.steered_predicate(rng, base));
        let mut arm = s.clone();
        arm.set_op = None;
        arm.predicates = vec![self.steered_predicate(rng, base)];
        let op = *rng.pick_of(&["union", "union all", "intersect", "except"]);
        s.set_op = Some((op.to_string(), Box::new(arm)));
        s
    }

    fn gen_distinct(&self, rng: &mut ColumnRng) -> QuerySpec {
        let base = self.pick_table(rng);
        let mut s = QuerySpec::new(ShapeClass::DistinctTail, base);
        s.distinct = true;
        let keys = self.group_key_candidates(base);
        if keys.is_empty() {
            s.projection = self.pick_projection(rng, &[base]);
        } else {
            for _ in 0..rng.uniform_i64(1, 2) {
                let k = keys[rng.uniform_i64(0, keys.len() as i64 - 1) as usize];
                if !s.projection.iter().any(|i| i.text == k) {
                    s.projection.push(Item::on(base, k));
                }
            }
        }
        if rng.chance(0.6) {
            s.predicates.push(self.steered_predicate(rng, base));
        }
        s
    }

    /// Computed projections, expression predicates and an expression sort
    /// key, all inside the compiled-kernel grammar. Constants stay small
    /// and products only pair a column with a constant, so i64 arithmetic
    /// cannot overflow at any scale factor (error parity has its own
    /// pinned suites); division keeps possibly-zero divisors on purpose —
    /// `x / 0` is NULL, identically, on both paths.
    fn gen_expr_compute(&self, rng: &mut ColumnRng) -> QuerySpec {
        let base = self.pick_table(rng);
        let mut s = QuerySpec::new(ShapeClass::ExprCompute, base);
        let def = self.def(base);
        let nums = self.numeric_columns(base);
        if nums.is_empty() {
            s.projection = self.pick_projection(rng, &[base]);
            s.predicates.push(self.steered_predicate(rng, base));
            return s;
        }
        // The primary key anchors every output row.
        for pk in &def.primary_key {
            s.projection.push(Item::on(base, *pk));
        }
        let pick = |rng: &mut ColumnRng| nums[rng.uniform_i64(0, nums.len() as i64 - 1) as usize];
        for _ in 0..rng.uniform_i64(1, 2) {
            let a = pick(rng);
            let b = pick(rng);
            let k = rng.uniform_i64(1, 9);
            let text = match rng.uniform_i64(0, 6) {
                0 => format!("{a} + {k}"),
                1 => format!("{a} * {k} - {b}"),
                2 => format!("case when {a} > {k} then {a} else -{a} end"),
                3 => format!("coalesce({a}, {k})"),
                4 => format!("nullif({a}, {b})"),
                5 => format!("{a} / {k}"),
                _ => format!("abs({a} - {k})"),
            };
            if !s.projection.iter().any(|i| i.text == text) {
                s.projection.push(Item::on(base, text));
            }
        }
        // An expression predicate — arithmetic-wrapped comparisons that
        // used to be the `pred-shape` serial fallback. Modulo stays on
        // integer columns: `decimal % int` is an error on both paths.
        if rng.chance(0.8) {
            let a = pick(rng);
            let b = pick(rng);
            let k = rng.uniform_i64(1, 9);
            let ints: Vec<&'static str> = self
                .def(base)
                .columns
                .iter()
                .filter(|c| matches!(c.ctype, ColumnType::Id | ColumnType::Int))
                .map(|c| c.name)
                .collect();
            let pred = match rng.uniform_i64(0, 3) {
                0 => format!("{a} + {k} > {b}"),
                1 if !ints.is_empty() => {
                    let m = ints[rng.uniform_i64(0, ints.len() as i64 - 1) as usize];
                    format!("{m} % {k} = 0")
                }
                2 => format!("coalesce({a}, 0) <= {b} * {k}"),
                _ => format!("case when {a} is null then 1 else 0 end = 0"),
            };
            s.predicates.push(Item::on(base, pred));
        }
        // Ordering by every output ordinal (computed items included, the
        // old `sort-key-shape` fallback) pins the answer byte-for-byte:
        // rows that compare equal on all columns are indistinguishable.
        if rng.chance(0.7) {
            s.order_by = (1..=s.select_items().len()).collect();
            if rng.chance(0.5) {
                s.limit = Some(rng.uniform_i64(1, 500) as u64);
            }
        }
        s
    }

    fn gen_empty_result(&self, rng: &mut ColumnRng) -> QuerySpec {
        // An otherwise-ordinary query whose WHERE selects nothing: zero
        // rows must flow through joins, aggregates and sorts identically
        // on both paths.
        let mut s = match rng.uniform_i64(0, 2) {
            0 => self.gen_scan_filter(rng),
            1 => self.gen_join_chain(rng),
            _ => self.gen_join_agg(rng),
        };
        s.class = ShapeClass::EmptyResult;
        let base = s.base.clone();
        s.predicates.push(self.empty_predicate(rng, &base));
        s
    }

    fn gen_null_key_join(&self, rng: &mut ColumnRng) -> QuerySpec {
        let base = self.pick_fact(rng);
        let mut s = QuerySpec::new(ShapeClass::NullKeyJoin, base);
        let depth = rng.uniform_i64(1, 2) as usize;
        s.joins = self.walk_joins(rng, base, depth);
        if s.joins.is_empty() {
            s.projection = vec![Item::free("count(*)")];
            return s;
        }
        let poisoned = rng.uniform_i64(0, s.joins.len() as i64 - 1) as usize;
        s.joins[poisoned].on = OnMode::NullKey;
        s.joins[poisoned].left = rng.chance(0.5);
        let probe_table = s.joins[poisoned].table.clone();
        let pk = self.def(&probe_table).primary_key[0];
        if rng.chance(0.5) {
            // Global aggregate: count of survivors + count of non-NULL
            // right-side keys (zero for the poisoned edge).
            s.projection = vec![
                Item::free("count(*)"),
                Item::on(&probe_table, format!("count({pk})")),
            ];
        } else {
            let tables = s.tables().iter().map(|t| t.to_string()).collect::<Vec<_>>();
            let refs: Vec<&str> = tables.iter().map(|t| t.as_str()).collect();
            s.projection = self.pick_projection(rng, &refs);
            s.predicates.push(self.steered_predicate(rng, base));
        }
        s
    }

    fn gen_skew_join(&self, rng: &mut ColumnRng) -> QuerySpec {
        let base = self.pick_fact(rng);
        let mut s = QuerySpec::new(ShapeClass::SkewJoin, base);
        // Only small dimensions: a modulo join multiplies cardinalities.
        let small: Vec<&tpcds_schema::ForeignKey> = self
            .def(base)
            .foreign_keys
            .iter()
            .filter(|fk| {
                let r = self.rows(fk.ref_table);
                r > 0 && r <= 2500
            })
            .collect();
        if small.is_empty() {
            s.projection = vec![Item::free("count(*)")];
            s.predicates.push(self.steered_predicate(rng, base));
            return s;
        }
        let fk = small[rng.uniform_i64(0, small.len() as i64 - 1) as usize];
        let m = rng.uniform_i64(2, 7);
        s.joins.push(JoinEdge {
            table: fk.ref_table.to_string(),
            fk_table: base.to_string(),
            fk_col: fk.column.to_string(),
            pk_col: fk.ref_column.to_string(),
            left: false,
            on: OnMode::SkewMod(m),
        });
        // Keep the fact side selective so the residue blowup stays
        // bounded, then aggregate the flood down to a handful of rows.
        s.predicates.push(self.steered_predicate(rng, base));
        s.projection = vec![
            Item::free("count(*)"),
            Item::on(base, format!("min({})", fk.column)),
            Item::on(fk.ref_table, format!("max({})", fk.ref_column)),
        ];
        s
    }

    fn gen_limit_boundary(&self, rng: &mut ColumnRng) -> QuerySpec {
        // date_dim is the one table guaranteed past the 64k segment
        // boundary at every scale factor (73049 static rows).
        let base = if self.rows("date_dim") > 65_537 {
            "date_dim"
        } else {
            self.pick_table(rng)
        };
        let mut s = QuerySpec::new(ShapeClass::LimitBoundary, base);
        let def = self.def(base);
        // Project and order by the full primary key: the ordered prefix a
        // LIMIT cuts is only well-defined when the sort key is unique.
        for pk in &def.primary_key {
            s.projection.push(Item::on(base, *pk));
        }
        if rng.chance(0.5) && def.width() > 1 {
            let extra = &def.columns[rng.uniform_i64(1, def.width() as i64 - 1) as usize];
            if !s.projection.iter().any(|i| i.text == extra.name) {
                s.projection.push(Item::on(base, extra.name));
            }
        }
        s.order_by = (1..=def.primary_key.len()).collect();
        s.limit = Some(*rng.pick_of(&[65_535u64, 65_536, 65_537]));
        s
    }
}

/// `ColumnRng` lacks a slice picker; local helper so generators read
/// naturally.
trait PickOf {
    fn pick_of<'a, T>(&mut self, xs: &'a [T]) -> &'a T;
}

impl PickOf for ColumnRng {
    fn pick_of<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.uniform_i64(0, xs.len() as i64 - 1) as usize]
    }
}
