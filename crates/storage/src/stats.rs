//! Per-column table statistics, collected in parallel over segments.
//!
//! [`collect_stats`] walks a [`ColumnTable`] shadow with the same
//! worker-count policy as the scan kernels: each worker claims whole
//! segments off a shared cursor, folds per-column accumulators (row/null
//! counts, min/max, an HLL NDV sketch, a log-bucketed value histogram),
//! and the partials merge commutatively at the end — so the result is
//! deterministic regardless of worker count or claim order.
//!
//! The histogram only covers values with a natural non-negative integer
//! key (see [`hist_key`]); [`ColumnStats::hist_covers_column`] tells the
//! cardinality estimator whether the histogram saw every non-NULL value
//! and can therefore be trusted for range selectivity.

use crate::morsel::worker_count;
use crate::segment::{ColumnTable, Segment};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use tpcds_obs::hist::HistSnapshot;
use tpcds_obs::ndv::NdvSketch;
use tpcds_types::Value;

/// Statistics for one column of one table.
#[derive(Clone, Debug)]
pub struct ColumnStats {
    /// Number of NULL values.
    pub nulls: u64,
    /// Smallest non-NULL value (by [`Value::sort_cmp`]), if any.
    pub min: Option<Value>,
    /// Largest non-NULL value, if any.
    pub max: Option<Value>,
    /// Estimated number of distinct non-NULL values (HLL sketch).
    pub ndv: u64,
    /// Log-bucketed histogram over [`hist_key`]-mappable values.
    pub hist: HistSnapshot,
}

impl ColumnStats {
    /// True when every non-NULL value landed in the histogram — i.e. the
    /// histogram's sample count equals `rows - nulls`, so range
    /// selectivities read off it describe the whole column.
    pub fn hist_covers_column(&self, table_rows: u64) -> bool {
        self.hist.count > 0 && self.hist.count == table_rows - self.nulls
    }
}

/// Statistics for one table: total rows plus per-column detail.
#[derive(Clone, Debug)]
pub struct TableStats {
    /// Total row count at collection time.
    pub rows: u64,
    /// One entry per column, in declaration order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// The stats for column `i`, if the table has that many columns.
    pub fn column(&self, i: usize) -> Option<&ColumnStats> {
        self.columns.get(i)
    }

    /// Fraction of NULLs in column `i` (0 when out of range or empty).
    pub fn null_fraction(&self, i: usize) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.column(i)
            .map(|c| c.nulls as f64 / self.rows as f64)
            .unwrap_or(0.0)
    }
}

/// Maps a value onto the non-negative integer axis the histogram indexes:
/// non-negative integers map to themselves, decimals to their truncated
/// magnitude, dates to their surrogate key. Strings, booleans, times and
/// negative numbers get no key — columns containing them fall back to
/// NDV-only selectivity.
pub fn hist_key(v: &Value) -> Option<u64> {
    match v {
        Value::Int(x) if *x >= 0 => Some(*x as u64),
        Value::Decimal(d) => {
            let f = d.to_f64();
            if f.is_finite() && f >= 0.0 {
                Some(f as u64)
            } else {
                None
            }
        }
        Value::Date(d) => u64::try_from(d.date_sk()).ok(),
        _ => None,
    }
}

/// One worker's in-flight accumulator for one column.
struct ColAcc {
    nulls: u64,
    min: Option<Value>,
    max: Option<Value>,
    ndv: NdvSketch,
    hist: HistSnapshot,
}

impl ColAcc {
    fn new() -> ColAcc {
        ColAcc {
            nulls: 0,
            min: None,
            max: None,
            ndv: NdvSketch::new(),
            hist: HistSnapshot::new(),
        }
    }

    #[inline]
    fn observe(&mut self, v: Value) {
        if v.is_null() {
            self.nulls += 1;
            return;
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        v.hash(&mut h);
        self.ndv.insert_hash(h.finish());
        if let Some(k) = hist_key(&v) {
            self.hist.record(k);
        }
        match &self.min {
            Some(m) if v.sort_cmp(m) != Ordering::Less => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if v.sort_cmp(m) != Ordering::Greater => {}
            _ => self.max = Some(v),
        }
    }

    fn merge(&mut self, other: ColAcc) {
        self.nulls += other.nulls;
        self.ndv.merge(&other.ndv);
        self.hist.merge(&other.hist);
        if let Some(v) = other.min {
            match &self.min {
                Some(m) if v.sort_cmp(m) != Ordering::Less => {}
                _ => self.min = Some(v),
            }
        }
        if let Some(v) = other.max {
            match &self.max {
                Some(m) if v.sort_cmp(m) != Ordering::Greater => {}
                _ => self.max = Some(v),
            }
        }
    }

    fn finish(self) -> ColumnStats {
        ColumnStats {
            nulls: self.nulls,
            min: self.min,
            max: self.max,
            ndv: self.ndv.estimate_u64(),
            hist: self.hist,
        }
    }
}

fn fold_segment(seg: &Segment, accs: &mut [ColAcc]) {
    for (c, col) in seg.columns.iter().enumerate() {
        let acc = &mut accs[c];
        for i in 0..seg.rows {
            acc.observe(col.value_at(i));
        }
    }
}

/// Collects full per-column statistics for `table`, using up to
/// `threads` workers (whole segments are the unit of work; small tables
/// run inline on the caller's thread).
pub fn collect_stats(table: &ColumnTable, threads: usize) -> TableStats {
    let width = table.width();
    let n_segs = table.segments.len();
    let workers = worker_count(table.rows, threads, n_segs);
    let fresh = |_| (0..width).map(|_| ColAcc::new()).collect::<Vec<_>>();

    let partials: Vec<Vec<ColAcc>> = if workers <= 1 {
        let mut accs = fresh(0);
        for seg in &table.segments {
            fold_segment(seg, &mut accs);
        }
        vec![accs]
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut accs = fresh(w);
                        loop {
                            let si = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                            if si >= n_segs {
                                break;
                            }
                            fold_segment(&table.segments[si], &mut accs);
                        }
                        accs
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };

    let mut merged: Vec<ColAcc> = (0..width).map(|_| ColAcc::new()).collect();
    for part in partials {
        for (into, from) in merged.iter_mut().zip(part) {
            into.merge(from);
        }
    }
    TableStats {
        rows: table.rows as u64,
        columns: merged.into_iter().map(ColAcc::finish).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SEGMENT_ROWS;
    use tpcds_types::{DataType, Row};

    fn table(rows: Vec<Row>, dtypes: Vec<DataType>) -> ColumnTable {
        ColumnTable::from_rows(dtypes, &rows)
    }

    #[test]
    fn empty_table_stats() {
        let t = table(vec![], vec![DataType::Int]);
        let s = collect_stats(&t, 4);
        assert_eq!(s.rows, 0);
        assert_eq!(s.columns.len(), 1);
        assert_eq!(s.columns[0].nulls, 0);
        assert_eq!(s.columns[0].ndv, 0);
        assert!(s.columns[0].min.is_none());
        assert!(s.columns[0].max.is_none());
    }

    #[test]
    fn all_null_column() {
        let rows: Vec<Row> = (0..100).map(|_| vec![Value::Null]).collect();
        let s = collect_stats(&table(rows, vec![DataType::Int]), 4);
        let c = &s.columns[0];
        assert_eq!(c.nulls, 100);
        assert_eq!(c.ndv, 0);
        assert!(c.min.is_none() && c.max.is_none());
        assert!(!c.hist_covers_column(s.rows));
        assert!((s.null_fraction(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_value_column() {
        let rows: Vec<Row> = (0..1_000).map(|_| vec![Value::Int(7)]).collect();
        let s = collect_stats(&table(rows, vec![DataType::Int]), 4);
        let c = &s.columns[0];
        assert_eq!(c.ndv, 1);
        assert_eq!(c.min, Some(Value::Int(7)));
        assert_eq!(c.max, Some(Value::Int(7)));
        assert!(c.hist_covers_column(s.rows));
    }

    #[test]
    fn mixed_column_stats_and_parallel_determinism() {
        // > SEGMENT_ROWS rows so the parallel path really has 2+ segments.
        let n = SEGMENT_ROWS + 5_000;
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                let v = if i % 10 == 0 {
                    Value::Null
                } else {
                    Value::Int((i % 500) as i64)
                };
                vec![v, Value::str(format!("s{}", i % 37))]
            })
            .collect();
        let t = table(rows, vec![DataType::Int, DataType::Str]);
        let serial = collect_stats(&t, 1);
        let parallel = collect_stats(&t, 8);

        for s in [&serial, &parallel] {
            assert_eq!(s.rows, n as u64);
            let c0 = &s.columns[0];
            assert_eq!(c0.nulls, (n as u64).div_ceil(10));
            assert_eq!(c0.min, Some(Value::Int(1)));
            assert_eq!(c0.max, Some(Value::Int(499)));
            // 500 possible residues minus the multiples of 10 (NULLed out).
            let exact = 500 - 50;
            let rel = (c0.ndv as f64 - exact as f64).abs() / (exact as f64);
            assert!(rel < 0.05, "ndv {} vs exact {exact}", c0.ndv);
            assert!(c0.hist_covers_column(s.rows));
            let c1 = &s.columns[1];
            assert_eq!(c1.nulls, 0);
            assert!((c1.ndv as f64 - 37.0).abs() / 37.0 < 0.05, "ndv {}", c1.ndv);
            // Strings get no histogram key.
            assert!(!c1.hist_covers_column(s.rows));
        }
        // Worker count must not change the result.
        assert_eq!(serial.columns[0].ndv, parallel.columns[0].ndv);
        assert_eq!(serial.columns[0].hist.count, parallel.columns[0].hist.count);
    }

    #[test]
    fn hist_key_mapping() {
        assert_eq!(hist_key(&Value::Int(42)), Some(42));
        assert_eq!(hist_key(&Value::Int(-1)), None);
        assert_eq!(hist_key(&Value::str("abc")), None);
        assert_eq!(hist_key(&Value::Null), None);
    }
}
