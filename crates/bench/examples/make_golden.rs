//! Regenerates the golden answer fingerprints used by the
//! `golden_answers` integration test:
//!
//! ```sh
//! cargo run --release -p tpcds-bench --example make_golden > tests/golden_answers_sf001.txt
//! ```

use tpcds_core::runner::validation::fingerprint;
use tpcds_core::TpcDs;

fn main() {
    let tpcds = TpcDs::builder()
        .scale_factor(0.01)
        .reporting_aux(true)
        .build()
        .expect("load");
    println!("# query rows hash — SF 0.01, seed 19620718, stream 0");
    for id in 1..=99u32 {
        let r = tpcds
            .run_benchmark_query(id, 0)
            .unwrap_or_else(|e| panic!("q{id}: {e}"));
        let fp = fingerprint(&r);
        println!("{id} {} {:016x}", fp.rows, fp.hash);
    }
}
