//! Admission control: a bounded semaphore over concurrent queries.
//!
//! The server accepts any number of connections, but only `limit` queries
//! execute at once — the rest queue on a condvar. Queueing is observable:
//! `server.admission_wait_us` is a histogram of time spent waiting for a
//! permit and `server.admission_queue_depth` is a gauge of how many
//! sessions are parked right now, so a multi-stream run shows exactly
//! where throughput saturates.

use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// A bounded permit pool. Cheap to share behind an `Arc`.
pub struct Admission {
    limit: usize,
    state: Mutex<AdmissionState>,
    available: Condvar,
}

struct AdmissionState {
    in_use: usize,
    queued: usize,
}

impl Admission {
    /// A pool of `limit` permits. `limit` is clamped to at least one so a
    /// misconfigured server degrades to serial execution, not deadlock.
    pub fn new(limit: usize) -> Admission {
        Admission {
            limit: limit.max(1),
            state: Mutex::new(AdmissionState {
                in_use: 0,
                queued: 0,
            }),
            available: Condvar::new(),
        }
    }

    /// The configured concurrency ceiling.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Queries currently holding a permit.
    pub fn in_use(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).in_use
    }

    /// Blocks until a permit is free and returns an RAII guard releasing
    /// it on drop. Records the wait in `server.admission_wait_us` and
    /// keeps `server.admission_queue_depth` current while parked.
    pub fn acquire(&self) -> Permit<'_> {
        let started = Instant::now();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.in_use >= self.limit {
            state.queued += 1;
            tpcds_obs::metrics::gauge_set("server.admission_queue_depth", state.queued as i64);
            while state.in_use >= self.limit {
                state = self
                    .available
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
            state.queued -= 1;
            tpcds_obs::metrics::gauge_set("server.admission_queue_depth", state.queued as i64);
        }
        state.in_use += 1;
        drop(state);
        tpcds_obs::metrics::observe(
            "server.admission_wait_us",
            started.elapsed().as_micros() as u64,
        );
        Permit { pool: self }
    }
}

/// Holds one admission slot; dropping it wakes a queued session.
pub struct Permit<'a> {
    pool: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.pool.state.lock().unwrap_or_else(|e| e.into_inner());
        state.in_use -= 1;
        drop(state);
        self.pool.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn never_admits_more_than_the_limit() {
        let pool = Arc::new(Admission::new(3));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let (pool, running, peak) = (pool.clone(), running.clone(), peak.clone());
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let _permit = pool.acquire();
                        let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        running.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3, "peak {peak:?} over limit");
        assert_eq!(pool.in_use(), 0, "all permits returned");
    }

    #[test]
    fn zero_limit_degrades_to_serial() {
        let pool = Admission::new(0);
        assert_eq!(pool.limit(), 1);
        let p = pool.acquire();
        drop(p);
        let _again = pool.acquire();
    }
}
