//! The abstract syntax tree produced by the parser.

use tpcds_types::Value;

/// A full query: optional CTEs plus a set-expression body.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `WITH name AS (query), ...`
    pub ctes: Vec<(String, Query)>,
    /// The body (SELECT, possibly combined with set operators).
    pub body: SetExpr,
    /// `ORDER BY` applying to the whole body.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
}

/// A set expression: a SELECT or a combination of two set expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// Plain SELECT.
    Select(Box<Select>),
    /// `left op right`.
    SetOp {
        /// UNION / INTERSECT / EXCEPT.
        op: SetOpKind,
        /// Keep duplicates (`ALL`).
        all: bool,
        /// Left input.
        left: Box<SetExpr>,
        /// Right input.
        right: Box<SetExpr>,
    },
    /// Parenthesized sub-query used as a set operand.
    Query(Box<Query>),
}

/// UNION / INTERSECT / EXCEPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// Set union.
    Union,
    /// Set intersection.
    Intersect,
    /// Set difference.
    Except,
}

/// One SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection items.
    pub items: Vec<SelectItem>,
    /// FROM sources (comma-joined).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions; `rollup` marks `GROUP BY ROLLUP(...)`.
    pub group_by: Vec<Expr>,
    /// True when the GROUP BY is a ROLLUP.
    pub rollup: bool,
    /// HAVING predicate.
    pub having: Option<Expr>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `qualifier.*`
    QualifiedWildcard(String),
    /// Expression with optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A FROM-clause source.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table or CTE reference with optional alias.
    Table {
        /// Table / CTE name.
        name: String,
        /// Alias.
        alias: Option<String>,
    },
    /// Derived table: `(query) alias`.
    Subquery {
        /// The subquery.
        query: Box<Query>,
        /// Alias (required in practice).
        alias: String,
    },
    /// Explicit join.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// ON condition (None only for CROSS).
        on: Option<Expr>,
    },
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT OUTER JOIN.
    Left,
    /// CROSS JOIN (no condition).
    Cross,
}

/// Sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// The key expression (may be an alias or 1-based ordinal literal).
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// Scalar expression grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified.
    Column {
        /// `table.` qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// NOT.
    Not(Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// IS NOT NULL?
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Operand.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// NOT BETWEEN?
        negated: bool,
    },
    /// `expr [NOT] IN (list)` or `expr [NOT] IN (subquery)`.
    InList {
        /// Operand.
        expr: Box<Expr>,
        /// The list.
        list: Vec<Expr>,
        /// NOT IN?
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        /// Operand.
        expr: Box<Expr>,
        /// Subquery.
        query: Box<Query>,
        /// NOT IN?
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// Subquery.
        query: Box<Query>,
        /// NOT EXISTS?
        negated: bool,
    },
    /// Scalar subquery.
    Subquery(Box<Query>),
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Operand.
        expr: Box<Expr>,
        /// Pattern (`%`/`_` wildcards).
        pattern: Box<Expr>,
        /// NOT LIKE?
        negated: bool,
    },
    /// Function call (scalar or aggregate — disambiguated by the binder).
    Function {
        /// Lower-cased function name.
        name: String,
        /// Arguments (empty for `count(*)` with `star = true`).
        args: Vec<Expr>,
        /// `count(*)`.
        star: bool,
        /// `DISTINCT` inside an aggregate.
        distinct: bool,
    },
    /// Window function: `func(args) OVER (PARTITION BY ... ORDER BY ...)`.
    Window {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// PARTITION BY expressions.
        partition_by: Vec<Expr>,
        /// ORDER BY items.
        order_by: Vec<OrderItem>,
    },
    /// CASE expression.
    Case {
        /// `CASE operand WHEN ...` form.
        operand: Option<Box<Expr>>,
        /// (condition/value, result) branches.
        branches: Vec<(Expr, Expr)>,
        /// ELSE.
        else_branch: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)` — target type name kept textual.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Lower-cased type name, e.g. "date", "integer", "decimal".
        ty: String,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// AND
    And,
    /// OR
    Or,
    /// `||`
    Concat,
}
