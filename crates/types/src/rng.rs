//! Deterministic, random-access pseudo-random streams.
//!
//! dsdgen assigns every table column its own 48-bit LCG stream and uses
//! jump-ahead so chunks of a table can be generated in parallel. We get the
//! same two properties — bit-for-bit determinism and O(1) random access —
//! from a *counter-based* construction: each draw is `mix64` applied to a
//! unique (seed, table, column, row, use) coordinate. See DESIGN.md,
//! "Substitutions".

/// The canonical benchmark seed; dsdgen's default RNG seed is 19620718
/// (Jack Stephens' birthday). We keep it as a homage and a stable default.
pub const DEFAULT_SEED: u64 = 19_620_718;

/// SplitMix64 finalizer: a bijective 64-bit mixer with full avalanche.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines two words into one well-mixed word (not commutative).
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ b.rotate_left(32) ^ 0xD6E8_FEB8_6659_FD93)
}

/// A deterministic stream of pseudo-random values addressed by
/// `(seed, stream_id, row, draw-counter)`.
///
/// `ColumnRng::at(seed, stream, row)` positions the stream at a row;
/// successive draws within the row advance an internal counter, so a column
/// generator may consume any fixed number of values per row without
/// perturbing other columns — dsdgen's "uses per row" discipline, enforced
/// structurally instead of by bookkeeping.
#[derive(Clone, Debug)]
pub struct ColumnRng {
    base: u64,
    counter: u64,
}

impl ColumnRng {
    /// Positions the stream for `row` of logical stream `stream_id`.
    pub fn at(seed: u64, stream_id: u64, row: u64) -> Self {
        ColumnRng {
            base: mix2(mix2(seed, stream_id), row),
            counter: 0,
        }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let v = mix2(self.base, self.counter);
        self.counter += 1;
        v
    }

    /// Uniform integer in `lo..=hi` (inclusive). Uses 128-bit multiply-shift
    /// rejection-free mapping; the modulo bias is < 2^-64 and irrelevant for
    /// benchmark data.
    #[inline]
    pub fn uniform_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 as u128 + 1;
        let draw = self.next_u64() as u128;
        lo + ((draw * span) >> 64) as i64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal draw via Box–Muller (uses two raw draws).
    pub fn gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = (self.uniform_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Bernoulli draw: true with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform_f64() < p
    }

    /// Picks an index in `0..weights.len()` proportionally to `weights`.
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index needs positive total weight");
        let mut x = self.uniform_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates permutation of `0..n`, deterministic for the stream
    /// position (used by the query runner for per-stream query orderings).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.uniform_i64(0, i as i64) as usize;
            p.swap(i, j);
        }
        p
    }
}

/// Well-known logical stream ids. Tables get `table_stream(table_idx)`;
/// within a table, column `c` uses `table_stream(t) + c + 1`.
pub fn table_stream(table_idx: usize) -> u64 {
    (table_idx as u64 + 1) << 16
}

/// The classic sequential splitmix64 generator — the shared seeded RNG
/// for every differential / synthesized test harness, so a failure
/// reproduces from one printed seed.
///
/// Each step advances the state by the splitmix increment and returns the
/// finalized ([`mix64`]) old state; the emitted sequence is therefore
/// `mix64(s0), mix64(s0 + γ), …` for seed `s0`. Column generators keep
/// using the random-access [`ColumnRng`]; this type is for test drivers
/// that want a cheap *sequential* stream.
#[derive(Clone, Debug)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let v = mix64(self.0);
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        v
    }

    /// Uniform draw in `0..n` (modulo mapping; fine for test harnesses).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Bernoulli draw: true with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

/// The seed a test harness should use: `TPCDS_TEST_SEED` from the
/// environment when set (so a CI failure replays locally by exporting the
/// printed seed), else the given default. Invalid values fall back to the
/// default rather than panicking inside a test binary.
pub fn test_seed(default: u64) -> u64 {
    match std::env::var("TPCDS_TEST_SEED") {
        Ok(s) => s.trim().parse().unwrap_or(default),
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_coordinate() {
        let mut a = ColumnRng::at(DEFAULT_SEED, 7, 42);
        let mut b = ColumnRng::at(DEFAULT_SEED, 7, 42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_rows_differ() {
        let a = ColumnRng::at(DEFAULT_SEED, 7, 42).next_u64();
        let b = ColumnRng::at(DEFAULT_SEED, 7, 43).next_u64();
        let c = ColumnRng::at(DEFAULT_SEED, 8, 42).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_bounds_inclusive() {
        let mut r = ColumnRng::at(1, 1, 1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.uniform_i64(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = ColumnRng::at(2, 2, 2);
        for _ in 0..10_000 {
            let v = r.uniform_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = ColumnRng::at(3, 3, 0);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for i in 0..n {
            let mut row = ColumnRng::at(3, 3, i);
            let v = row.gaussian_with(200.0, 50.0);
            sum += v;
            sumsq += v * v;
        }
        let _ = r.next_u64();
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 200.0).abs() < 1.0, "mean {mean}");
        assert!((var.sqrt() - 50.0).abs() < 1.0, "std {}", var.sqrt());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut counts = [0usize; 3];
        for i in 0..30_000 {
            let mut r = ColumnRng::at(4, 4, i);
            counts[r.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let f2 = counts[2] as f64 / 30_000.0;
        assert!((f2 - 0.7).abs() < 0.02, "{f2}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = ColumnRng::at(5, 5, 5);
        let p = r.permutation(99);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..99).collect::<Vec<_>>());
    }

    #[test]
    fn permutations_differ_across_streams() {
        let p1 = ColumnRng::at(5, 10, 0).permutation(99);
        let p2 = ColumnRng::at(5, 11, 0).permutation(99);
        assert_ne!(p1, p2);
    }

    /// Pins the emitted sequence to the classic increment-then-finalize
    /// splitmix64 — the exact stream the differential tests were seeded
    /// with before the helper was shared, so routing floors there hold.
    #[test]
    fn splitmix_matches_inline_form() {
        let mut shared = SplitMix64(0xDEAD_BEEF);
        let mut state: u64 = 0xDEAD_BEEF;
        for _ in 0..64 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            assert_eq!(shared.next_u64(), z);
        }
    }

    #[test]
    fn splitmix_chance_extremes() {
        let mut r = SplitMix64(7);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }
}
