//! Differential window-function harness: pins the serial
//! `exec.rs::window` semantics — PARTITION BY with NULL keys, the
//! default frame (range unbounded preceding → current peer group),
//! rank/dense_rank tie handling — before the planned parallelization
//! lands. A seeded generator produces window queries over a synthetic
//! NULL- and tie-heavy table; every query runs on the row path (the
//! oracle) and the columnar path (`force`) at 1/2/8 workers. Window
//! evaluation itself is serial on every path, but its *input* can come
//! from a columnar child, so the window functions used here are all
//! tie-stable (ranks, peer-group aggregates, ROW_NUMBER over a unique
//! key) — their output must not depend on child row order.

use std::sync::Arc;

use tpcds_repro::engine::{ColumnMeta, ColumnarMode, ExecOptions};
use tpcds_repro::synth::diff::run_differential;
use tpcds_repro::types::rng::{test_seed, SplitMix64};
use tpcds_repro::types::{DataType, Row, Value};
use tpcds_repro::Database;

fn int_meta(name: &str) -> ColumnMeta {
    ColumnMeta {
        name: name.into(),
        dtype: DataType::Int,
    }
}

/// One wide table past the inline-parallelism threshold: a unique pk, a
/// NULL-able low-NDV partition key, a NULL-able duplicate-heavy order
/// key (many ties), and a value column.
fn build_db(rng: &mut SplitMix64, rows: usize) -> Database {
    let db = Database::new();
    let meta = vec![
        int_meta("w_pk"),
        int_meta("w_part"),
        int_meta("w_ord"),
        int_meta("w_val"),
    ];
    let rows: Vec<Row> = (0..rows as i64)
        .map(|i| {
            let part = if rng.below(8) == 0 {
                Value::Null
            } else {
                Value::Int(rng.below(5) as i64)
            };
            let ord = if rng.below(10) == 0 {
                Value::Null
            } else {
                Value::Int(rng.below(7) as i64)
            };
            vec![Value::Int(i), part, ord, Value::Int(rng.below(100) as i64)]
        })
        .collect();
    db.create_table_with_rows("win_t", meta, rows).unwrap();
    db.build_columnar_shadows();
    db
}

fn gen_query(rng: &mut SplitMix64) -> String {
    let call = match rng.below(6) {
        0 => "sum(w_val) over (partition by w_part)",
        1 => "sum(w_val) over (partition by w_part order by w_ord)",
        2 => "count(w_val) over (partition by w_part order by w_ord)",
        3 => "rank() over (partition by w_part order by w_ord)",
        4 => "dense_rank() over (partition by w_part order by w_ord)",
        _ => "row_number() over (partition by w_part order by w_pk)",
    };
    let filter = match rng.below(3) {
        0 => "",
        1 => " where w_val <= 60",
        _ => " where w_ord is not null",
    };
    format!("select w_pk, w_part, w_ord, {call} from win_t{filter}")
}

#[test]
fn seeded_window_queries_match_across_paths_and_workers() {
    let seed = test_seed(0x5EED11);
    eprintln!("differential_window seed: {seed} (override with TPCDS_TEST_SEED)");
    let mut rng = SplitMix64(seed);
    let db = Arc::new(build_db(&mut rng, 20_000));
    let snap = db.snapshot();
    for q in 0..30 {
        let sql = gen_query(&mut rng);
        if let Err(e) = run_differential(&db, &snap, &sql) {
            panic!("query {q} diverged: {e:?}\nseed: {seed}\nsql: {sql}");
        }
    }
}

/// Hand-computed semantics on a six-row fixture, asserted exactly:
/// * NULL partition keys form one partition;
/// * aggregate windows with ORDER BY use the default frame — a running
///   aggregate where all peers (tied order keys) share one value;
/// * RANK leaves gaps after ties, DENSE_RANK does not.
#[test]
fn window_semantics_pinned_on_fixture() {
    let db = Database::new();
    let meta = vec![int_meta("f_pk"), int_meta("f_part"), int_meta("f_ord")];
    let rows: Vec<Row> = vec![
        vec![Value::Int(1), Value::Int(1), Value::Int(10)],
        vec![Value::Int(2), Value::Int(1), Value::Int(10)],
        vec![Value::Int(3), Value::Int(1), Value::Int(20)],
        vec![Value::Int(4), Value::Null, Value::Int(5)],
        vec![Value::Int(5), Value::Null, Value::Int(7)],
        vec![Value::Int(6), Value::Null, Value::Int(5)],
    ];
    db.create_table_with_rows("f", meta, rows).unwrap();

    let opts = ExecOptions {
        columnar: ColumnarMode::Off,
        threads: Some(1),
    };
    let sql = "select f_pk, \
               rank() over (partition by f_part order by f_ord), \
               dense_rank() over (partition by f_part order by f_ord), \
               sum(f_ord) over (partition by f_part order by f_ord) \
               from f order by 1";
    let got = tpcds_repro::engine::query_with(&db, sql, opts).expect("fixture query");
    let expect: Vec<Row> = vec![
        // f_part = 1: ords 10,10,20 → ranks 1,1,3; dense 1,1,2;
        // running peer-group sums 20,20,40.
        vec![Value::Int(1), Value::Int(1), Value::Int(1), Value::Int(20)],
        vec![Value::Int(2), Value::Int(1), Value::Int(1), Value::Int(20)],
        vec![Value::Int(3), Value::Int(3), Value::Int(2), Value::Int(40)],
        // f_part = NULL is ONE partition: ords 5,7,5 → ranks 1,3,1;
        // dense 1,2,1; running sums 10,17,10.
        vec![Value::Int(4), Value::Int(1), Value::Int(1), Value::Int(10)],
        vec![Value::Int(5), Value::Int(3), Value::Int(2), Value::Int(17)],
        vec![Value::Int(6), Value::Int(1), Value::Int(1), Value::Int(10)],
    ];
    assert_eq!(got.rows, expect, "window fixture semantics drifted");
}
