//! dsdgen-style flat-file export: generate the 24 tables in parallel,
//! write them as pipe-delimited `.dat` files, read them back, and verify
//! the round trip — the "E" of ETL that the benchmark assumes as
//! generated flat files (paper §4.2).
//!
//! ```sh
//! cargo run --release --example data_export [scale_factor] [out_dir]
//! ```

use tpcds_repro::dgen::{flatfile, Generator};
use tpcds_repro::schema::Schema;

fn main() {
    let mut args = std::env::args().skip(1);
    let sf: f64 = args
        .next()
        .map(|s| s.parse().expect("scale factor"))
        .unwrap_or(0.01);
    let dir = std::path::PathBuf::from(
        args.next()
            .unwrap_or_else(|| "target/tpcds_data".to_string()),
    );

    let generator = Generator::new(sf);
    let schema = Schema::tpcds();
    println!("Generating TPC-DS at SF {sf} into {}", dir.display());

    let mut total_rows = 0u64;
    let mut total_bytes = 0u64;
    for t in schema.tables() {
        let rows = generator.generate_parallel(t.name, 4);
        flatfile::write_table(&dir, t.name, &rows).expect("write");
        let bytes = std::fs::metadata(dir.join(format!("{}.dat", t.name)))
            .expect("stat")
            .len();
        println!(
            "  {:<24} {:>9} rows  {:>12} bytes  ({:>5.1} B/row avg)",
            t.name,
            rows.len(),
            bytes,
            bytes as f64 / rows.len().max(1) as f64
        );
        total_rows += rows.len() as u64;
        total_bytes += bytes;

        // Round-trip validation.
        let back = flatfile::read_table(&dir, t).expect("read");
        assert_eq!(rows, back, "{} does not round-trip", t.name);
    }
    println!("\nTotal: {total_rows} rows, {total_bytes} bytes — all tables verified round-trip.");
}
