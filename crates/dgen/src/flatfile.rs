//! dsdgen-compatible flat files: pipe-terminated fields, one row per line,
//! NULL as the empty field. These are the "generated flat files" that stand
//! in for the extraction step of ETL (paper §4.2).

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use tpcds_schema::TableDef;
use tpcds_types::{DataType, Date, Row, Value};

/// Writes rows in dsdgen's flat format: every field terminated by `|`.
/// Returns the number of bytes written.
pub fn write_rows<W: Write>(w: &mut W, rows: &[Row]) -> io::Result<u64> {
    let mut out = BufWriter::new(w);
    let mut bytes: u64 = 0;
    for row in rows {
        for v in row {
            let field = v.to_flat();
            out.write_all(field.as_bytes())?;
            out.write_all(b"|")?;
            bytes += field.len() as u64 + 1;
        }
        out.write_all(b"\n")?;
        bytes += 1;
    }
    out.flush()?;
    Ok(bytes)
}

/// Writes rows to `<dir>/<table>.dat`. Returns the number of bytes written.
pub fn write_table(dir: &Path, table: &str, rows: &[Row]) -> io::Result<u64> {
    std::fs::create_dir_all(dir)?;
    let span = tpcds_obs::span("dgen", "write_table").field("table", table);
    let mut f = std::fs::File::create(dir.join(format!("{table}.dat")))?;
    let bytes = write_rows(&mut f, rows)?;
    span.field("rows", rows.len())
        .field("bytes", bytes)
        .finish();
    if tpcds_obs::is_enabled() {
        tpcds_obs::counter(
            "dgen",
            "gen.bytes",
            bytes as f64,
            &[("table", table.into())],
        );
    }
    Ok(bytes)
}

/// Parses one flat field into a typed [`Value`] according to the column's
/// declared type; empty fields are NULL.
pub fn parse_field(s: &str, dt: DataType) -> Result<Value, String> {
    if s.is_empty() {
        return Ok(Value::Null);
    }
    match dt {
        DataType::Int => s
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| format!("bad int {s:?}: {e}")),
        DataType::Decimal => s
            .parse()
            .map(Value::Decimal)
            .map_err(|e| format!("bad decimal {s:?}: {e}")),
        DataType::Date => s
            .parse::<Date>()
            .map(Value::Date)
            .map_err(|e| format!("bad date {s:?}: {e}")),
        DataType::Str => Ok(Value::str(s)),
        DataType::Time => s
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| format!("bad time {s:?}: {e}")),
        DataType::Bool => Err("flat files carry no booleans".to_string()),
    }
}

/// Reads a flat file back into typed rows using the table definition.
pub fn read_rows<R: Read>(r: R, table: &TableDef) -> Result<Vec<Row>, String> {
    let reader = BufReader::new(r);
    let mut rows = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if line.is_empty() {
            continue;
        }
        let mut fields: Vec<&str> = line.split('|').collect();
        // Every field is terminated by '|', so the final split piece is the
        // empty remainder after the last terminator.
        if fields.last() == Some(&"") {
            fields.pop();
        }
        if fields.len() != table.width() {
            return Err(format!(
                "line {}: {} fields, schema {} has {}",
                lineno + 1,
                fields.len(),
                table.name,
                table.width()
            ));
        }
        let mut row = Vec::with_capacity(fields.len());
        for (f, col) in fields.iter().zip(&table.columns) {
            row.push(
                parse_field(f, col.ctype.data_type())
                    .map_err(|e| format!("line {}, column {}: {e}", lineno + 1, col.name))?,
            );
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Reads `<dir>/<table>.dat`.
pub fn read_table(dir: &Path, table: &TableDef) -> Result<Vec<Row>, String> {
    let f = std::fs::File::open(dir.join(format!("{}.dat", table.name)))
        .map_err(|e| format!("open {}: {e}", table.name))?;
    read_rows(f, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Generator;
    use tpcds_schema::Schema;

    #[test]
    fn round_trip_every_table() {
        let g = Generator::new(0.01);
        let schema = Schema::tpcds();
        for name in tpcds_schema::tables::TABLE_NAMES {
            let rows = g.generate_range(name, 0, 40);
            let mut buf = Vec::new();
            write_rows(&mut buf, &rows).unwrap();
            let table = schema.table(name).unwrap();
            let back = read_rows(buf.as_slice(), table).unwrap();
            assert_eq!(rows.len(), back.len(), "{name}");
            for (a, b) in rows.iter().zip(&back) {
                assert_eq!(a, b, "{name} row differs after round trip");
            }
        }
    }

    #[test]
    fn nulls_round_trip_as_empty_fields() {
        let mut buf = Vec::new();
        write_rows(
            &mut buf,
            &[vec![Value::Int(1), Value::Null, Value::str("x")]],
        )
        .unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "1||x|\n");
    }

    #[test]
    fn field_count_mismatch_is_an_error() {
        let schema = Schema::tpcds();
        let t = schema.table("income_band").unwrap();
        let err = read_rows("1|2|\n".as_bytes(), t).unwrap_err();
        assert!(err.contains("2 fields"), "{err}");
    }

    #[test]
    fn bad_typed_field_is_an_error() {
        let schema = Schema::tpcds();
        let t = schema.table("income_band").unwrap();
        let err = read_rows("1|x|3|\n".as_bytes(), t).unwrap_err();
        assert!(err.contains("bad int"), "{err}");
    }
}
