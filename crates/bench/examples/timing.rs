//! Per-query timing survey: executes all 99 benchmark queries once
//! (stream 0) and prints the slowest queries, per-class totals, and the
//! overall elapsed time — handy for engine-optimization work.
//!
//! ```sh
//! cargo run --release -p tpcds-bench --example timing [scale_factor]
//! ```

use std::collections::HashMap;
use std::time::Duration;
use tpcds_core::{QueryClass, TpcDs};

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale factor"))
        .unwrap_or(0.01);
    let tpcds = TpcDs::builder()
        .scale_factor(sf)
        .reporting_aux(true)
        .build()
        .expect("generate + load");

    let mut times: Vec<(u32, Duration, usize)> = Vec::new();
    for id in 1..=99u32 {
        let start = std::time::Instant::now();
        match tpcds.run_benchmark_query(id, 0) {
            Ok(r) => times.push((id, start.elapsed(), r.rows.len())),
            Err(e) => {
                eprintln!("q{id} ERROR: {e}");
                times.push((id, start.elapsed(), 0));
            }
        }
    }

    let total: Duration = times.iter().map(|x| x.1).sum();
    println!("total for 99 queries at SF {sf}: {total:?}\n");

    println!("slowest queries:");
    let mut by_time = times.clone();
    by_time.sort_by_key(|x| std::cmp::Reverse(x.1));
    for (id, elapsed, rows) in by_time.iter().take(10) {
        println!("  q{id:<3} {elapsed:>12.3?}  ({rows} rows)");
    }

    let mut per_class: HashMap<QueryClass, Duration> = HashMap::new();
    for t in tpcds.workload().templates() {
        if let Some((_, elapsed, _)) = times.iter().find(|(id, _, _)| *id == t.id) {
            *per_class.entry(t.class).or_default() += *elapsed;
        }
    }
    println!("\nelapsed by query class:");
    let mut entries: Vec<_> = per_class.into_iter().collect();
    entries.sort_by_key(|x| std::cmp::Reverse(x.1));
    for (class, elapsed) in entries {
        println!("  {class:<16?} {elapsed:>12.3?}");
    }
}
