//! Microbenchmarks of the data maintenance operations (Figures 8-10):
//! dimension updates, fact inserts with surrogate resolution, and the
//! clustered delete.

use tpcds_bench::harness::bench_with_setup;
use tpcds_core::{maint, TpcDs};

fn load() -> TpcDs {
    TpcDs::builder().scale_factor(0.01).build().expect("load")
}

fn main() {
    bench_with_setup("maint/fig8_non_history_update", 10, load, |t| {
        maint::update_non_history_dimension(t.database(), t.generator(), "customer", 0)
            .expect("fig8");
    });
    bench_with_setup("maint/fig9_history_update", 10, load, |t| {
        let when = maint::refresh_date(t.generator(), 0);
        maint::update_history_dimension(t.database(), t.generator(), "item", 0, when)
            .expect("fig9");
    });
    bench_with_setup("maint/fig10_fact_insert", 10, load, |t| {
        maint::insert_channel(
            t.database(),
            t.generator(),
            "insert_store_channel",
            &["store_sales", "store_returns"],
            0,
        )
        .expect("fig10");
    });
    bench_with_setup("maint/clustered_delete", 10, load, |t| {
        maint::delete_fact_range(t.database(), t.generator(), 0).expect("delete");
    });
}
