#!/usr/bin/env sh
# End-to-end smoke of the client/server subsystem, as CI runs it:
#  1. boot `tpcds serve` (SF 0.005) with the Prometheus endpoint on;
#  2. drive it with scripted `tpcds client` calls: ping, a plain query,
#     a snapshot-pinned query, explain, stats;
#  3. scrape /metrics and require the server.* gauges and snapshot.*
#     series to be present;
#  4. shut it down over the wire and check the process exits cleanly.
#
# Knobs:
#   SERVE_ADDR    server bind address  (default 127.0.0.1:9955)
#   METRICS_ADDR  metrics bind address (default 127.0.0.1:9956)
set -eux

export CARGO_NET_OFFLINE=true

ADDR="${SERVE_ADDR:-127.0.0.1:9955}"
METRICS="${METRICS_ADDR:-127.0.0.1:9956}"
TPCDS=./target/release/tpcds

cargo build --release -p tpcds-cli

"$TPCDS" serve --scale 0.005 --addr "$ADDR" --metrics-addr "$METRICS" \
    >server_smoke.log 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# Wait for the server to come up (the load takes a few seconds).
for _ in $(seq 1 120); do
    if "$TPCDS" client --addr "$ADDR" --ping >/dev/null 2>&1; then
        break
    fi
    sleep 1
done
"$TPCDS" client --addr "$ADDR" --ping

# A query against the head snapshot, and the version it ran at.
"$TPCDS" client --addr "$ADDR" --sql 'select count(*) c from store_sales' \
    | tee /dev/stderr | grep -q 'rows from snapshot v'

# Pin the current version explicitly and read it again.
VERSION=$("$TPCDS" client --addr "$ADDR" --sql 'select 1' \
    | sed -n 's/.*snapshot v\([0-9]*\).*/\1/p')
"$TPCDS" client --addr "$ADDR" --pin "$VERSION" \
    --sql 'select count(*) c from item' | grep -q "snapshot v$VERSION"

# Plans and server stats over the wire.
"$TPCDS" client --addr "$ADDR" --explain \
    --sql 'select d_year, count(*) from date_dim group by d_year' \
    | grep -q 'Scan date_dim'
"$TPCDS" client --addr "$ADDR" --stats | grep -q '"sessions_active"'

# Introspection over the wire: a client-assigned query_id must round-trip
# through the server and come back out of sys.query_log with a real
# (non-zero) wall time, and sys.sessions must show live connections.
"$TPCDS" client --addr "$ADDR" --query-id smoke-q1 \
    --sql 'select count(*) c from store_sales' \
    | grep -q 'query_id smoke-q1'
SESSIONS=$("$TPCDS" client --addr "$ADDR" \
    --sql 'select count(*) c from sys.sessions' \
    | sed -n '3s/^ *\([0-9][0-9]*\).*/\1/p')
test "$SESSIONS" -ge 1
LOGGED=$("$TPCDS" client --addr "$ADDR" \
    --sql "select wall_us from sys.query_log where query_id = 'smoke-q1'" \
    | sed -n '3s/^ *\([0-9][0-9]*\).*/\1/p')
test "$LOGGED" -gt 0
# The acceptance query shape, and the live-view CLI built on the same
# tables.
"$TPCDS" client --addr "$ADDR" \
    --sql 'select * from sys.query_log order by wall_us desc limit 5' \
    | grep -q 'smoke-q1'
"$TPCDS" top --addr "$ADDR" --once | grep -q 'SESSIONS'

# The Prometheus endpoint exports the server and snapshot series
# (names are prefixed `tpcds_` and dots become underscores).
METRICS_OUT=$(curl -sf "http://$METRICS/metrics")
echo "$METRICS_OUT" | grep -q '^tpcds_server_sessions_active'
echo "$METRICS_OUT" | grep -q '^tpcds_server_queries_inflight'
echo "$METRICS_OUT" | grep -q '^tpcds_server_admission_wait_us'
echo "$METRICS_OUT" | grep -q '^tpcds_server_queries_total'
echo "$METRICS_OUT" | grep -q '^tpcds_snapshot_version'

# Clean shutdown over the wire: the serve process must exit by itself.
"$TPCDS" client --addr "$ADDR" --shutdown
for _ in $(seq 1 30); do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        break
    fi
    sleep 1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server did not exit after shutdown" >&2
    exit 1
fi
trap - EXIT
grep -q 'server stopped' server_smoke.log
echo "server smoke OK"
