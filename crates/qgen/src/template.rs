//! The query-template mini-language (our dsqgen, paper §4.1 and its
//! reference \[10\]).
//!
//! A template is a text block of `define NAME = <generator>;` headers
//! followed by SQL containing `[NAME]` substitution points. The generators
//! are comparability-zone-aware: date substitutions draw from one zone so
//! every generated instance of the template qualifies a near-identical
//! number of rows (paper §3.2).

use crate::distributions::named_list;
use tpcds_dgen::{SalesDateDistribution, SalesZone};
use tpcds_types::rng::ColumnRng;
use tpcds_types::Date;

/// Error raised while parsing or instantiating a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateError(pub String);

impl std::fmt::Display for TemplateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "template error: {}", self.0)
    }
}
impl std::error::Error for TemplateError {}

type Result<T> = std::result::Result<T, TemplateError>;

/// A substitution generator.
#[derive(Debug, Clone, PartialEq)]
pub enum GenExpr {
    /// `uniform(lo, hi)` — integer in the inclusive range.
    Uniform(i64, i64),
    /// `pick(dist)` — one value from a named word list.
    Pick(String),
    /// `list(dist, n)` — n distinct values from a named word list, emitted
    /// as a quoted SQL in-list body: `'a', 'b', 'c'`.
    List(String, usize),
    /// `date_in_zone(zone)` — a date from one comparability zone of the
    /// sales window (zone ∈ low | medium | high), emitted as ISO text.
    DateInZone(SalesZone),
    /// `year()` — a year of the sales window.
    Year,
    /// `agg()` — one of the exchangeable aggregate function names
    /// (paper: "exchanging aggregations, such as max, min").
    Agg,
    /// `text('a', 'b', ...)` — one of the literal options, verbatim.
    Text(Vec<String>),
}

impl GenExpr {
    /// Parses one generator expression.
    pub fn parse(src: &str) -> Result<GenExpr> {
        let src = src.trim();
        let (name, args) = match src.find('(') {
            Some(i) if src.ends_with(')') => (&src[..i], &src[i + 1..src.len() - 1]),
            _ => return Err(TemplateError(format!("bad generator expression {src:?}"))),
        };
        let parts: Vec<&str> = if args.trim().is_empty() {
            Vec::new()
        } else {
            split_args(args)
        };
        match name.trim() {
            "uniform" => {
                if parts.len() != 2 {
                    return Err(TemplateError("uniform(lo, hi) takes 2 args".into()));
                }
                let lo = parse_int(parts[0])?;
                let hi = parse_int(parts[1])?;
                if lo > hi {
                    return Err(TemplateError(format!(
                        "uniform range inverted: {lo} > {hi}"
                    )));
                }
                Ok(GenExpr::Uniform(lo, hi))
            }
            "pick" => {
                if parts.len() != 1 {
                    return Err(TemplateError("pick(dist) takes 1 arg".into()));
                }
                check_dist(parts[0])?;
                Ok(GenExpr::Pick(parts[0].trim().to_string()))
            }
            "list" => {
                if parts.len() != 2 {
                    return Err(TemplateError("list(dist, n) takes 2 args".into()));
                }
                check_dist(parts[0])?;
                let n = parse_int(parts[1])? as usize;
                Ok(GenExpr::List(parts[0].trim().to_string(), n))
            }
            "date_in_zone" => {
                if parts.len() != 1 {
                    return Err(TemplateError("date_in_zone(zone) takes 1 arg".into()));
                }
                let zone = match parts[0].trim() {
                    "low" => SalesZone::Low,
                    "medium" => SalesZone::Medium,
                    "high" => SalesZone::High,
                    other => return Err(TemplateError(format!("unknown zone {other}"))),
                };
                Ok(GenExpr::DateInZone(zone))
            }
            "year" => Ok(GenExpr::Year),
            "agg" => Ok(GenExpr::Agg),
            "text" => {
                if parts.is_empty() {
                    return Err(TemplateError("text(...) needs options".into()));
                }
                let opts = parts
                    .iter()
                    .map(|p| {
                        let p = p.trim();
                        p.strip_prefix('\'')
                            .and_then(|p| p.strip_suffix('\''))
                            .map(str::to_string)
                            .ok_or_else(|| TemplateError(format!("text option {p:?} not quoted")))
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(GenExpr::Text(opts))
            }
            other => Err(TemplateError(format!("unknown generator {other}"))),
        }
    }

    /// Draws one substitution value (as SQL text).
    pub fn draw(&self, rng: &mut ColumnRng, dates: &SalesDateDistribution) -> String {
        match self {
            GenExpr::Uniform(lo, hi) => rng.uniform_i64(*lo, *hi).to_string(),
            GenExpr::Pick(dist) => {
                let list = named_list(dist).expect("checked at parse");
                list[rng.uniform_i64(0, list.len() as i64 - 1) as usize].to_string()
            }
            GenExpr::List(dist, n) => {
                let list = named_list(dist).expect("checked at parse");
                let n = (*n).min(list.len());
                let perm = rng.permutation(list.len());
                let mut vals: Vec<&str> = perm[..n].iter().map(|&i| list[i]).collect();
                vals.sort_unstable();
                vals.iter()
                    .map(|v| format!("'{}'", v.replace('\'', "''")))
                    .collect::<Vec<_>>()
                    .join(", ")
            }
            GenExpr::DateInZone(zone) => {
                // Pick a year, then a uniform day within the zone: all days
                // of a zone have identical data likelihood.
                let year = 1998 + rng.uniform_i64(0, 4) as i32;
                let days = dates.zone_days(year, *zone);
                days[rng.uniform_i64(0, days.len() as i64 - 1) as usize].to_string()
            }
            GenExpr::Year => (1998 + rng.uniform_i64(0, 4)).to_string(),
            GenExpr::Agg => {
                ["sum", "min", "max", "avg"][rng.uniform_i64(0, 3) as usize].to_string()
            }
            GenExpr::Text(opts) => opts[rng.uniform_i64(0, opts.len() as i64 - 1) as usize].clone(),
        }
    }
}

fn parse_int(s: &str) -> Result<i64> {
    s.trim()
        .parse()
        .map_err(|e| TemplateError(format!("bad integer {s:?}: {e}")))
}

fn check_dist(name: &str) -> Result<()> {
    named_list(name.trim())
        .map(|_| ())
        .ok_or_else(|| TemplateError(format!("unknown distribution {name:?}")))
}

/// Splits generator arguments on commas not inside quotes.
fn split_args(args: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth_quote = false;
    let mut start = 0;
    for (i, c) in args.char_indices() {
        match c {
            '\'' => depth_quote = !depth_quote,
            ',' if !depth_quote => {
                out.push(&args[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&args[start..]);
    out
}

/// Query classification (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// References only the ad-hoc part (store / web channels).
    AdHoc,
    /// References only the reporting part (catalog channel).
    Reporting,
    /// References both parts.
    Hybrid,
    /// A sequence of logically affiliated drill queries.
    IterativeOlap,
    /// Large-output query feeding mining tools.
    DataMining,
}

/// A parsed query template.
#[derive(Debug, Clone)]
pub struct Template {
    /// Query number (1..=99).
    pub id: u32,
    /// Explicit classification.
    pub class: QueryClass,
    /// `define` headers in declaration order.
    pub defines: Vec<(String, GenExpr)>,
    /// The SQL body with `[NAME]` placeholders.
    pub sql: String,
}

impl Template {
    /// Parses a template source block. Format:
    ///
    /// ```text
    /// -- class: adhoc
    /// define YEAR = year();
    /// select ... where d_year = [YEAR] ...
    /// ```
    pub fn parse(id: u32, src: &str) -> Result<Template> {
        let mut class = None;
        let mut defines = Vec::new();
        let mut sql_lines = Vec::new();
        let mut in_sql = false;
        for line in src.lines() {
            let trimmed = line.trim();
            if !in_sql {
                if trimmed.is_empty() {
                    continue;
                }
                if let Some(c) = trimmed.strip_prefix("-- class:") {
                    class = Some(match c.trim() {
                        "adhoc" => QueryClass::AdHoc,
                        "reporting" => QueryClass::Reporting,
                        "hybrid" => QueryClass::Hybrid,
                        "iterative" => QueryClass::IterativeOlap,
                        "mining" => QueryClass::DataMining,
                        other => return Err(TemplateError(format!("q{id}: bad class {other}"))),
                    });
                    continue;
                }
                if trimmed.starts_with("--") {
                    continue;
                }
                if let Some(rest) = trimmed.strip_prefix("define ") {
                    let (name, expr) = rest
                        .split_once('=')
                        .ok_or_else(|| TemplateError(format!("q{id}: bad define {trimmed:?}")))?;
                    let expr = expr
                        .trim()
                        .strip_suffix(';')
                        .ok_or_else(|| TemplateError(format!("q{id}: define must end with ;")))?;
                    defines.push((name.trim().to_uppercase(), GenExpr::parse(expr)?));
                    continue;
                }
                in_sql = true;
            }
            if in_sql {
                sql_lines.push(line);
            }
        }
        let sql = sql_lines.join("\n").trim().to_string();
        if sql.is_empty() {
            return Err(TemplateError(format!("q{id}: empty SQL body")));
        }
        let class = class.ok_or_else(|| TemplateError(format!("q{id}: missing -- class:")))?;
        let t = Template {
            id,
            class,
            defines,
            sql,
        };
        t.check_placeholders()?;
        Ok(t)
    }

    /// Every `[NAME]` placeholder must have a define; every define must be
    /// used.
    fn check_placeholders(&self) -> Result<()> {
        let used = placeholder_names(&self.sql);
        for (name, _) in &self.defines {
            if !used.iter().any(|(u, _)| u == name) {
                return Err(TemplateError(format!(
                    "q{}: define {name} never used",
                    self.id
                )));
            }
        }
        for (name, _) in &used {
            if !self.defines.iter().any(|(d, _)| d == name) {
                return Err(TemplateError(format!(
                    "q{}: placeholder [{name}] has no define",
                    self.id
                )));
            }
        }
        Ok(())
    }

    /// Instantiates the template for `(seed, stream)`, producing executable
    /// SQL. Deterministic: the same coordinates give the same query.
    pub fn instantiate(
        &self,
        seed: u64,
        stream: u64,
        dates: &SalesDateDistribution,
    ) -> Result<String> {
        let mut rng = ColumnRng::at(seed, qgen_stream(self.id), stream);
        let mut values: Vec<(String, String)> = Vec::new();
        for (name, gen) in &self.defines {
            values.push((name.clone(), gen.draw(&mut rng, dates)));
        }
        substitute(&self.sql, &values, self.id)
    }
}

/// Stream id for a template's substitution RNG (disjoint from the data
/// generator's table streams).
fn qgen_stream(id: u32) -> u64 {
    (0x51_47 << 32) | id as u64
}

/// Finds `[NAME]` / `[NAME+n]` / `[NAME-n]` placeholders.
fn placeholder_names(sql: &str) -> Vec<(String, i32)> {
    let mut out = Vec::new();
    let bytes = sql.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' {
            if let Some(end) = sql[i + 1..].find(']') {
                let inner = &sql[i + 1..i + 1 + end];
                let (name, offset) = parse_placeholder(inner);
                if !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    out.push((name, offset));
                }
                i += end + 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn parse_placeholder(inner: &str) -> (String, i32) {
    if let Some((name, off)) = inner.split_once('+') {
        if let Ok(n) = off.trim().parse::<i32>() {
            return (name.trim().to_uppercase(), n);
        }
    }
    if let Some((name, off)) = inner.split_once('-') {
        if let Ok(n) = off.trim().parse::<i32>() {
            return (name.trim().to_uppercase(), -n);
        }
    }
    (inner.trim().to_uppercase(), 0)
}

/// Performs placeholder substitution. `[DATE+30]` on an ISO-date value adds
/// days; on an integer value adds numerically.
fn substitute(sql: &str, values: &[(String, String)], id: u32) -> Result<String> {
    let mut out = String::with_capacity(sql.len());
    let mut rest = sql;
    while let Some(start) = rest.find('[') {
        out.push_str(&rest[..start]);
        let after = &rest[start + 1..];
        let end = after
            .find(']')
            .ok_or_else(|| TemplateError(format!("q{id}: unterminated placeholder")))?;
        let inner = &after[..end];
        let (name, offset) = parse_placeholder(inner);
        let value = values
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| TemplateError(format!("q{id}: no value for [{name}]")))?;
        let rendered = if offset != 0 {
            if let Ok(d) = value.parse::<Date>() {
                d.add_days(offset).to_string()
            } else if let Ok(n) = value.parse::<i64>() {
                (n + offset as i64).to_string()
            } else {
                return Err(TemplateError(format!(
                    "q{id}: cannot offset non-date, non-integer value {value:?}"
                )));
            }
        } else {
            value
        };
        out.push_str(&rendered);
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dates() -> SalesDateDistribution {
        SalesDateDistribution::tpcds()
    }

    #[test]
    fn parse_generators() {
        assert_eq!(
            GenExpr::parse("uniform(1, 10)").unwrap(),
            GenExpr::Uniform(1, 10)
        );
        assert_eq!(GenExpr::parse("year()").unwrap(), GenExpr::Year);
        assert_eq!(
            GenExpr::parse("date_in_zone(high)").unwrap(),
            GenExpr::DateInZone(SalesZone::High)
        );
        assert!(GenExpr::parse("uniform(10, 1)").is_err());
        assert!(GenExpr::parse("nonsense(1)").is_err());
        assert!(GenExpr::parse("pick(not_a_dist)").is_err());
    }

    #[test]
    fn text_options() {
        let g = GenExpr::parse("text('a', 'b, with comma', 'c')").unwrap();
        match &g {
            GenExpr::Text(opts) => assert_eq!(opts.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn template_round_trip() {
        let t = Template::parse(
            1,
            "-- class: adhoc\n\
             define YEAR = year();\n\
             define MONTH = uniform(11, 12);\n\
             select * from store_sales where d_year = [YEAR] and d_moy = [MONTH]",
        )
        .unwrap();
        let sql = t.instantiate(7, 0, &dates()).unwrap();
        assert!(!sql.contains('['), "{sql}");
        assert!(sql.contains("d_year = 19") || sql.contains("d_year = 20"));
    }

    #[test]
    fn instantiation_is_deterministic() {
        let t = Template::parse(
            2,
            "-- class: adhoc\ndefine A = uniform(1, 1000000);\nselect [A]",
        )
        .unwrap();
        let a = t.instantiate(42, 3, &dates()).unwrap();
        let b = t.instantiate(42, 3, &dates()).unwrap();
        let c = t.instantiate(42, 4, &dates()).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "different streams draw different values");
    }

    #[test]
    fn date_offsets() {
        let t = Template::parse(
            3,
            "-- class: reporting\n\
             define SDATE = date_in_zone(low);\n\
             select * from x where d between '[SDATE]' and '[SDATE+30]'",
        )
        .unwrap();
        let sql = t.instantiate(1, 0, &dates()).unwrap();
        // Extract the two dates and verify the 30-day gap.
        let parts: Vec<&str> = sql.split('\'').collect();
        let d1: Date = parts[1].parse().unwrap();
        let d2: Date = parts[3].parse().unwrap();
        assert_eq!(d2.days_since(&d1), 30);
    }

    #[test]
    fn unused_define_rejected() {
        assert!(Template::parse(4, "-- class: adhoc\ndefine A = year();\nselect 1").is_err());
    }

    #[test]
    fn unknown_placeholder_rejected() {
        assert!(Template::parse(5, "-- class: adhoc\nselect [NOPE]").is_err());
    }

    #[test]
    fn zone_substitutions_stay_in_zone() {
        let t = Template::parse(
            6,
            "-- class: adhoc\ndefine D = date_in_zone(high);\nselect '[D]'",
        )
        .unwrap();
        for stream in 0..50 {
            let sql = t.instantiate(9, stream, &dates()).unwrap();
            let date: Date = sql.split('\'').nth(1).unwrap().parse().unwrap();
            assert!(date.month() >= 11, "{date} not in high zone");
        }
    }

    #[test]
    fn list_draws_distinct_sorted_values() {
        let t = Template::parse(
            7,
            "-- class: adhoc\ndefine CATS = list(categories, 3);\nselect * from t where c in ([CATS])",
        )
        .unwrap();
        let sql = t.instantiate(11, 0, &dates()).unwrap();
        let n = sql.matches('\'').count();
        assert_eq!(n, 6, "three quoted values: {sql}");
    }
}
