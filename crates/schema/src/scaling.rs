//! The cardinality scaling model (paper §3.1, Table 2).
//!
//! Fact tables scale linearly with the scale factor; dimensions scale
//! sub-linearly; a handful of dimensions are static. We encode each table
//! as a set of (scale factor, row count) *anchors* — the paper's Table 2
//! values where the paper gives them, specification-aligned values
//! elsewhere — and interpolate geometrically (linearly in log-log space)
//! between anchors. At the published scale factors the model reproduces the
//! paper's numbers exactly; at the fractional "virtual" scale factors we
//! execute on one machine, it yields proportionate miniatures.

use std::collections::BTreeMap;

/// The discrete scale factors at which TPC-DS results may be published
/// (paper §3: 100, 300, 1000, 3000, 10000, 30000, 100000 — the text's
/// second "3000" is an obvious typo for 30000).
pub const VALID_SCALE_FACTORS: [u32; 7] = [100, 300, 1000, 3000, 10000, 30000, 100000];

/// Scaling behaviour of one table.
#[derive(Clone, Debug)]
pub enum ScalingLaw {
    /// Row count is the same at every scale factor.
    Static(u64),
    /// Log-log interpolation between `(sf, rows)` anchors; linear
    /// extrapolation below the first anchor (facts) or slope-following
    /// extrapolation with a floor (dimensions).
    Anchored {
        /// `(scale factor, rows)` pairs in increasing scale-factor order.
        anchors: Vec<(f64, f64)>,
        /// Minimum row count at any scale factor (keeps tiny virtual scale
        /// factors usable: a data set always has a few stores, items, ...).
        min_rows: u64,
    },
}

impl ScalingLaw {
    fn anchored(anchors: &[(f64, f64)], min_rows: u64) -> Self {
        debug_assert!(anchors.windows(2).all(|w| w[0].0 < w[1].0));
        ScalingLaw::Anchored {
            anchors: anchors.to_vec(),
            min_rows,
        }
    }

    /// Row count at the given (possibly fractional) scale factor.
    pub fn rows_at(&self, sf: f64) -> u64 {
        assert!(sf > 0.0, "scale factor must be positive");
        match self {
            ScalingLaw::Static(n) => *n,
            ScalingLaw::Anchored { anchors, min_rows } => {
                // Below the first published anchor (virtual scale factors)
                // shrink smoothly toward the floor at SF 0.001 so laptop
                // runs stay proportionate and small.
                let n = if sf < anchors[0].0 {
                    let lo = (0.001f64, (*min_rows).max(1) as f64);
                    interpolate(&[lo, anchors[0]], sf)
                } else {
                    interpolate(anchors, sf)
                };
                (n.round() as u64).max(*min_rows)
            }
        }
    }
}

/// Piecewise log-log interpolation with slope-following extrapolation
/// beyond the anchor range.
fn interpolate(anchors: &[(f64, f64)], sf: f64) -> f64 {
    debug_assert!(!anchors.is_empty());
    if anchors.len() == 1 {
        // Single anchor: assume linear scaling through it.
        return anchors[0].1 * sf / anchors[0].0;
    }
    // Find the segment; clamp to the outermost segments for extrapolation.
    let mut i = 0;
    while i + 2 < anchors.len() && sf > anchors[i + 1].0 {
        i += 1;
    }
    let (x0, y0) = anchors[i];
    let (x1, y1) = anchors[i + 1];
    let slope = (y1.ln() - y0.ln()) / (x1.ln() - x0.ln());
    (y0.ln() + slope * (sf.ln() - x0.ln())).exp()
}

/// The full scaling model: one law per table.
#[derive(Clone, Debug)]
pub struct ScalingModel {
    laws: BTreeMap<&'static str, ScalingLaw>,
}

impl ScalingModel {
    /// Builds the TPC-DS scaling model. Anchor provenance:
    /// * `store_sales`, `store_returns`, `store`, `customer`, `item` — the
    ///   paper's Table 2, verbatim.
    /// * static dimensions — the specification's fixed cardinalities.
    /// * everything else — specification-aligned values (documented in
    ///   DESIGN.md as approximations; the paper does not list them).
    pub fn tpcds() -> Self {
        let mut laws: BTreeMap<&'static str, ScalingLaw> = BTreeMap::new();
        let m = 1.0e6;
        let b = 1.0e9;

        // --- Paper Table 2 anchors (exact) ---
        laws.insert(
            "store_sales",
            ScalingLaw::anchored(
                &[
                    (100.0, 288.0 * m),
                    (1000.0, 2.9 * b),
                    (10_000.0, 30.0 * b),
                    (100_000.0, 297.0 * b),
                ],
                100,
            ),
        );
        laws.insert(
            "store_returns",
            ScalingLaw::anchored(
                &[
                    (100.0, 14.0 * m),
                    (1000.0, 147.0 * m),
                    (10_000.0, 1.5 * b),
                    (100_000.0, 15.0 * b),
                ],
                10,
            ),
        );
        laws.insert(
            "store",
            ScalingLaw::anchored(
                &[
                    (100.0, 200.0),
                    (1000.0, 500.0),
                    (10_000.0, 750.0),
                    (100_000.0, 1500.0),
                ],
                2,
            ),
        );
        laws.insert(
            "customer",
            ScalingLaw::anchored(
                &[
                    (100.0, 2.0 * m),
                    (1000.0, 8.0 * m),
                    (10_000.0, 20.0 * m),
                    (100_000.0, 100.0 * m),
                ],
                100,
            ),
        );
        laws.insert(
            "item",
            ScalingLaw::anchored(
                &[
                    (100.0, 200_000.0),
                    (1000.0, 300_000.0),
                    (10_000.0, 400_000.0),
                    (100_000.0, 500_000.0),
                ],
                100,
            ),
        );

        // --- Static dimensions (specification) ---
        laws.insert("date_dim", ScalingLaw::Static(73_049));
        laws.insert("time_dim", ScalingLaw::Static(86_400));
        laws.insert("income_band", ScalingLaw::Static(20));
        laws.insert("ship_mode", ScalingLaw::Static(20));
        // customer_demographics is the cartesian product of its attribute
        // domains (1,920,800 rows) at every published scale factor. For
        // virtual scale factors below 1 we shrink it proportionally so
        // laptop runs stay fast; see Generator docs.
        laws.insert("customer_demographics", ScalingLaw::Static(1_920_800));
        laws.insert("household_demographics", ScalingLaw::Static(7_200));

        // --- Specification-aligned approximations ---
        laws.insert(
            "reason",
            ScalingLaw::anchored(
                &[
                    (100.0, 55.0),
                    (1000.0, 65.0),
                    (10_000.0, 70.0),
                    (100_000.0, 75.0),
                ],
                5,
            ),
        );
        laws.insert(
            "customer_address",
            ScalingLaw::anchored(
                &[
                    (100.0, 1.0 * m),
                    (1000.0, 4.0 * m),
                    (10_000.0, 10.0 * m),
                    (100_000.0, 50.0 * m),
                ],
                50,
            ),
        );
        laws.insert(
            "call_center",
            ScalingLaw::anchored(
                &[
                    (100.0, 30.0),
                    (1000.0, 42.0),
                    (10_000.0, 54.0),
                    (100_000.0, 60.0),
                ],
                2,
            ),
        );
        laws.insert(
            "web_site",
            ScalingLaw::anchored(
                &[
                    (100.0, 24.0),
                    (1000.0, 54.0),
                    (10_000.0, 78.0),
                    (100_000.0, 96.0),
                ],
                2,
            ),
        );
        laws.insert(
            "web_page",
            ScalingLaw::anchored(
                &[
                    (100.0, 2040.0),
                    (1000.0, 3000.0),
                    (10_000.0, 4002.0),
                    (100_000.0, 5004.0),
                ],
                10,
            ),
        );
        laws.insert(
            "catalog_page",
            ScalingLaw::anchored(
                &[
                    (100.0, 20_400.0),
                    (1000.0, 30_000.0),
                    (10_000.0, 40_000.0),
                    (100_000.0, 50_000.0),
                ],
                100,
            ),
        );
        laws.insert(
            "warehouse",
            ScalingLaw::anchored(
                &[
                    (100.0, 15.0),
                    (1000.0, 20.0),
                    (10_000.0, 25.0),
                    (100_000.0, 30.0),
                ],
                2,
            ),
        );
        laws.insert(
            "promotion",
            ScalingLaw::anchored(
                &[
                    (100.0, 1000.0),
                    (1000.0, 1500.0),
                    (10_000.0, 2000.0),
                    (100_000.0, 2500.0),
                ],
                20,
            ),
        );

        // Catalog channel: half of store volume; web: a quarter; returns
        // about 10% of their channel's sales (store returns follow the
        // paper's ~4.9%).
        laws.insert(
            "catalog_sales",
            ScalingLaw::anchored(
                &[
                    (100.0, 144.0 * m),
                    (1000.0, 1.45 * b),
                    (10_000.0, 15.0 * b),
                    (100_000.0, 148.0 * b),
                ],
                50,
            ),
        );
        laws.insert(
            "catalog_returns",
            ScalingLaw::anchored(
                &[
                    (100.0, 14.4 * m),
                    (1000.0, 145.0 * m),
                    (10_000.0, 1.5 * b),
                    (100_000.0, 14.8 * b),
                ],
                5,
            ),
        );
        laws.insert(
            "web_sales",
            ScalingLaw::anchored(
                &[
                    (100.0, 72.0 * m),
                    (1000.0, 725.0 * m),
                    (10_000.0, 7.5 * b),
                    (100_000.0, 74.0 * b),
                ],
                25,
            ),
        );
        laws.insert(
            "web_returns",
            ScalingLaw::anchored(
                &[
                    (100.0, 7.2 * m),
                    (1000.0, 72.0 * m),
                    (10_000.0, 750.0 * m),
                    (100_000.0, 7.4 * b),
                ],
                3,
            ),
        );
        // Weekly snapshots of (item, warehouse) pairs.
        laws.insert(
            "inventory",
            ScalingLaw::anchored(
                &[
                    (100.0, 399.3 * m),
                    (1000.0, 783.0 * m),
                    (10_000.0, 1.31 * b),
                    (100_000.0, 1.96 * b),
                ],
                100,
            ),
        );

        ScalingModel { laws }
    }

    /// Row count of `table` at scale factor `sf` (GB of raw data).
    ///
    /// Panics if the table is unknown — the schema and the model are
    /// defined together, so an unknown name is a programming error.
    pub fn rows(&self, table: &str, sf: f64) -> u64 {
        let law = self
            .laws
            .get(table)
            .unwrap_or_else(|| panic!("no scaling law for table {table}"));
        let n = law.rows_at(sf);
        // Shrink the big static dimension on sub-1 virtual scale factors.
        if sf < 1.0 && table == "customer_demographics" {
            return ((n as f64 * sf).round() as u64).max(1000);
        }
        if sf < 1.0 && table == "time_dim" {
            // keep full time_dim: it is cheap and queries rely on full
            // coverage of the day
            return n;
        }
        n
    }

    /// The law for a table, if defined.
    pub fn law(&self, table: &str) -> Option<&ScalingLaw> {
        self.laws.get(table)
    }

    /// True when `sf` is one of the publication scale factors.
    pub fn is_valid_publication_sf(sf: f64) -> bool {
        VALID_SCALE_FACTORS
            .iter()
            .any(|&v| (sf - v as f64).abs() < f64::EPSILON)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_reproduced_exactly() {
        let m = ScalingModel::tpcds();
        // (table, [rows at 100, 1000, 10000, 100000]) — paper Table 2.
        let expect: &[(&str, [u64; 4])] = &[
            (
                "store_sales",
                [288_000_000, 2_900_000_000, 30_000_000_000, 297_000_000_000],
            ),
            (
                "store_returns",
                [14_000_000, 147_000_000, 1_500_000_000, 15_000_000_000],
            ),
            ("store", [200, 500, 750, 1500]),
            ("customer", [2_000_000, 8_000_000, 20_000_000, 100_000_000]),
            ("item", [200_000, 300_000, 400_000, 500_000]),
        ];
        for (table, rows) in expect {
            for (sf, want) in [100.0, 1000.0, 10_000.0, 100_000.0].iter().zip(rows) {
                assert_eq!(m.rows(table, *sf), *want, "{table} at SF {sf}");
            }
        }
    }

    #[test]
    fn interpolated_sfs_are_monotone() {
        let m = ScalingModel::tpcds();
        for table in ["store_sales", "customer", "item", "store", "web_sales"] {
            let mut prev = 0;
            for sf in [
                1.0, 10.0, 100.0, 300.0, 1000.0, 3000.0, 10_000.0, 30_000.0, 100_000.0,
            ] {
                let r = m.rows(table, sf);
                assert!(r >= prev, "{table} not monotone at SF {sf}: {r} < {prev}");
                prev = r;
            }
        }
    }

    #[test]
    fn facts_scale_roughly_linearly_dims_sublinearly() {
        let m = ScalingModel::tpcds();
        let fact_ratio = m.rows("store_sales", 1000.0) as f64 / m.rows("store_sales", 100.0) as f64;
        assert!(fact_ratio > 9.0 && fact_ratio < 11.0, "{fact_ratio}");
        let dim_ratio = m.rows("customer", 1000.0) as f64 / m.rows("customer", 100.0) as f64;
        assert!(dim_ratio < 5.0, "{dim_ratio}");
        let item_ratio = m.rows("item", 100_000.0) as f64 / m.rows("item", 100.0) as f64;
        assert!(item_ratio < 3.0, "items grow very slowly: {item_ratio}");
    }

    #[test]
    fn statics_do_not_scale() {
        let m = ScalingModel::tpcds();
        for table in [
            "date_dim",
            "time_dim",
            "income_band",
            "ship_mode",
            "household_demographics",
        ] {
            assert_eq!(m.rows(table, 100.0), m.rows(table, 100_000.0), "{table}");
        }
    }

    #[test]
    fn virtual_scale_factors_stay_small_but_nonempty() {
        let m = ScalingModel::tpcds();
        for table in crate::tables::TABLE_NAMES {
            let r = m.rows(table, 0.01);
            assert!(r > 0, "{table} empty at SF 0.01");
        }
        assert!(m.rows("store_sales", 0.01) < 100_000);
        assert!(m.rows("customer_demographics", 0.01) < 50_000);
    }

    #[test]
    fn paper_example_paragraph_holds_at_sf100() {
        // "58 Million items are sold per year by 2 Million customers in 200
        // stores" — store_sales covers 5 years, so per-year ≈ 288M / 5.
        let m = ScalingModel::tpcds();
        let per_year = m.rows("store_sales", 100.0) / 5;
        assert!((55_000_000..62_000_000).contains(&per_year), "{per_year}");
        assert_eq!(m.rows("customer", 100.0), 2_000_000);
        assert_eq!(m.rows("store", 100.0), 200);
    }

    #[test]
    fn publication_sf_validity() {
        assert!(ScalingModel::is_valid_publication_sf(300.0));
        assert!(!ScalingModel::is_valid_publication_sf(200.0));
        assert!(!ScalingModel::is_valid_publication_sf(0.5));
    }

    #[test]
    fn every_schema_table_has_a_law() {
        let m = ScalingModel::tpcds();
        for t in crate::tables::TABLE_NAMES {
            assert!(m.law(t).is_some(), "missing law for {t}");
        }
    }
}
