//! Integration: the paper's central query-comparability guarantee (§3.2),
//! checked per-template — substituted variants of the same template must
//! keep the qualifying work comparable.

use tpcds_repro::TpcDs;

/// Queries whose outer result is a stable aggregate over a zone-bound
/// window; across substitutions the result sizes must stay within the
/// same order of magnitude (the paper's "nearly identical" requirement,
/// loosened for virtual-scale noise).
#[test]
fn same_template_substitutions_produce_comparable_result_sizes() {
    let tpcds = TpcDs::builder()
        .scale_factor(0.02)
        .reporting_aux(true)
        .build()
        .expect("load");
    // Templates with stable output shapes (grouped reports).
    for id in [3u32, 27, 42, 43, 52, 55, 98] {
        let mut sizes = Vec::new();
        for stream in 0..4 {
            let r = tpcds
                .run_benchmark_query(id, stream)
                .unwrap_or_else(|e| panic!("q{id} stream {stream}: {e}"));
            sizes.push(r.rows.len());
        }
        let max = *sizes.iter().max().expect("non-empty");
        let min = *sizes.iter().min().expect("non-empty");
        // All-empty is fine (ultra-selective at tiny SF); otherwise the
        // largest variant must not dwarf the smallest by more than the
        // LIMIT window allows.
        if max > 0 {
            assert!(
                max <= 100,
                "q{id}: result exceeds the template LIMIT: {max}"
            );
            assert!(
                min * 20 >= max || min == 0,
                "q{id}: result sizes incomparable across substitutions: {sizes:?}"
            );
        }
    }
}

/// The zone machinery end to end: high-zone month substitutions of query 52
/// must qualify more input rows than low-zone months of query 3 variants
/// over the same windows... simplified to: the template generator's MONTH
/// defines stay within their declared zone.
#[test]
fn month_substitutions_stay_in_declared_zones() {
    let w = tpcds_repro::Workload::tpcds().unwrap();
    for stream in 0..20 {
        // q52 and q55 use months_high.
        for id in [52u32, 55] {
            let sql = w
                .instantiate(id, tpcds_repro::types::rng::DEFAULT_SEED, stream)
                .unwrap();
            let month: u32 = sql
                .lines()
                .find(|l| l.contains("d_moy ="))
                .and_then(|l| l.split('=').nth(1))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or_else(|| panic!("q{id} lost its month predicate:\n{sql}"));
            assert!(month >= 11, "q{id} month {month} outside the high zone");
        }
    }
}

/// Iterative OLAP sequences drill down coherently.
#[test]
fn iterative_sequences_execute() {
    let tpcds = TpcDs::builder().scale_factor(0.01).build().expect("load");
    for seq in [
        tpcds_repro::qgen::IterativeSequence::store_drilldown(),
        tpcds_repro::qgen::IterativeSequence::web_time_drill(),
    ] {
        let trace = seq.execute(tpcds.database()).expect("sequence");
        assert_eq!(trace.steps.len(), 3);
        // The first step must find something to drill into.
        assert!(
            !trace.steps[0].2.rows.is_empty(),
            "{}: first step empty",
            seq.name
        );
        // Each later step receives the drill value.
        assert!(trace.steps[0].1.is_some());
    }
}
