//! Iterative OLAP sequences (paper §4.1): "Iterative OLAP queries are
//! implemented as a sequence of syntactically independent, but logically
//! affiliated queries." Each sequence drills from a coarse aggregate to a
//! fine one, feeding a substitution of step *n+1* from the answer of step
//! *n* — the interactive analysis pattern the benchmark models.

use crate::template::TemplateError;
use tpcds_engine::{Database, QueryResult};

/// One drill step: renders SQL given the value selected from the previous
/// step's answer (None for the first step).
pub struct DrillStep {
    /// Human-readable description.
    pub description: &'static str,
    /// SQL builder; the argument is the drill value from the prior step.
    pub sql: fn(Option<&str>) -> String,
    /// Which output column of this step's answer feeds the next step.
    pub drill_column: usize,
}

/// A logically affiliated query sequence.
pub struct IterativeSequence {
    /// Sequence name.
    pub name: &'static str,
    /// The steps, coarse to fine.
    pub steps: Vec<DrillStep>,
}

/// The result of executing one sequence.
#[derive(Debug)]
pub struct DrillTrace {
    /// (description, chosen drill value, rows) per step.
    pub steps: Vec<(String, Option<String>, QueryResult)>,
}

impl IterativeSequence {
    /// The store-channel drill-down: year revenue by category → classes of
    /// the top category → items of the top class.
    pub fn store_drilldown() -> IterativeSequence {
        IterativeSequence {
            name: "store revenue drill-down (category -> class -> item)",
            steps: vec![
                DrillStep {
                    description: "revenue by category",
                    drill_column: 0,
                    sql: |_| {
                        "select i_category, sum(ss_ext_sales_price) rev \
                         from store_sales, item where ss_item_sk = i_item_sk \
                         group by i_category order by rev desc limit 10"
                            .to_string()
                    },
                },
                DrillStep {
                    description: "revenue by class within the chosen category",
                    drill_column: 0,
                    sql: |v| {
                        format!(
                            "select i_class, sum(ss_ext_sales_price) rev \
                             from store_sales, item where ss_item_sk = i_item_sk \
                             and i_category = '{}' \
                             group by i_class order by rev desc limit 10",
                            v.unwrap_or("Books")
                        )
                    },
                },
                DrillStep {
                    description: "top items within the chosen class",
                    drill_column: 0,
                    sql: |v| {
                        format!(
                            "select i_item_id, sum(ss_ext_sales_price) rev \
                             from store_sales, item where ss_item_sk = i_item_sk \
                             and i_class = '{}' \
                             group by i_item_id order by rev desc limit 10",
                            v.unwrap_or("fiction")
                        )
                    },
                },
            ],
        }
    }

    /// The time drill: yearly web revenue → quarters of the top year →
    /// months of the top quarter.
    pub fn web_time_drill() -> IterativeSequence {
        IterativeSequence {
            name: "web revenue drill-down (year -> quarter -> month)",
            steps: vec![
                DrillStep {
                    description: "revenue by year",
                    drill_column: 0,
                    sql: |_| {
                        "select d_year, sum(ws_ext_sales_price) rev \
                         from web_sales, date_dim where ws_sold_date_sk = d_date_sk \
                         group by d_year order by rev desc limit 5"
                            .to_string()
                    },
                },
                DrillStep {
                    description: "revenue by quarter of the chosen year",
                    drill_column: 0,
                    sql: |v| {
                        format!(
                            "select d_qoy, sum(ws_ext_sales_price) rev \
                             from web_sales, date_dim where ws_sold_date_sk = d_date_sk \
                             and d_year = {} group by d_qoy order by rev desc limit 4",
                            v.unwrap_or("2000")
                        )
                    },
                },
                DrillStep {
                    description: "revenue by month of the chosen quarter",
                    drill_column: 0,
                    sql: |v| {
                        format!(
                            "select d_moy, sum(ws_ext_sales_price) rev \
                             from web_sales, date_dim where ws_sold_date_sk = d_date_sk \
                             and d_qoy = {} group by d_moy order by rev desc limit 3",
                            v.unwrap_or("4")
                        )
                    },
                },
            ],
        }
    }

    /// Executes the sequence against a database, drilling on the first row
    /// of each step's answer.
    pub fn execute(&self, db: &Database) -> Result<DrillTrace, TemplateError> {
        let mut trace = DrillTrace { steps: Vec::new() };
        let mut drill: Option<String> = None;
        for step in &self.steps {
            let sql = (step.sql)(drill.as_deref());
            let result = tpcds_engine::query(db, &sql)
                .map_err(|e| TemplateError(format!("{}: {e}", step.description)))?;
            drill = result
                .rows
                .first()
                .and_then(|r| r.get(step.drill_column))
                .map(|v| v.to_flat());
            trace
                .steps
                .push((step.description.to_string(), drill.clone(), result));
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_have_multiple_affiliated_steps() {
        assert!(IterativeSequence::store_drilldown().steps.len() >= 3);
        assert!(IterativeSequence::web_time_drill().steps.len() >= 3);
    }

    #[test]
    fn later_steps_embed_the_drill_value() {
        let seq = IterativeSequence::store_drilldown();
        let sql = (seq.steps[1].sql)(Some("Music"));
        assert!(sql.contains("'Music'"));
    }
}
