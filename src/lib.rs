//! Umbrella crate for the TPC-DS reproduction workspace.
//!
//! Re-exports [`tpcds_core`] so the root package's examples and integration
//! tests have a single import path. Library users should depend on
//! `tpcds-core` directly.
pub use tpcds_core::*;
