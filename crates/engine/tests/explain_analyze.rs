//! EXPLAIN ANALYZE coverage: every `Plan` variant renders with executed
//! actuals (`rows=`, `elapsed=`, `loops=`), and the row counts agree with
//! the query's actual result.

use tpcds_engine::{query_analyze, ColumnMeta, Database};
use tpcds_types::Value;

fn db_with(table: &str, cols: &[&str], rows: Vec<Vec<i64>>) -> Database {
    let db = Database::new();
    let meta = cols
        .iter()
        .map(|c| ColumnMeta {
            name: c.to_string(),
            dtype: tpcds_types::DataType::Int,
        })
        .collect();
    let rows = rows
        .into_iter()
        .map(|r| r.into_iter().map(Value::Int).collect())
        .collect();
    db.create_table_with_rows(table, meta, rows).unwrap();
    db
}

/// Runs EXPLAIN ANALYZE, checks every operator line carries actuals, and
/// returns (result row count, plan text).
fn analyze(db: &Database, sql: &str) -> (usize, String) {
    let a = query_analyze(db, sql).unwrap();
    for line in a.plan_text.lines() {
        assert!(
            line.contains("rows=") && line.contains("elapsed=") && line.contains("loops="),
            "line missing actuals: {line:?}\nfull plan:\n{}",
            a.plan_text
        );
    }
    (a.result.rows.len(), a.plan_text)
}

/// `rows=` value of the first (root) operator line.
fn root_rows(plan_text: &str) -> u64 {
    line_rows(plan_text.lines().next().expect("non-empty plan"))
}

/// Parses `rows=N` out of one operator line.
fn line_rows(line: &str) -> u64 {
    let tail = line.split("rows=").nth(1).expect("rows= present");
    tail.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("rows value")
}

/// `rows=` values of every line whose label contains `op`.
fn op_rows(plan_text: &str, op: &str) -> Vec<u64> {
    plan_text
        .lines()
        .filter(|l| l.trim_start().starts_with(op))
        .map(line_rows)
        .collect()
}

#[test]
fn scan_filter_sort_project_limit_carry_actuals() {
    let db = db_with("t", &["a", "b"], (0..20).map(|i| vec![i, i * 10]).collect());
    let (n, plan) = analyze(&db, "select a from t where a >= 10 order by a desc limit 3");
    assert_eq!(n, 3);
    assert_eq!(root_rows(&plan), 3, "{plan}");
    // Limit-over-Sort fuses into one TopN node producing the final 3 rows.
    assert_eq!(op_rows(&plan, "TopN"), vec![3], "{plan}");
    assert!(op_rows(&plan, "Limit").is_empty(), "{plan}");
    assert!(op_rows(&plan, "Sort").is_empty(), "{plan}");
    // The filter is pushed into the scan: 10 of 20 rows survive it.
    assert_eq!(op_rows(&plan, "Scan t [filtered]"), vec![10], "{plan}");
    assert!(plan.contains("loops=1"), "{plan}");
}

#[test]
fn topn_reports_heap_and_pruning_actuals() {
    let db = db_with("t", &["a", "b"], (0..100).map(|i| vec![i, i * 7]).collect());
    let (n, plan) = analyze(&db, "select a from t order by b desc limit 5");
    assert_eq!(n, 5);
    // The parallel Top-N kernel ran (the rows-path kernel when no shadow
    // is attached): heap occupancy and pruned-row actuals must render.
    assert!(plan.contains("heap_rows="), "{plan}");
    assert!(plan.contains("pruned="), "{plan}");
}

#[test]
fn bare_limit_short_circuits_the_scan() {
    let db = db_with("t", &["a"], (0..50).map(|i| vec![i]).collect());
    // Not via analyze(): the short-circuit path absorbs the scan into the
    // Limit node, so the scan line legitimately reads "(never executed)".
    let a = tpcds_engine::query_analyze(&db, "select a from t where a >= 10 limit 4").unwrap();
    assert_eq!(a.result.rows.len(), 4);
    let plan = &a.plan_text;
    assert_eq!(op_rows(plan, "Limit"), vec![4], "{plan}");
    assert!(plan.contains("never executed"), "{plan}");
}

#[test]
fn hash_join_actuals_match_matches() {
    let db = db_with("f", &["fk", "v"], (0..30).map(|i| vec![i % 3, i]).collect());
    db.create_table_with_rows(
        "d",
        vec![
            ColumnMeta {
                name: "id".into(),
                dtype: tpcds_types::DataType::Int,
            },
            ColumnMeta {
                name: "tag".into(),
                dtype: tpcds_types::DataType::Int,
            },
        ],
        (0..3)
            .map(|i| vec![Value::Int(i), Value::Int(i * 100)])
            .collect(),
    )
    .unwrap();
    let (n, plan) = analyze(&db, "select v, tag from f, d where fk = id");
    assert_eq!(n, 30);
    assert_eq!(op_rows(&plan, "HashJoin"), vec![30], "{plan}");
}

#[test]
fn nested_loop_join_cross_and_non_equi() {
    let db = db_with("l", &["x"], vec![vec![1], vec![2], vec![3]]);
    db.create_table_with_rows(
        "r",
        vec![ColumnMeta {
            name: "y".into(),
            dtype: tpcds_types::DataType::Int,
        }],
        vec![vec![Value::Int(2)], vec![Value::Int(9)]],
    )
    .unwrap();
    // Non-equi: 3x2 pairs, x < y keeps (1,2),(1,9),(2,9),(3,9).
    let (n, plan) = analyze(&db, "select x, y from l, r where x < y");
    assert_eq!(n, 4);
    assert!(plan.contains("NestedLoopJoin"), "{plan}");
    // The join output (wherever the predicate is applied) reaches 4 rows
    // at the root.
    assert_eq!(root_rows(&plan), 4, "{plan}");
}

#[test]
fn aggregate_and_having_filter() {
    let db = db_with(
        "t",
        &["g", "v"],
        vec![vec![1, 10], vec![1, 20], vec![2, 5], vec![3, 100]],
    );
    let (n, plan) = analyze(
        &db,
        "select g, sum(v) s from t group by g having sum(v) > 20",
    );
    assert_eq!(n, 2);
    assert_eq!(
        op_rows(&plan, "Aggregate"),
        vec![3],
        "3 groups before HAVING: {plan}"
    );
    assert_eq!(
        op_rows(&plan, "Filter"),
        vec![2],
        "2 groups after HAVING: {plan}"
    );
}

#[test]
fn window_actuals_preserve_input_count() {
    let db = db_with("t", &["p", "v"], vec![vec![1, 10], vec![1, 20], vec![2, 5]]);
    let (n, plan) = analyze(&db, "select p, v, sum(v) over (partition by p) s from t");
    assert_eq!(n, 3);
    assert_eq!(op_rows(&plan, "Window"), vec![3], "{plan}");
}

#[test]
fn distinct_dedupes() {
    let db = db_with(
        "t",
        &["a"],
        vec![vec![1], vec![1], vec![2], vec![2], vec![3]],
    );
    let (n, plan) = analyze(&db, "select distinct a from t");
    assert_eq!(n, 3);
    assert_eq!(op_rows(&plan, "Distinct"), vec![3], "{plan}");
}

#[test]
fn set_ops_union_intersect_except() {
    let db = db_with("a", &["x"], vec![vec![1], vec![2], vec![3]]);
    db.create_table_with_rows(
        "b",
        vec![ColumnMeta {
            name: "y".into(),
            dtype: tpcds_types::DataType::Int,
        }],
        vec![vec![Value::Int(2)], vec![Value::Int(4)]],
    )
    .unwrap();

    let (n, plan) = analyze(&db, "select x from a union all select y from b");
    assert_eq!(n, 5);
    assert_eq!(op_rows(&plan, "SetOp"), vec![5], "{plan}");

    let (n, plan) = analyze(&db, "select x from a intersect select y from b");
    assert_eq!(n, 1);
    assert!(plan.contains("SetOp Intersect"), "{plan}");

    let (n, plan) = analyze(&db, "select x from a except select y from b");
    assert_eq!(n, 2);
    assert!(plan.contains("SetOp Except"), "{plan}");
}

#[test]
fn cte_ref_carries_actuals() {
    let db = db_with("t", &["a"], (0..10).map(|i| vec![i]).collect());
    let (n, plan) = analyze(
        &db,
        "with big as (select a from t where a >= 5)
         select a from big where a < 8",
    );
    assert_eq!(n, 3);
    assert!(plan.contains("CteRef"), "{plan}");
    assert_eq!(
        op_rows(&plan, "CteRef"),
        vec![5],
        "CTE body yields 5 rows: {plan}"
    );
}

#[test]
fn prefix_drops_hidden_sort_columns() {
    let db = db_with(
        "t",
        &["a", "b"],
        vec![vec![1, 30], vec![2, 10], vec![3, 20]],
    );
    // ORDER BY a non-projected column forces a Prefix node.
    let (n, plan) = analyze(&db, "select a from t order by b");
    assert_eq!(n, 3);
    assert!(plan.contains("Prefix"), "{plan}");
    assert_eq!(op_rows(&plan, "Prefix"), vec![3], "{plan}");
}

#[test]
fn unexecuted_nodes_render_never_executed() {
    let db = db_with("t", &["a"], vec![vec![1]]);
    // Render one query's tree against another execution's stats: nothing
    // in the map matches, so every operator reports it never ran.
    let bound = tpcds_engine::plan_sql(&db, "select a from t").unwrap();
    let stats = tpcds_engine::exec::StatsMap::new();
    let text = bound.plan.explain_analyze(&stats);
    for line in text.lines() {
        assert!(line.contains("(never executed)"), "{text}");
    }
}

#[test]
fn plain_explain_has_no_actuals() {
    let db = db_with("t", &["a"], vec![vec![1]]);
    let bound = tpcds_engine::plan_sql(&db, "select a from t where a = 1").unwrap();
    let text = bound.plan.explain();
    assert!(!text.contains("rows="), "{text}");
    assert!(!text.contains("elapsed="), "{text}");
}
