//! Benchmark regression gate: diffs two `BENCH_*.json` reports and flags
//! metrics that moved past a tolerance in the *bad* direction.
//!
//! The two reports need not have identical schemas — only the
//! intersection of their (flattened, dot-joined) numeric keys is
//! compared, so a newer report that adds sections still gates against an
//! older baseline. Direction is inferred from the key name:
//!
//! * `*_per_s`, `*speedup*`, `*qphds*`  — higher is better;
//! * `*_us`, `*_ms`, `*latency*`        — lower is better;
//! * anything else (row counts, thread counts, scale factors, bytes) is
//!   configuration, not performance, and is ignored.

use tpcds_obs::json::Json;

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: a drop is a regression.
    HigherIsBetter,
    /// Latency-like: a rise is a regression.
    LowerIsBetter,
    /// Configuration / informational: never gates.
    Ignore,
}

/// Classifies a flattened metric key by its name.
pub fn direction_of(key: &str) -> Direction {
    let k = key.to_ascii_lowercase();
    if k.ends_with("_per_s") || k.contains("speedup") || k.contains("qphds") {
        Direction::HigherIsBetter
    } else if k.ends_with("_us") || k.ends_with("_ms") || k.contains("latency") {
        Direction::LowerIsBetter
    } else {
        Direction::Ignore
    }
}

/// Flattens a JSON document into dot-joined numeric leaves
/// (`join.columnar_nt_rows_per_s` → value). Non-numeric leaves and
/// arrays are skipped — array order is positional, not nominal, so a
/// positional diff would compare unrelated quantities.
pub fn flatten(j: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    fn walk(prefix: &str, j: &Json, out: &mut Vec<(String, f64)>) {
        match j {
            Json::Obj(pairs) => {
                for (k, v) in pairs {
                    let key = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    walk(&key, v, out);
                }
            }
            Json::Int(i) => out.push((prefix.to_string(), *i as f64)),
            Json::Float(f) => out.push((prefix.to_string(), *f)),
            _ => {}
        }
    }
    walk("", j, &mut out);
    out
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Flattened dot-joined key.
    pub key: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// Relative change `(new - old) / old`.
    pub change: f64,
    /// Gate direction for this key.
    pub direction: Direction,
    /// Whether the change exceeds the tolerance in the bad direction.
    pub regressed: bool,
}

/// The full diff of two reports at one tolerance.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Every gated metric present in both reports.
    pub rows: Vec<CompareRow>,
    /// Count of regressed rows.
    pub regressions: usize,
    /// Tolerance used (relative, e.g. 0.15 = 15%).
    pub tolerance: f64,
}

/// Diffs two parsed reports. `tolerance` is the relative slack in the bad
/// direction (0.15 allows a 15% throughput drop or latency rise).
pub fn compare(old: &Json, new: &Json, tolerance: f64) -> CompareReport {
    let new_flat = flatten(new);
    let mut rows = Vec::new();
    for (key, old_v) in flatten(old) {
        let direction = direction_of(&key);
        if direction == Direction::Ignore {
            continue;
        }
        let Some((_, new_v)) = new_flat.iter().find(|(k, _)| *k == key) else {
            continue;
        };
        if old_v.abs() < 1e-12 {
            continue; // no meaningful relative change from a zero baseline
        }
        let change = (new_v - old_v) / old_v;
        let regressed = match direction {
            Direction::HigherIsBetter => change < -tolerance,
            Direction::LowerIsBetter => change > tolerance,
            Direction::Ignore => false,
        };
        rows.push(CompareRow {
            key,
            old: old_v,
            new: *new_v,
            change,
            direction,
            regressed,
        });
    }
    let regressions = rows.iter().filter(|r| r.regressed).count();
    CompareReport {
        rows,
        regressions,
        tolerance,
    }
}

impl CompareReport {
    /// Renders the diff as an aligned text table, regressions marked.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let w = self
            .rows
            .iter()
            .map(|r| r.key.len())
            .max()
            .unwrap_or(6)
            .max(6);
        out.push_str(&format!(
            "{:<w$} {:>14} {:>14} {:>8}\n",
            "metric", "baseline", "candidate", "change"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<w$} {:>14.2} {:>14.2} {:>+7.1}% {}\n",
                r.key,
                r.old,
                r.new,
                r.change * 100.0,
                if r.regressed { "REGRESSION" } else { "" }
            ));
        }
        out.push_str(&format!(
            "\n{} metric(s) compared, {} regression(s) at {:.0}% tolerance\n",
            self.rows.len(),
            self.regressions,
            self.tolerance * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(join_rps: f64, p95_us: f64) -> Json {
        Json::parse(&format!(
            r#"{{"threads":8,"scale_factor":0.01,
                "join":{{"columnar_nt_rows_per_s":{join_rps},"speedup_nt_vs_row":10.0}},
                "classes":{{"adhoc":{{"p95_us":{p95_us},"queries":20}}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn directions_classify_by_name() {
        assert_eq!(
            direction_of("join.columnar_nt_rows_per_s"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction_of("qphds"), Direction::HigherIsBetter);
        assert_eq!(
            direction_of("classes.adhoc.p95_us"),
            Direction::LowerIsBetter
        );
        assert_eq!(direction_of("threads"), Direction::Ignore);
        assert_eq!(direction_of("store_sales_rows"), Direction::Ignore);
    }

    #[test]
    fn within_tolerance_passes() {
        let rep = compare(&report(1000.0, 500.0), &report(900.0, 560.0), 0.15);
        assert_eq!(rep.regressions, 0, "{}", rep.render());
        // Config keys (threads, queries, scale) are not gated.
        assert!(rep.rows.iter().all(|r| r.direction != Direction::Ignore));
    }

    #[test]
    fn throughput_drop_past_tolerance_regresses() {
        let rep = compare(&report(1000.0, 500.0), &report(800.0, 500.0), 0.15);
        assert_eq!(rep.regressions, 1);
        let row = rep.rows.iter().find(|r| r.regressed).unwrap();
        assert_eq!(row.key, "join.columnar_nt_rows_per_s");
        assert!(rep.render().contains("REGRESSION"));
    }

    #[test]
    fn latency_rise_past_tolerance_regresses() {
        let rep = compare(&report(1000.0, 500.0), &report(1000.0, 700.0), 0.15);
        assert_eq!(rep.regressions, 1);
        assert!(rep
            .rows
            .iter()
            .any(|r| r.key == "classes.adhoc.p95_us" && r.regressed));
    }

    #[test]
    fn schema_mismatch_compares_only_the_intersection() {
        let old = Json::parse(r#"{"join":{"columnar_nt_rows_per_s":1000.0}}"#).unwrap();
        let new = report(990.0, 400.0); // extra sections in the candidate
        let rep = compare(&old, &new, 0.15);
        assert_eq!(rep.rows.len(), 1);
        assert_eq!(rep.regressions, 0);
        // Improvements never regress, however large.
        let rep = compare(&report(100.0, 900.0), &report(5000.0, 30.0), 0.15);
        assert_eq!(rep.regressions, 0);
    }
}
