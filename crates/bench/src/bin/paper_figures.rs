//! Regenerates the paper's figures.
//!
//! ```sh
//! cargo run --release -p tpcds-bench --bin paper_figures            # everything
//! cargo run --release -p tpcds-bench --bin paper_figures -- figure2 # one figure
//! ```

use tpcds_bench::figures as fig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("figure1") {
        println!("{}", fig::figure1());
    }
    if want("figure2") {
        println!("{}", fig::figure2(0.1));
    }
    if want("figure3") {
        println!("{}", fig::figure3());
    }
    if want("figure4") {
        println!("{}", fig::figure4(0.1, 24));
    }
    if want("figure5") {
        println!("{}", fig::figure5(0.05));
    }
    if want("figure6") || want("figure7") {
        println!("{}", fig::figure6_7(0.01));
    }
    if want("figure8") || want("figure9") || want("figure10") {
        println!("{}", fig::figure8_9_10(0.01));
    }
    if want("figure11") {
        println!("{}", fig::figure11(0.01, 2, 12));
    }
    if want("figure12") {
        println!("{}", fig::figure12());
    }
}
