//! Subcommand implementations for the `tpcds` binary.

use std::io::{BufRead, Write};
use std::path::PathBuf;
use tpcds_core::dgen::flatfile;
use tpcds_core::runner::{self, AuxLevel, BenchmarkConfig, PriceModel};
use tpcds_core::schema::{graph, Schema, SchemaStats};
use tpcds_core::{Generator, TpcDs, Workload};

type Result<T> = std::result::Result<T, String>;

/// Minimal flag parser: `--name value` pairs and `--flag` booleans.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags { args }
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(|s| s.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for {name}: {v:?}")),
        }
    }
}

/// Installs the JSONL trace sink when `--trace FILE` was given. Returns
/// whether tracing is on; the caller must [`tpcds_core::obs::flush`] before
/// exiting so buffered events reach the file.
fn maybe_trace(flags: &Flags) -> Result<bool> {
    match flags.value("--trace") {
        None if flags.has("--trace") => Err("--trace requires a file argument".to_string()),
        None => Ok(false),
        Some(path) if path.starts_with("--") => Err("--trace requires a file argument".to_string()),
        Some(path) => {
            tpcds_core::obs::install_jsonl(std::path::Path::new(path))
                .map_err(|e| format!("cannot open trace file {path:?}: {e}"))?;
            Ok(true)
        }
    }
}

/// `tpcds dsdgen` — write flat files.
pub fn dsdgen(args: &[String]) -> Result<()> {
    let flags = Flags::new(args);
    let traced = maybe_trace(&flags)?;
    let sf: f64 = flags.parse("--scale", 0.01)?;
    let dir = PathBuf::from(flags.value("--dir").unwrap_or("tpcds_data"));
    let parallel: usize = flags.parse("--parallel", 4)?;
    let only = flags.value("--table");

    let generator = Generator::new(sf);
    let schema = Schema::tpcds();
    let started = std::time::Instant::now();
    let mut total = 0u64;
    for t in schema.tables() {
        if let Some(name) = only {
            if t.name != name {
                continue;
            }
        }
        let rows = generator.generate_parallel(t.name, parallel);
        flatfile::write_table(&dir, t.name, &rows).map_err(|e| e.to_string())?;
        println!("{:<24} {:>10} rows", t.name, rows.len());
        total += rows.len() as u64;
    }
    println!(
        "\n{total} rows at SF {sf} written to {} in {:.2?}",
        dir.display(),
        started.elapsed()
    );
    if traced {
        tpcds_core::obs::flush();
    }
    Ok(())
}

/// `tpcds dsqgen` — write query streams.
pub fn dsqgen(args: &[String]) -> Result<()> {
    let flags = Flags::new(args);
    let sf: f64 = flags.parse("--scale", 0.01)?;
    let streams: u64 = flags.parse("--streams", 1u64)?;
    let workload = Workload::tpcds().map_err(|e| e.to_string())?;
    let seed = tpcds_types::rng::DEFAULT_SEED;
    let _ = sf;

    if let Some(id) = flags.value("--query") {
        let id: u32 = id.parse().map_err(|_| format!("bad query id {id:?}"))?;
        for stream in 0..streams {
            println!("-- query {id}, stream {stream}");
            println!(
                "{};\n",
                workload
                    .instantiate(id, seed, stream)
                    .map_err(|e| e.to_string())?
            );
        }
        return Ok(());
    }

    match flags.value("--dir") {
        None => {
            // Print stream 0 to stdout.
            for (id, sql) in workload
                .stream_queries(seed, 0)
                .map_err(|e| e.to_string())?
            {
                println!("-- query {id}\n{sql};\n");
            }
        }
        Some(dir) => {
            let dir = PathBuf::from(dir);
            std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
            for stream in 0..streams {
                let path = dir.join(format!("query_{stream}.sql"));
                let mut f = std::fs::File::create(&path).map_err(|e| e.to_string())?;
                for (id, sql) in workload
                    .stream_queries(seed, stream)
                    .map_err(|e| e.to_string())?
                {
                    writeln!(f, "-- query {id}\n{sql};\n").map_err(|e| e.to_string())?;
                }
                println!("wrote {}", path.display());
            }
        }
    }
    Ok(())
}

/// `tpcds run` — the full benchmark.
pub fn run(args: &[String]) -> Result<()> {
    let flags = Flags::new(args);
    let traced = maybe_trace(&flags)?;
    if let Some(addr) = flags.value("--metrics-addr") {
        let bound = tpcds_core::obs::metrics::serve(addr)
            .map_err(|e| format!("cannot bind metrics endpoint {addr:?}: {e}"))?;
        if !flags.has("--json") {
            println!("serving metrics at http://{bound}/metrics");
        }
    }
    let sf: f64 = flags.parse("--scale", 0.01)?;
    let streams: usize = flags.parse("--streams", 0usize)?;
    let queries: usize = flags.parse("--queries", 99usize)?;
    let threads = match flags.parse("--threads", 0usize)? {
        0 => None, // fall through to TPCDS_THREADS / available_parallelism
        n => Some(n),
    };
    let config = BenchmarkConfig {
        scale_factor: sf,
        seed: tpcds_types::rng::DEFAULT_SEED,
        streams: if streams == 0 { None } else { Some(streams) },
        queries_per_stream: Some(queries),
        aux: if flags.has("--no-aux") {
            AuxLevel::None
        } else {
            AuxLevel::Reporting
        },
        threads,
        via_server: flags.has("--via-server"),
    };
    if !flags.has("--json") {
        println!("running benchmark at SF {sf}...");
    }
    let result = runner::run_benchmark(config).map_err(|e| e.to_string())?;
    if traced {
        tpcds_core::obs::flush();
    }
    if flags.has("--json") {
        println!("{}", result.to_json());
        return Ok(());
    }
    println!("load test          {:?}", result.t_load);
    println!("query run 1        {:?}", result.t_qr1);
    println!("data maintenance   {:?}", result.t_dm);
    println!("query run 2        {:?}", result.t_qr2);
    let q = result.qphds();
    println!("\nQphDS@{sf} = {q:.2}");
    let price = PriceModel::default();
    println!(
        "$/QphDS@{sf} = {:.4}  (3-year TCO ${:.0}, synthetic model)",
        runner::price_performance(&price, sf, result.streams, q),
        price.tco(sf, result.streams)
    );
    let latency = result.latency_summary();
    if !latency.is_empty() {
        println!("\nper-query latency      runs    p50(ms)    p95(ms)    max(ms)");
        for (id, s) in latency {
            println!(
                "  q{id:<19} {:>5} {:>10.3} {:>10.3} {:>10.3}",
                s.count,
                s.p50_us as f64 / 1e3,
                s.p95_us as f64 / 1e3,
                s.max_us as f64 / 1e3,
            );
        }
    }
    Ok(())
}

/// Loads an instance and resolves `--id N` / `--sql '...'` into SQL text —
/// shared by `query` and `explain`.
fn load_and_resolve_sql(flags: &Flags) -> Result<(TpcDs, String)> {
    let sf: f64 = flags.parse("--scale", 0.01)?;
    let tpcds = TpcDs::builder()
        .scale_factor(sf)
        .reporting_aux(true)
        .build()
        .map_err(|e| e.to_string())?;
    let sql = if let Some(id) = flags.value("--id") {
        let id: u32 = id.parse().map_err(|_| format!("bad query id {id:?}"))?;
        tpcds.benchmark_sql(id, 0).map_err(|e| e.to_string())?
    } else if let Some(sql) = flags.value("--sql") {
        sql.to_string()
    } else {
        return Err("need --id N or --sql '...'".to_string());
    };
    Ok((tpcds, sql))
}

/// `tpcds query` — one query against a freshly loaded instance.
pub fn query(args: &[String]) -> Result<()> {
    let flags = Flags::new(args);
    let traced = maybe_trace(&flags)?;
    let (tpcds, sql) = load_and_resolve_sql(&flags)?;
    if flags.has("--explain") {
        println!("{}", tpcds.explain(&sql).map_err(|e| e.to_string())?);
    }
    let started = std::time::Instant::now();
    let result = tpcds.query(&sql).map_err(|e| e.to_string())?;
    if traced {
        tpcds_core::obs::flush();
    }
    println!("{}", result.to_table(40));
    println!("({} rows in {:.2?})", result.rows.len(), started.elapsed());
    Ok(())
}

/// `tpcds explain` — the plan tree; `--analyze` executes the statement and
/// annotates every operator with `rows=`, `elapsed=` and `loops=` actuals.
pub fn explain(args: &[String]) -> Result<()> {
    let flags = Flags::new(args);
    let (tpcds, sql) = load_and_resolve_sql(&flags)?;
    if flags.has("--analyze") {
        let analyzed = tpcds.explain_analyze(&sql).map_err(|e| e.to_string())?;
        print!("{}", analyzed.plan_text);
        println!("({} result rows)", analyzed.result.rows.len());
    } else {
        print!("{}", tpcds.explain(&sql).map_err(|e| e.to_string())?);
    }
    Ok(())
}

/// `tpcds report` — render a trace JSONL file as a phase timeline plus
/// span/query latency summaries.
pub fn report(args: &[String]) -> Result<()> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| "usage: tpcds report FILE.jsonl".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    print!("{}", tpcds_core::obs::report::summarize(&text)?);
    Ok(())
}

/// `tpcds trace` — trace-file conversions. Currently one form:
/// `tpcds trace export --chrome OUT.json FILE.jsonl` writes the trace as
/// a Chrome Trace Event file for Perfetto / `chrome://tracing`, with one
/// track per morsel worker.
pub fn trace(args: &[String]) -> Result<()> {
    const USAGE: &str = "usage: tpcds trace export --chrome OUT.json FILE.jsonl";
    let (sub, rest) = args.split_first().ok_or_else(|| USAGE.to_string())?;
    if sub != "export" {
        return Err(format!("unknown trace subcommand {sub:?}\n{USAGE}"));
    }
    let flags = Flags::new(rest);
    let out = flags
        .value("--chrome")
        .filter(|v| !v.starts_with("--"))
        .ok_or_else(|| USAGE.to_string())?;
    let input = rest
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            // Skip flag names and the --chrome value.
            !a.starts_with("--") && *i != rest.iter().position(|x| x == "--chrome").unwrap() + 1
        })
        .map(|(_, a)| a.as_str())
        .next()
        .ok_or_else(|| USAGE.to_string())?;
    let text = std::fs::read_to_string(input).map_err(|e| format!("read {input:?}: {e}"))?;
    let chrome = tpcds_core::obs::chrome::export(&text)?;
    std::fs::write(out, chrome).map_err(|e| format!("write {out:?}: {e}"))?;
    println!("wrote {out} (load in Perfetto or chrome://tracing)");
    Ok(())
}

/// `tpcds shell` — interactive SQL.
pub fn shell(args: &[String]) -> Result<()> {
    let flags = Flags::new(args);
    let sf: f64 = flags.parse("--scale", 0.01)?;
    eprintln!("loading TPC-DS at SF {sf}...");
    let tpcds = TpcDs::builder()
        .scale_factor(sf)
        .reporting_aux(true)
        .build()
        .map_err(|e| e.to_string())?;
    eprintln!("ready. Commands: \\q quit, \\d tables, \\explain SQL, qNN for benchmark queries.");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            eprint!("tpcds> ");
        } else {
            eprint!("  ...> ");
        }
        std::io::stderr().flush().ok();
        let mut line = String::new();
        if stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| e.to_string())?
            == 0
        {
            return Ok(()); // EOF
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                "\\q" | "quit" | "exit" => return Ok(()),
                "\\d" => {
                    for t in tpcds.database().table_names() {
                        println!("{t:<24} {:>9} rows", tpcds.database().row_count(&t));
                    }
                    continue;
                }
                "" => continue,
                _ => {}
            }
            // qNN shortcut for benchmark queries.
            if let Some(id) = trimmed
                .strip_prefix('q')
                .and_then(|n| n.parse::<u32>().ok())
            {
                match tpcds.run_benchmark_query(id, 0) {
                    Ok(r) => println!("{}", r.to_table(25)),
                    Err(e) => eprintln!("error: {e}"),
                }
                continue;
            }
            if let Some(sql) = trimmed.strip_prefix("\\explain ") {
                match tpcds.explain(sql) {
                    Ok(p) => println!("{p}"),
                    Err(e) => eprintln!("error: {e}"),
                }
                continue;
            }
        }
        buffer.push_str(&line);
        if buffer.trim_end().ends_with(';') {
            let sql = std::mem::take(&mut buffer);
            let started = std::time::Instant::now();
            match tpcds.query(&sql) {
                Ok(r) => {
                    println!("{}", r.to_table(25));
                    println!("({} rows in {:.2?})", r.rows.len(), started.elapsed());
                }
                Err(e) => eprintln!("error: {e}"),
            }
        }
    }
}

/// `tpcds profile` — per-column data statistics.
pub fn profile(args: &[String]) -> Result<()> {
    let flags = Flags::new(args);
    let sf: f64 = flags.parse("--scale", 0.01)?;
    let limit: u64 = flags.parse("--limit", 10_000u64)?;
    let generator = Generator::new(sf);
    let tables: Vec<&str> = match flags.value("--table") {
        Some(t) => vec![Box::leak(t.to_string().into_boxed_str())],
        None => tpcds_core::schema::tables::TABLE_NAMES.to_vec(),
    };
    for t in tables {
        let p = tpcds_core::dgen::TableProfile::collect(&generator, t, limit);
        println!("{}", p.to_report());
    }
    Ok(())
}

/// `tpcds schema` — schema info.
pub fn schema(args: &[String]) -> Result<()> {
    let flags = Flags::new(args);
    let schema = Schema::tpcds();
    if flags.has("--ddl") {
        println!("{}", tpcds_core::schema::ddl::full_ddl(&schema));
        return Ok(());
    }
    if flags.has("--dot") {
        println!("{}", graph::to_dot(&schema, None));
        return Ok(());
    }
    if flags.has("--stats") {
        let s = SchemaStats::compute(&schema);
        println!("fact tables       {}", s.fact_tables);
        println!("dimension tables  {}", s.dimension_tables);
        println!(
            "columns min/max/avg  {}/{}/{}",
            s.min_columns, s.max_columns, s.avg_columns
        );
        println!("foreign keys      {}", s.foreign_keys);
        println!(
            "est. row bytes min/max/avg  {}/{}/{}",
            s.min_row_bytes, s.max_row_bytes, s.avg_row_bytes
        );
        return Ok(());
    }
    for t in schema.tables() {
        println!("{} ({:?}, {:?}, {:?})", t.name, t.kind, t.scd, t.part);
        for c in &t.columns {
            let null = if c.nullable { "" } else { " not null" };
            println!("    {:<28} {:?}{null}", c.name, c.ctype);
        }
        println!();
    }
    Ok(())
}

/// `tpcds serve` — load a data set and serve it over TCP until a client
/// sends `shutdown` (or the process is killed).
pub fn serve(args: &[String]) -> Result<()> {
    let flags = Flags::new(args);
    let traced = maybe_trace(&flags)?;
    if let Some(addr) = flags.value("--metrics-addr") {
        let bound = tpcds_core::obs::metrics::serve(addr)
            .map_err(|e| format!("cannot bind metrics endpoint {addr:?}: {e}"))?;
        println!("serving metrics at http://{bound}/metrics");
    }
    let sf: f64 = flags.parse("--scale", 0.01)?;
    let addr = flags
        .value("--addr")
        .unwrap_or("127.0.0.1:9955")
        .to_string();
    let max_queries: usize = flags.parse("--max-queries", 0usize)?;
    let idle_secs: u64 = flags.parse("--idle-timeout", 300u64)?;
    let slow_query_ms: Option<u64> = match flags.value("--slow-query-ms") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("bad value for --slow-query-ms: {v:?}"))?,
        ),
    };

    eprintln!("loading TPC-DS at SF {sf}...");
    let db = std::sync::Arc::new(tpcds_core::Database::new());
    let generator = Generator::new(sf);
    tpcds_core::maint::load_initial_population(&db, &generator).map_err(|e| e.to_string())?;
    if !flags.has("--no-aux") {
        runner::build_reporting_aux(&db).map_err(|e| e.to_string())?;
    }

    let mut config = tpcds_core::server::ServerConfig {
        addr,
        idle_timeout: std::time::Duration::from_secs(idle_secs),
        ..tpcds_core::server::ServerConfig::default()
    };
    if max_queries > 0 {
        config.max_concurrent_queries = max_queries;
    }
    // Flag wins over the TPCDS_SLOW_QUERY_MS default baked into the config.
    if let Some(ms) = slow_query_ms {
        config.slow_query_ms = ms;
    }
    let server = tpcds_core::server::Server::start(std::sync::Arc::clone(&db), config)
        .map_err(|e| format!("cannot start server: {e}"))?;
    println!(
        "serving TPC-DS (SF {sf}, snapshot v{}) at {} — stop with `tpcds client --addr {} --shutdown`",
        db.version(),
        server.local_addr(),
        server.local_addr()
    );
    server.wait();
    if traced {
        tpcds_core::obs::flush();
    }
    eprintln!("server stopped");
    Ok(())
}

/// `tpcds synth` — synthesize a seeded SQL workload and soak it through
/// the row-vs-columnar differential (optionally over TCP, with data
/// maintenance committing mid-run). Prints per-shape-class routing
/// tallies; any mismatch prints its minimized reproducer and fails.
pub fn synth(args: &[String]) -> Result<()> {
    use tpcds_core::synth::{coverage_report, run_soak, SoakConfig, SynthConfig};

    let flags = Flags::new(args);
    let sf: f64 = flags.parse("--scale", 0.01)?;
    let queries: usize = flags.parse("--queries", 100usize)?;
    let streams: usize = flags.parse("--streams", 2usize)?;
    let streams = streams.max(1);
    let seed: u64 = flags.parse(
        "--seed",
        tpcds_types::rng::test_seed(tpcds_types::rng::DEFAULT_SEED),
    )?;
    let dm_commits: u32 = flags.parse("--dm", 1u32)?;

    eprintln!("loading TPC-DS at SF {sf}...");
    let db = std::sync::Arc::new(tpcds_core::Database::new());
    let generator = Generator::new(sf);
    tpcds_core::maint::load_initial_population(&db, &generator).map_err(|e| e.to_string())?;
    db.build_columnar_shadows();

    let cfg = SoakConfig {
        streams,
        queries_per_stream: queries.div_ceil(streams),
        dm_commits,
        via_server: flags.has("--via-server"),
        shrink: true,
        synth: SynthConfig {
            seed,
            ..SynthConfig::default()
        },
    };
    eprintln!(
        "soaking {} streams x {} queries (seed {seed})...",
        cfg.streams, cfg.queries_per_stream
    );
    let outcome = run_soak(&db, Some(&generator), &cfg);

    println!(
        "{} queries, {} mismatches, {} snapshot versions, {} DM rows",
        outcome.queries_run,
        outcome.failures.len(),
        outcome.versions_observed.len(),
        outcome.dm_rows
    );
    for (class, stat) in &outcome.classes {
        println!(
            "  {class:<18} {:>5} queries  columnar {:>5.1}%  {:>9} oracle rows",
            stat.queries,
            stat.columnar_frac() * 100.0,
            stat.oracle_rows
        );
    }
    if let Some(out) = flags.value("--out") {
        let report = coverage_report(&outcome, &cfg);
        std::fs::write(out, format!("{report}\n"))
            .map_err(|e| format!("cannot write {out:?}: {e}"))?;
        println!("wrote {out}");
    }
    if outcome.failures.is_empty() {
        Ok(())
    } else {
        for f in &outcome.failures {
            eprintln!("MISMATCH qid {} ({}): {}", f.qid, f.class, f.detail);
            eprintln!("  minimized: {}", f.minimized);
        }
        Err(format!(
            "{} differential mismatch(es) at seed {seed}",
            outcome.failures.len()
        ))
    }
}

/// `tpcds client` — talk to a running `tpcds serve`: ping, one-shot
/// queries (optionally pinned to a snapshot version), plans, server
/// stats, shutdown.
pub fn client(args: &[String]) -> Result<()> {
    let flags = Flags::new(args);
    let addr = flags.value("--addr").unwrap_or("127.0.0.1:9955");
    let mut client = tpcds_core::server::Client::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;

    if flags.has("--ping") {
        let version = client.ping().map_err(|e| e.to_string())?;
        println!("pong (snapshot v{version})");
        return Ok(());
    }
    if flags.has("--stats") {
        println!("{}", client.stats().map_err(|e| e.to_string())?);
        return Ok(());
    }
    if flags.has("--shutdown") {
        client.shutdown().map_err(|e| e.to_string())?;
        println!("server is shutting down");
        return Ok(());
    }
    let sql = flags
        .value("--sql")
        .ok_or_else(|| "need --sql '...' (or --ping / --stats / --shutdown)".to_string())?;
    if flags.has("--explain") {
        print!("{}", client.explain(sql).map_err(|e| e.to_string())?);
        return Ok(());
    }
    let mut opts = tpcds_core::server::QueryOpts::default();
    if let Some(pin) = flags.value("--pin") {
        opts.pin = Some(pin.parse().map_err(|_| format!("bad --pin {pin:?}"))?);
    }
    if let Some(qid) = flags.value("--query-id") {
        opts.query_id = Some(qid.to_string());
    }
    let started = std::time::Instant::now();
    let result = client.query_with(sql, &opts).map_err(|e| e.to_string())?;
    let qr = tpcds_core::QueryResult {
        columns: result.columns,
        rows: result.rows,
    };
    println!("{}", qr.to_table(40));
    println!(
        "({} rows from snapshot v{} in {:.2?}; server time {:.3}ms{})",
        qr.rows.len(),
        result.version,
        started.elapsed(),
        result.elapsed_us as f64 / 1e3,
        result
            .query_id
            .map(|q| format!("; query_id {q}"))
            .unwrap_or_default()
    );
    Ok(())
}

/// `tpcds top` — live view of a running server: its sessions, in-flight
/// queries and the tail of the query log, polled over one ordinary
/// client connection (everything shown comes from the `sys.*` virtual
/// tables, so `tpcds client --sql` can reproduce any pane by hand).
pub fn top(args: &[String]) -> Result<()> {
    let flags = Flags::new(args);
    let addr = flags.value("--addr").unwrap_or("127.0.0.1:9955");
    let interval_ms: u64 = flags.parse("--interval-ms", 2000u64)?;
    let once = flags.has("--once");
    let mut client = tpcds_core::server::Client::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;

    loop {
        let sessions = client
            .query(
                "select session, peer, state, queries, bytes_in, bytes_out \
                 from sys.sessions order by session",
            )
            .map_err(|e| e.to_string())?;
        let inflight = client
            .query(
                "select session, query_id, state, elapsed_us, snapshot_version, mode, sql \
                 from sys.queries order by elapsed_us desc",
            )
            .map_err(|e| e.to_string())?;
        let recent = client
            .query(
                "select query_id, session, wall_us, rows, best_route, error \
                 from sys.query_log order by seq desc limit 10",
            )
            .map_err(|e| e.to_string())?;
        let stats = client.stats().map_err(|e| e.to_string())?;

        if !once {
            // Clear and home, like top(1); --once stays script-friendly.
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "tpcds top — {addr}  snapshot v{}  sessions {}  inflight {}",
            stats.get("version").and_then(|j| j.as_i64()).unwrap_or(0),
            stats
                .get("sessions_active")
                .and_then(|j| j.as_i64())
                .unwrap_or(0),
            stats
                .get("queries_inflight")
                .and_then(|j| j.as_i64())
                .unwrap_or(0),
        );
        let render = |title: &str, r: &tpcds_core::server::RemoteResult| {
            let qr = tpcds_core::QueryResult {
                columns: r.columns.clone(),
                rows: r.rows.clone(),
            };
            println!("\n{title}");
            print!("{}", qr.to_table(20));
        };
        render("SESSIONS", &sessions);
        render("IN-FLIGHT QUERIES", &inflight);
        render("RECENT QUERIES (sys.query_log, newest first)", &recent);

        if once {
            return Ok(());
        }
        std::io::stdout().flush().ok();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
    }
}
