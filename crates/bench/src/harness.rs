//! A small wall-clock micro-benchmark harness.
//!
//! Criterion cannot be resolved in the offline build environment, so the
//! `cargo bench` targets run on this ~80-line stand-in: fixed iteration
//! counts, warmup, and p50/p95 summaries via [`tpcds_obs::report`]. It is
//! deliberately simple — the numbers feed trend tracking, not statistics
//! papers.

use std::time::Instant;
use tpcds_obs::report::LatencyStats;

/// One benchmark's measured distribution.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Latency summary over the measured iterations (microseconds).
    pub stats: LatencyStats,
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = &self.stats;
        write!(
            f,
            "{:<44} n={:<3} p50={:>11.3}ms p95={:>11.3}ms max={:>11.3}ms",
            self.name,
            s.count,
            s.p50_us as f64 / 1e3,
            s.p95_us as f64 / 1e3,
            s.max_us as f64 / 1e3,
        )
    }
}

/// Times `f` for `iters` iterations after one warmup call, printing and
/// returning the summary.
pub fn bench(name: &str, iters: usize, mut f: impl FnMut()) -> BenchResult {
    f(); // warmup
    let mut durs = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        durs.push(t.elapsed().as_micros() as u64);
    }
    let result = BenchResult {
        name: name.to_string(),
        stats: LatencyStats::from_durations_us(durs),
    };
    println!("{result}");
    result
}

/// Like [`bench`] but with untimed per-iteration setup (fresh state for
/// mutating workloads).
pub fn bench_with_setup<T>(
    name: &str,
    iters: usize,
    mut setup: impl FnMut() -> T,
    mut f: impl FnMut(T),
) -> BenchResult {
    f(setup()); // warmup
    let mut durs = Vec::with_capacity(iters);
    for _ in 0..iters {
        let input = setup();
        let t = Instant::now();
        f(input);
        durs.push(t.elapsed().as_micros() as u64);
    }
    let result = BenchResult {
        name: name.to_string(),
        stats: LatencyStats::from_durations_us(durs),
    };
    println!("{result}");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_summarizes() {
        let mut calls = 0;
        let r = bench("noop", 5, || calls += 1);
        assert_eq!(calls, 6, "warmup + 5 measured");
        assert_eq!(r.stats.count, 5);
        assert!(r.stats.p50_us <= r.stats.max_us);
    }

    #[test]
    fn setup_is_untimed_but_runs_per_iteration() {
        let mut setups = 0;
        let r = bench_with_setup("s", 3, || setups += 1, |_| {});
        assert_eq!(setups, 4);
        assert_eq!(r.stats.count, 3);
    }
}
