//! Morsel-driven parallel Top-N and full sort.
//!
//! Every TPC-DS template ends in `ORDER BY … LIMIT 100`, so the ordering
//! tail must scale like the scan/join/aggregate kernels. Two strategies:
//!
//! * **Top-N** ([`par_topn`] / [`par_topn_rows`]): each worker keeps a
//!   bounded heap of the best `limit` entries seen across the morsels it
//!   pulls; heaps merge commutatively at the end (concatenate + sort +
//!   truncate). Rows that never displace a heap entry are pruned without
//!   ever being materialized.
//! * **Full sort** ([`par_sort`] / [`par_sort_rows`]): each morsel becomes
//!   one sorted run in parallel; a serial k-way merge zips the runs.
//!
//! Determinism: entries compare by encoded/extracted key first and by
//! **global row index** on ties, which is a total order — so any worker
//! count (and any morsel arrival order) produces exactly the bytes a
//! stable serial sort of the input would. Sort-key comparison mirrors
//! `Value::sort_cmp` (NULLs first ascending, last descending); dense
//! `i64`/date key columns are encoded into order-preserving `u64` words
//! compared memcmp-style, everything else falls back to the
//! [`Value`]-comparator path.

use crate::column::ColumnData;
use crate::morsel::{detail_enabled, morsels_of, worker_count, MORSEL_ROWS};
use crate::pred::{Pred, P_TRUE};
use crate::segment::{ColumnTable, Segment, SEGMENT_ROWS};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;
use tpcds_types::{Row, Value};

/// One sort key: a column index plus direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortKey {
    /// Column index into the (projected) row.
    pub col: usize,
    /// Descending order.
    pub desc: bool,
}

/// What one sort/Top-N kernel invocation did — surfaced in obs counters
/// and the engine's EXPLAIN ANALYZE output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Morsels processed.
    pub morsels: u64,
    /// Workers that ran (1 for inline execution).
    pub workers: u64,
    /// Rows that qualified (passed the predicate) and were offered to the
    /// sort.
    pub rows_in: u64,
    /// Rows produced.
    pub rows_out: u64,
    /// Sorted runs fed to the k-way merge (0 for Top-N).
    pub merge_ways: u64,
    /// Total entries held across all per-worker Top-N heaps at the merge
    /// point (0 for full sort).
    pub heap_rows: u64,
    /// Qualifying rows the bounded heaps rejected without materializing
    /// (0 for full sort).
    pub pruned_rows: u64,
}

/// One candidate row: its sort key plus the global row index that breaks
/// ties (making the comparison a total order — the determinism argument).
struct Entry {
    key: Key,
    gid: usize,
}

/// A per-row sort key. One kernel invocation uses a single variant for
/// every row, decided up front by [`encodable`].
enum Key {
    /// Order-preserving `u64` words, two per sort key (null rank, then
    /// value), direction folded in by bitwise inversion. Compared
    /// memcmp-style.
    Enc(Vec<u64>),
    /// Extracted values compared with [`Value::sort_cmp`] per key.
    Val(Vec<Value>),
}

fn cmp_vals(a: &[Value], b: &[Value], keys: &[SortKey]) -> Ordering {
    for (i, k) in keys.iter().enumerate() {
        let ord = a[i].sort_cmp(&b[i]);
        let ord = if k.desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn cmp_entries(a: &Entry, b: &Entry, keys: &[SortKey]) -> Ordering {
    let ord = match (&a.key, &b.key) {
        (Key::Enc(x), Key::Enc(y)) => x.cmp(y),
        (Key::Val(x), Key::Val(y)) => cmp_vals(x, y, keys),
        // One invocation never mixes variants.
        _ => Ordering::Equal,
    };
    ord.then(a.gid.cmp(&b.gid))
}

/// Whether every key column is a dense fixed-width buffer in every
/// segment, so keys can be encoded as order-preserving `u64` words.
/// Variable-length strings and scale-carrying decimals keep the value
/// comparator.
fn encodable(table: &ColumnTable, keys: &[SortKey]) -> bool {
    table.segments.iter().all(|s| {
        keys.iter().all(|k| {
            matches!(
                s.columns[k.col].data,
                ColumnData::I64(_) | ColumnData::Date(_)
            )
        })
    })
}

/// Builds the key for row `i` of `seg`. Encoded form: per key a null-rank
/// word (NULL = 0, so NULLs sort first ascending — matching
/// `Value::sort_cmp`) then a sign-flipped value word; descending keys
/// invert both words, which reverses their order (and puts NULLs last).
fn key_of(seg: &Segment, i: usize, keys: &[SortKey], enc: bool) -> Key {
    if enc {
        let mut words = Vec::with_capacity(keys.len() * 2);
        for k in keys {
            let col = &seg.columns[k.col];
            let (mut rank, mut word) = if col.nulls.get(i) {
                (0u64, 0u64)
            } else {
                let raw = match &col.data {
                    ColumnData::I64(buf) => buf[i],
                    ColumnData::Date(buf) => buf[i].day_number() as i64,
                    // `encodable` checked every segment.
                    _ => unreachable!("non-encodable key column"),
                };
                (1u64, (raw as u64) ^ (1u64 << 63))
            };
            if k.desc {
                rank = !rank;
                word = !word;
            }
            words.push(rank);
            words.push(word);
        }
        Key::Enc(words)
    } else {
        Key::Val(
            keys.iter()
                .map(|k| seg.columns[k.col].value_at(i))
                .collect(),
        )
    }
}

/// Builds the (always value-form) key for one materialized row.
fn key_of_row(row: &Row, keys: &[SortKey]) -> Key {
    Key::Val(keys.iter().map(|k| row[k.col].clone()).collect())
}

/// Materializes the (optionally projected) row behind a global row index.
fn materialize(table: &ColumnTable, gid: usize, proj: Option<&[usize]>) -> Row {
    let seg = &table.segments[gid / SEGMENT_ROWS];
    let i = gid % SEGMENT_ROWS;
    match proj {
        None => seg.row(i),
        Some(cols) => cols.iter().map(|&c| seg.columns[c].value_at(i)).collect(),
    }
}

// ---------- bounded heap (Top-N) ----------

/// Offers an entry to a bounded worst-at-root heap of capacity `cap`.
/// Returns whether the entry was kept.
fn heap_offer(heap: &mut Vec<Entry>, cap: usize, e: Entry, keys: &[SortKey]) -> bool {
    if cap == 0 {
        return false;
    }
    if heap.len() < cap {
        heap.push(e);
        let last = heap.len() - 1;
        sift_up(heap, last, keys);
        return true;
    }
    if cmp_entries(&e, &heap[0], keys) == Ordering::Less {
        heap[0] = e;
        sift_down(heap, 0, keys);
        return true;
    }
    false
}

fn sift_up(heap: &mut [Entry], mut i: usize, keys: &[SortKey]) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if cmp_entries(&heap[i], &heap[parent], keys) == Ordering::Greater {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn sift_down(heap: &mut [Entry], mut i: usize, keys: &[SortKey]) {
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut biggest = i;
        if l < heap.len() && cmp_entries(&heap[l], &heap[biggest], keys) == Ordering::Greater {
            biggest = l;
        }
        if r < heap.len() && cmp_entries(&heap[r], &heap[biggest], keys) == Ordering::Greater {
            biggest = r;
        }
        if biggest == i {
            break;
        }
        heap.swap(i, biggest);
        i = biggest;
    }
}

// ---------- k-way merge (full sort) ----------

/// One sorted run being consumed by the merge.
struct RunCursor {
    head: Option<Entry>,
    rest: std::vec::IntoIter<Entry>,
}

/// Merges sorted runs into one sorted sequence with a min-heap of run
/// cursors. Entry comparison is a total order (gid tie-break), so the
/// output is independent of run arrival order.
fn kway_merge(runs: Vec<Vec<Entry>>, keys: &[SortKey]) -> Vec<Entry> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut cursors: Vec<RunCursor> = runs
        .into_iter()
        .filter_map(|r| {
            let mut rest = r.into_iter();
            rest.next().map(|head| RunCursor {
                head: Some(head),
                rest,
            })
        })
        .collect();
    let less = |cursors: &[RunCursor], a: usize, b: usize| {
        let (ha, hb) = (
            cursors[a].head.as_ref().expect("live cursor"),
            cursors[b].head.as_ref().expect("live cursor"),
        );
        cmp_entries(ha, hb, keys) == Ordering::Less
    };
    let sift = |heap: &mut [usize], cursors: &[RunCursor], mut i: usize| loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut smallest = i;
        if l < heap.len() && less(cursors, heap[l], heap[smallest]) {
            smallest = l;
        }
        if r < heap.len() && less(cursors, heap[r], heap[smallest]) {
            smallest = r;
        }
        if smallest == i {
            break;
        }
        heap.swap(i, smallest);
        i = smallest;
    };

    let mut heap: Vec<usize> = (0..cursors.len()).collect();
    for i in (0..heap.len() / 2).rev() {
        sift(&mut heap, &cursors, i);
    }
    let mut out = Vec::with_capacity(total);
    while let Some(&top) = heap.first() {
        let next = cursors[top].rest.next();
        let done = std::mem::replace(&mut cursors[top].head, next);
        out.push(done.expect("live cursor"));
        if cursors[top].head.is_none() {
            let last = heap.pop().expect("non-empty heap");
            if !heap.is_empty() {
                heap[0] = last;
            }
        }
        if !heap.is_empty() {
            sift(&mut heap, &cursors, 0);
        }
    }
    out
}

// ---------- observability ----------

fn emit_counters(stats: &SortStats, topn: bool) {
    if !tpcds_obs::is_enabled() {
        return;
    }
    let w = [("workers", tpcds_obs::FieldValue::Int(stats.workers as i64))];
    tpcds_obs::counter("storage", "sort.rows", stats.rows_in as f64, &w);
    if topn {
        tpcds_obs::counter("storage", "topn.heap_peak", stats.heap_rows as f64, &w);
        tpcds_obs::counter("storage", "topn.pruned_rows", stats.pruned_rows as f64, &w);
    } else {
        tpcds_obs::counter("storage", "sort.merge_ways", stats.merge_ways as f64, &w);
    }
}

// ---------- Top-N over a column table ----------

/// What one Top-N worker hands back for the commutative merge.
struct TopNPart {
    entries: Vec<Entry>,
    qualifying: u64,
}

#[allow(clippy::too_many_arguments)]
fn topn_worker(
    w: usize,
    cursor: &AtomicUsize,
    table: &ColumnTable,
    morsels: &[(usize, usize, usize)],
    pred: Option<&Pred>,
    keys: &[SortKey],
    enc: bool,
    limit: usize,
) -> TopNPart {
    let mut span = tpcds_obs::span("storage", "topn_worker").field("worker", w);
    let detail = tpcds_obs::is_enabled() && detail_enabled();
    let mut heap: Vec<Entry> = Vec::with_capacity(limit.min(4096));
    let mut qualifying = 0u64;
    let mut sel = Vec::new();
    let mut done = 0usize;
    loop {
        let m = cursor.fetch_add(1, AtomicOrdering::Relaxed);
        if m >= morsels.len() {
            break;
        }
        let _detail_span = detail.then(|| {
            tpcds_obs::span("storage", "topn_morsel")
                .field("worker", w)
                .field("morsel", m)
        });
        let (si, off, len) = morsels[m];
        let seg = &table.segments[si];
        let sel_slice: Option<&[u8]> = match pred {
            None => None,
            Some(p) => {
                p.eval(seg, off, len, (si * SEGMENT_ROWS + off) as u64, &mut sel);
                Some(sel.as_slice())
            }
        };
        for j in 0..len {
            if let Some(s) = sel_slice {
                if s[j] != P_TRUE {
                    continue;
                }
            }
            qualifying += 1;
            let i = off + j;
            let gid = si * SEGMENT_ROWS + i;
            heap_offer(
                &mut heap,
                limit,
                Entry {
                    key: key_of(seg, i, keys, enc),
                    gid,
                },
                keys,
            );
        }
        done += 1;
    }
    span.add_field("morsels", done);
    TopNPart {
        entries: heap,
        qualifying,
    }
}

/// Parallel Top-N over an optionally filtered, optionally projected
/// column table: the first `limit` rows of the table (in table order
/// after filtering) under a stable sort by `keys`.
///
/// `keys` index the **projected** row when `proj` is given. Output is
/// byte-identical at any worker count: entries order by (key, global row
/// index), a total order, and the heap merge is a full sort of the union
/// of the per-worker survivors.
pub fn par_topn(
    table: &ColumnTable,
    pred: Option<&Pred>,
    keys: &[SortKey],
    proj: Option<&[usize]>,
    limit: usize,
    threads: usize,
) -> (Vec<Row>, SortStats) {
    // Keys address the projected row; rebase onto physical columns.
    let phys: Vec<SortKey> = rebase(keys, proj);
    let keys = phys.as_slice();
    let morsels = morsels_of(table);
    let workers = worker_count(table.rows, threads, morsels.len());
    let enc = encodable(table, keys);

    let cursor = AtomicUsize::new(0);
    let parts: Vec<TopNPart> = if workers <= 1 {
        vec![topn_worker(
            0, &cursor, table, &morsels, pred, keys, enc, limit,
        )]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let cursor = &cursor;
                    let morsels = &morsels;
                    s.spawn(move || topn_worker(w, cursor, table, morsels, pred, keys, enc, limit))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };

    let qualifying: u64 = parts.iter().map(|p| p.qualifying).sum();
    let heap_rows: u64 = parts.iter().map(|p| p.entries.len() as u64).sum();
    let mut entries: Vec<Entry> = Vec::with_capacity(heap_rows as usize);
    for p in parts {
        entries.extend(p.entries);
    }
    entries.sort_unstable_by(|a, b| cmp_entries(a, b, keys));
    entries.truncate(limit);

    let rows: Vec<Row> = entries
        .iter()
        .map(|e| materialize(table, e.gid, proj))
        .collect();
    let stats = SortStats {
        morsels: morsels.len() as u64,
        workers: workers as u64,
        rows_in: qualifying,
        rows_out: rows.len() as u64,
        merge_ways: 0,
        heap_rows,
        pruned_rows: qualifying - heap_rows,
    };
    emit_counters(&stats, true);
    (rows, stats)
}

// ---------- full sort over a column table ----------

#[allow(clippy::too_many_arguments)]
fn sort_run_worker(
    w: usize,
    cursor: &AtomicUsize,
    table: &ColumnTable,
    morsels: &[(usize, usize, usize)],
    pred: Option<&Pred>,
    keys: &[SortKey],
    enc: bool,
    slots: &[Mutex<Vec<Entry>>],
) {
    let mut span = tpcds_obs::span("storage", "sort_worker").field("worker", w);
    let detail = tpcds_obs::is_enabled() && detail_enabled();
    let mut sel = Vec::new();
    let mut done = 0usize;
    loop {
        let m = cursor.fetch_add(1, AtomicOrdering::Relaxed);
        if m >= morsels.len() {
            break;
        }
        let _detail_span = detail.then(|| {
            tpcds_obs::span("storage", "sort_morsel")
                .field("worker", w)
                .field("morsel", m)
        });
        let (si, off, len) = morsels[m];
        let seg = &table.segments[si];
        let sel_slice: Option<&[u8]> = match pred {
            None => None,
            Some(p) => {
                p.eval(seg, off, len, (si * SEGMENT_ROWS + off) as u64, &mut sel);
                Some(sel.as_slice())
            }
        };
        let mut run = Vec::new();
        for j in 0..len {
            if let Some(s) = sel_slice {
                if s[j] != P_TRUE {
                    continue;
                }
            }
            let i = off + j;
            run.push(Entry {
                key: key_of(seg, i, keys, enc),
                gid: si * SEGMENT_ROWS + i,
            });
        }
        run.sort_unstable_by(|a, b| cmp_entries(a, b, keys));
        *slots[m].lock().unwrap() = run;
        done += 1;
    }
    span.add_field("morsels", done);
}

/// Parallel full sort over an optionally filtered, optionally projected
/// column table: per-morsel sorted runs in parallel, then a serial k-way
/// merge. Byte-identical at any worker count (total entry order, and run
/// `m` always holds morsel `m`'s rows regardless of which worker sorted
/// it). `keys` index the projected row when `proj` is given.
pub fn par_sort(
    table: &ColumnTable,
    pred: Option<&Pred>,
    keys: &[SortKey],
    proj: Option<&[usize]>,
    threads: usize,
) -> (Vec<Row>, SortStats) {
    let phys: Vec<SortKey> = rebase(keys, proj);
    let keys = phys.as_slice();
    let morsels = morsels_of(table);
    let workers = worker_count(table.rows, threads, morsels.len());
    let enc = encodable(table, keys);

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Vec<Entry>>> =
        (0..morsels.len()).map(|_| Mutex::new(Vec::new())).collect();
    if workers <= 1 {
        sort_run_worker(0, &cursor, table, &morsels, pred, keys, enc, &slots);
    } else {
        std::thread::scope(|s| {
            for w in 0..workers {
                let cursor = &cursor;
                let morsels = &morsels;
                let slots = &slots;
                s.spawn(move || sort_run_worker(w, cursor, table, morsels, pred, keys, enc, slots));
            }
        });
    }
    let runs: Vec<Vec<Entry>> = slots.into_iter().map(|m| m.into_inner().unwrap()).collect();
    let merge_ways = runs.iter().filter(|r| !r.is_empty()).count() as u64;
    let merged = kway_merge(runs, keys);

    let rows: Vec<Row> = merged
        .iter()
        .map(|e| materialize(table, e.gid, proj))
        .collect();
    let stats = SortStats {
        morsels: morsels.len() as u64,
        workers: workers as u64,
        rows_in: merged.len() as u64,
        rows_out: rows.len() as u64,
        merge_ways,
        heap_rows: 0,
        pruned_rows: 0,
    };
    emit_counters(&stats, false);
    (rows, stats)
}

/// Rebases projected-row key indexes onto physical column indexes.
fn rebase(keys: &[SortKey], proj: Option<&[usize]>) -> Vec<SortKey> {
    match proj {
        None => keys.to_vec(),
        Some(cols) => keys
            .iter()
            .map(|k| SortKey {
                col: cols[k.col],
                desc: k.desc,
            })
            .collect(),
    }
}

// ---------- Top-N / sort over materialized rows ----------

/// The chunk list for a row vector: `(start, len)` spans of
/// [`MORSEL_ROWS`] rows.
fn chunks_of(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n.div_ceil(MORSEL_ROWS));
    let mut off = 0;
    while off < n {
        let len = MORSEL_ROWS.min(n - off);
        out.push((off, len));
        off += len;
    }
    out
}

/// Parallel Top-N over already-materialized rows (the tail of a fused
/// join/aggregate pipeline). Equivalent to a stable sort by `keys`
/// followed by `truncate(limit)`, at any worker count.
///
/// Unlike [`par_topn`], `keys` here index the **input** row; `proj`, when
/// given, selects the output columns of the winners only — so a hidden
/// computed sort key column can be appended for ordering and dropped from
/// the result without materializing a projected copy of every input row.
pub fn par_topn_rows(
    rows: Vec<Row>,
    keys: &[SortKey],
    proj: Option<&[usize]>,
    limit: usize,
    threads: usize,
) -> (Vec<Row>, SortStats) {
    let chunks = chunks_of(rows.len());
    let workers = worker_count(rows.len(), threads, chunks.len());
    let rows_in = rows.len() as u64;

    let run_worker = |w: usize, cursor: &AtomicUsize| -> TopNPart {
        let mut span = tpcds_obs::span("storage", "topn_worker").field("worker", w);
        let mut heap: Vec<Entry> = Vec::with_capacity(limit.min(4096));
        let mut done = 0usize;
        loop {
            let m = cursor.fetch_add(1, AtomicOrdering::Relaxed);
            if m >= chunks.len() {
                break;
            }
            let (off, len) = chunks[m];
            for (gid, row) in rows.iter().enumerate().skip(off).take(len) {
                heap_offer(
                    &mut heap,
                    limit,
                    Entry {
                        key: key_of_row(row, keys),
                        gid,
                    },
                    keys,
                );
            }
            done += 1;
        }
        span.add_field("morsels", done);
        TopNPart {
            entries: heap,
            qualifying: 0,
        }
    };

    let cursor = AtomicUsize::new(0);
    let parts: Vec<TopNPart> = if workers <= 1 {
        vec![run_worker(0, &cursor)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let cursor = &cursor;
                    let run_worker = &run_worker;
                    s.spawn(move || run_worker(w, cursor))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };

    let heap_rows: u64 = parts.iter().map(|p| p.entries.len() as u64).sum();
    let mut entries: Vec<Entry> = Vec::with_capacity(heap_rows as usize);
    for p in parts {
        entries.extend(p.entries);
    }
    entries.sort_unstable_by(|a, b| cmp_entries(a, b, keys));
    entries.truncate(limit);

    let mut slots: Vec<Option<Row>> = rows.into_iter().map(Some).collect();
    let out: Vec<Row> = entries
        .iter()
        .map(|e| project_row(slots[e.gid].take().expect("unique gid"), proj))
        .collect();
    let stats = SortStats {
        morsels: chunks.len() as u64,
        workers: workers as u64,
        rows_in,
        rows_out: out.len() as u64,
        merge_ways: 0,
        heap_rows,
        pruned_rows: rows_in - heap_rows,
    };
    emit_counters(&stats, true);
    (out, stats)
}

/// Applies the output projection to one winning row.
fn project_row(row: Row, proj: Option<&[usize]>) -> Row {
    match proj {
        None => row,
        Some(cols) => cols.iter().map(|&c| row[c].clone()).collect(),
    }
}

/// Parallel full sort over already-materialized rows: per-chunk sorted
/// runs in parallel, then a serial k-way merge. Equivalent to a stable
/// sort by `keys`, at any worker count. `keys` index the **input** row;
/// `proj` selects output columns of the sorted rows (see
/// [`par_topn_rows`]).
pub fn par_sort_rows(
    rows: Vec<Row>,
    keys: &[SortKey],
    proj: Option<&[usize]>,
    threads: usize,
) -> (Vec<Row>, SortStats) {
    let chunks = chunks_of(rows.len());
    let workers = worker_count(rows.len(), threads, chunks.len());
    let rows_in = rows.len() as u64;

    let slots: Vec<Mutex<Vec<Entry>>> = (0..chunks.len()).map(|_| Mutex::new(Vec::new())).collect();
    let run_worker = |w: usize, cursor: &AtomicUsize| {
        let mut span = tpcds_obs::span("storage", "sort_worker").field("worker", w);
        let mut done = 0usize;
        loop {
            let m = cursor.fetch_add(1, AtomicOrdering::Relaxed);
            if m >= chunks.len() {
                break;
            }
            let (off, len) = chunks[m];
            let mut run: Vec<Entry> = (off..off + len)
                .map(|gid| Entry {
                    key: key_of_row(&rows[gid], keys),
                    gid,
                })
                .collect();
            run.sort_unstable_by(|a, b| cmp_entries(a, b, keys));
            *slots[m].lock().unwrap() = run;
            done += 1;
        }
        span.add_field("morsels", done);
    };

    let cursor = AtomicUsize::new(0);
    if workers <= 1 {
        run_worker(0, &cursor);
    } else {
        std::thread::scope(|s| {
            for w in 0..workers {
                let cursor = &cursor;
                let run_worker = &run_worker;
                s.spawn(move || run_worker(w, cursor));
            }
        });
    }
    let runs: Vec<Vec<Entry>> = slots.into_iter().map(|m| m.into_inner().unwrap()).collect();
    let merge_ways = runs.iter().filter(|r| !r.is_empty()).count() as u64;
    let merged = kway_merge(runs, keys);

    let mut slots: Vec<Option<Row>> = rows.into_iter().map(Some).collect();
    let out: Vec<Row> = merged
        .iter()
        .map(|e| project_row(slots[e.gid].take().expect("unique gid"), proj))
        .collect();
    let stats = SortStats {
        morsels: chunks.len() as u64,
        workers: workers as u64,
        rows_in,
        rows_out: out.len() as u64,
        merge_ways,
        heap_rows: 0,
        pruned_rows: 0,
    };
    emit_counters(&stats, false);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::CmpKind;
    use crate::segment::ColumnTableBuilder;
    use tpcds_types::{DataType, Decimal};

    /// ~1.5 segments of (id, bucket, amount, flag) rows: heavy key
    /// duplication in `bucket`, NULLs in `flag`.
    fn table() -> ColumnTable {
        let n = SEGMENT_ROWS + SEGMENT_ROWS / 2;
        let mut b = ColumnTableBuilder::new(vec![
            DataType::Int,
            DataType::Int,
            DataType::Decimal,
            DataType::Int,
        ]);
        for i in 0..n as i64 {
            let flag = if i % 11 == 0 {
                Value::Null
            } else {
                Value::Int(i % 3)
            };
            b.push_row(&[
                Value::Int(i),
                Value::Int((i * 37) % 10),
                Value::Decimal(Decimal::from_cents((i * 7) % 1000)),
                flag,
            ]);
        }
        b.finish()
    }

    /// Serial oracle: filter in table order, stable sort, truncate.
    fn reference(
        t: &ColumnTable,
        pred: Option<&Pred>,
        keys: &[SortKey],
        proj: Option<&[usize]>,
        limit: Option<usize>,
    ) -> Vec<Row> {
        let (mut rows, _) = crate::morsel::par_filter(t, pred, 1);
        if let Some(cols) = proj {
            rows = rows
                .into_iter()
                .map(|r| cols.iter().map(|&c| r[c].clone()).collect())
                .collect();
        }
        rows.sort_by(|a, b| {
            keys.iter()
                .map(|k| {
                    let o = a[k.col].sort_cmp(&b[k.col]);
                    if k.desc {
                        o.reverse()
                    } else {
                        o
                    }
                })
                .find(|o| *o != Ordering::Equal)
                .unwrap_or(Ordering::Equal)
        });
        if let Some(n) = limit {
            rows.truncate(n);
        }
        rows
    }

    #[test]
    fn topn_matches_stable_reference_at_any_worker_count() {
        let t = table();
        let keys = [
            SortKey { col: 1, desc: true },
            SortKey {
                col: 3,
                desc: false,
            },
        ];
        let pred = Pred::Cmp(CmpKind::Ge, 0, Value::Int(5));
        let expect = reference(&t, Some(&pred), &keys, None, Some(100));
        for threads in [1, 2, 8] {
            let (rows, stats) = par_topn(&t, Some(&pred), &keys, None, 100, threads);
            assert_eq!(rows, expect, "threads={threads}");
            assert_eq!(stats.rows_out, 100);
            assert!(stats.pruned_rows > 0, "heaps should prune: {stats:?}");
            assert_eq!(stats.rows_in, stats.heap_rows + stats.pruned_rows);
        }
    }

    #[test]
    fn topn_projection_and_key_rebase() {
        let t = table();
        // Project (amount, id); sort by amount desc, which rebases key
        // col 0 -> physical col 2. Decimal keys use the value comparator.
        let keys = [SortKey { col: 0, desc: true }];
        let proj = [2usize, 0usize];
        let expect = reference(&t, None, &keys, Some(&proj), Some(50));
        for threads in [1, 4] {
            let (rows, _) = par_topn(&t, None, &keys, Some(&proj), 50, threads);
            assert_eq!(rows, expect, "threads={threads}");
        }
    }

    #[test]
    fn topn_limit_edge_cases() {
        let t = table();
        let keys = [SortKey {
            col: 0,
            desc: false,
        }];
        let (rows, stats) = par_topn(&t, None, &keys, None, 0, 4);
        assert!(rows.is_empty());
        assert_eq!(stats.heap_rows, 0);
        let n = t.rows;
        let (rows, stats) = par_topn(&t, None, &keys, None, n + 10, 4);
        assert_eq!(rows.len(), n);
        assert_eq!(stats.pruned_rows, 0);
        assert_eq!(rows, reference(&t, None, &keys, None, None));
    }

    #[test]
    fn full_sort_matches_reference_and_counts_merge_ways() {
        let t = table();
        let keys = [
            SortKey {
                col: 1,
                desc: false,
            },
            SortKey { col: 0, desc: true },
        ];
        let pred = Pred::Cmp(CmpKind::Lt, 1, Value::Int(7));
        let expect = reference(&t, Some(&pred), &keys, None, None);
        for threads in [1, 2, 8] {
            let (rows, stats) = par_sort(&t, Some(&pred), &keys, None, threads);
            assert_eq!(rows, expect, "threads={threads}");
            assert!(stats.merge_ways > 1, "{stats:?}");
            assert_eq!(stats.rows_out as usize, expect.len());
        }
    }

    #[test]
    fn null_keys_sort_first_asc_last_desc() {
        let t = table();
        let asc = [SortKey {
            col: 3,
            desc: false,
        }];
        let (rows, _) = par_topn(&t, None, &asc, None, 5, 4);
        assert!(rows.iter().all(|r| r[3].is_null()), "NULLs first asc");
        let desc = [SortKey { col: 3, desc: true }];
        let (rows, _) = par_sort(&t, None, &desc, None, 4);
        assert!(rows.last().unwrap()[3].is_null(), "NULLs last desc");
        assert!(!rows[0][3].is_null());
    }

    #[test]
    fn encoded_and_value_paths_agree() {
        // Same logical data once as dense i64 (encoded path) and once as
        // the Other buffer (value path): identical output.
        let n = 10_000i64;
        let mut dense = ColumnTableBuilder::new(vec![DataType::Int, DataType::Int]);
        let mut boxed = ColumnTableBuilder::new(vec![DataType::Bool, DataType::Bool]);
        for i in 0..n {
            let v = if i % 13 == 0 {
                Value::Null
            } else {
                Value::Int((i * 31) % 97 - 48)
            };
            let row = [v, Value::Int(i)];
            dense.push_row(&row);
            boxed.push_row(&row);
        }
        let (dense, boxed) = (dense.finish(), boxed.finish());
        assert!(matches!(
            boxed.segments[0].columns[0].data,
            ColumnData::Other(_)
        ));
        for desc in [false, true] {
            let keys = [SortKey { col: 0, desc }];
            let (a, _) = par_topn(&dense, None, &keys, None, 200, 4);
            let (b, _) = par_topn(&boxed, None, &keys, None, 200, 4);
            assert_eq!(a, b, "desc={desc}");
            let (a, _) = par_sort(&dense, None, &keys, None, 4);
            let (b, _) = par_sort(&boxed, None, &keys, None, 4);
            assert_eq!(a, b, "desc={desc}");
        }
    }

    #[test]
    fn rows_kernels_match_stable_sort() {
        let rows: Vec<Row> = (0..40_000i64)
            .map(|i| {
                vec![
                    Value::Int((i * 17) % 23),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                ]
            })
            .collect();
        let keys = [
            SortKey { col: 0, desc: true },
            SortKey {
                col: 1,
                desc: false,
            },
        ];
        let mut expect = rows.clone();
        expect.sort_by(|a, b| {
            keys.iter()
                .map(|k| {
                    let o = a[k.col].sort_cmp(&b[k.col]);
                    if k.desc {
                        o.reverse()
                    } else {
                        o
                    }
                })
                .find(|o| *o != Ordering::Equal)
                .unwrap_or(Ordering::Equal)
        });
        for threads in [1, 2, 8] {
            let (sorted, stats) = par_sort_rows(rows.clone(), &keys, None, threads);
            assert_eq!(sorted, expect, "threads={threads}");
            assert!(stats.merge_ways >= 1);
            let (top, stats) = par_topn_rows(rows.clone(), &keys, None, 123, threads);
            assert_eq!(top, expect[..123], "threads={threads}");
            assert_eq!(stats.rows_out, 123);
        }
    }
}
