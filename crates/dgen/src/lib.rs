//! # tpcds-dgen
//!
//! The TPC-DS data generator ("dsdgen"): deterministic, random-access,
//! parallel synthesis of all 24 tables; the hybrid synthetic/real
//! distributions of paper §3.2 with census-calibrated comparability zones;
//! slowly changing dimensions with up to three revisions per business key;
//! and dsdgen-compatible flat-file output.

#![warn(missing_docs)]

pub mod distributions;
pub mod facts;
pub mod flatfile;
pub mod generator;
pub mod profile;
pub mod refresh;
pub mod words;

pub use distributions::{SalesDateDistribution, SalesZone, SyntheticSalesDistribution};
pub use generator::{Generator, ScdPosition};
pub use profile::TableProfile;
