//! Length-prefixed JSON wire protocol.
//!
//! Every frame is a big-endian `u32` byte count followed by exactly that
//! many bytes of UTF-8 JSON. Requests and responses are JSON objects; the
//! payload schema reuses the hand-rolled [`Json`] value from `tpcds-obs`
//! so the wire format resolves no third-party crates either.
//!
//! Cell values cross the wire losslessly: integers, strings, booleans and
//! nulls map to their JSON counterparts, while the types JSON cannot carry
//! exactly are wrapped in single-key objects — `{"d":"1.50"}` for decimals
//! (display form, which round-trips mantissa and scale), `{"dt":2450815}`
//! for dates (the surrogate key) and `{"tm":34230}` for times (seconds
//! since midnight). Floats never appear: the engine computes in fixed
//! point precisely so results can be compared byte-for-byte.

use std::io::{Read, Write};

use tpcds_obs::json::Json;
use tpcds_types::{Date, Decimal, Time, Value};

/// Upper bound on a single frame, guarding the length prefix against
/// garbage (a client speaking HTTP at us would otherwise allocate "GET "
/// = 1.1 GB). 64 MiB comfortably fits any result set the bench produces.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

fn bad_data(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Writes one frame: length prefix, then the serialized document.
/// Returns the total bytes put on the wire (prefix + body) so the
/// server can account per-session traffic for `sys.sessions`.
pub fn write_frame(w: &mut impl Write, doc: &Json) -> std::io::Result<usize> {
    let body = doc.to_string();
    let len = u32::try_from(body.len()).map_err(|_| bad_data("frame over 4 GiB"))?;
    if len > MAX_FRAME {
        return Err(bad_data(format!("frame of {len} bytes exceeds MAX_FRAME")));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()?;
    Ok(4 + body.len())
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between requests); EOF mid-frame is an
/// error, as is a length prefix above [`MAX_FRAME`] or a body that is
/// not valid JSON.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Json>> {
    let mut prefix = [0u8; 4];
    match r.read(&mut prefix)? {
        0 => return Ok(None),
        4 => {}
        n => r.read_exact(&mut prefix[n..])?,
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME {
        return Err(bad_data(format!("frame of {len} bytes exceeds MAX_FRAME")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body).map_err(|_| bad_data("frame is not UTF-8"))?;
    Json::parse(&text)
        .map(Some)
        .map_err(|e| bad_data(format!("frame is not JSON: {e}")))
}

/// Encodes one cell for the wire.
pub fn encode_value(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Int(i) => Json::Int(*i),
        Value::Bool(b) => Json::Bool(*b),
        Value::Str(s) => Json::Str(s.to_string()),
        Value::Decimal(d) => Json::Obj(vec![("d".into(), Json::Str(d.to_string()))]),
        Value::Date(d) => Json::Obj(vec![("dt".into(), Json::Int(d.date_sk()))]),
        Value::Time(t) => Json::Obj(vec![("tm".into(), Json::Int(t.seconds() as i64))]),
    }
}

/// Decodes one cell from the wire.
pub fn decode_value(j: &Json) -> Result<Value, String> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Str(s) => Ok(Value::str(s)),
        Json::Obj(_) => {
            if let Some(d) = j.get("d").and_then(Json::as_str) {
                let dec: Decimal = d.parse().map_err(|_| format!("bad decimal {d:?}"))?;
                Ok(Value::Decimal(dec))
            } else if let Some(sk) = j.get("dt").and_then(Json::as_i64) {
                Ok(Value::Date(Date::from_date_sk(sk)))
            } else if let Some(s) = j.get("tm").and_then(Json::as_i64) {
                let s = u32::try_from(s).map_err(|_| format!("bad time {s}"))?;
                Ok(Value::Time(Time::from_seconds(s)))
            } else {
                Err(format!("unknown wrapped value {j}"))
            }
        }
        other => Err(format!("unexpected cell {other}")),
    }
}

/// Encodes a result-set row.
pub fn encode_row(row: &[Value]) -> Json {
    Json::Arr(row.iter().map(encode_value).collect())
}

/// Decodes a result-set row.
pub fn decode_row(j: &Json) -> Result<Vec<Value>, String> {
    let cells = j
        .as_arr()
        .ok_or_else(|| format!("row is not an array: {j}"))?;
    cells.iter().map(decode_value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let doc = Json::Obj(vec![
            ("type".into(), Json::Str("query".into())),
            (
                "sql".into(),
                Json::Str("select * from t where a = 'x\"y'".into()),
            ),
        ]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).unwrap();
        write_frame(
            &mut buf,
            &Json::Obj(vec![("type".into(), Json::Str("ping".into()))]),
        )
        .unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), Some(doc));
        assert!(read_frame(&mut r).unwrap().is_some());
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF is None");
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocating() {
        // "GET " interpreted as a length prefix.
        let mut r = &b"GET / HTTP/1.1\r\n"[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error_not_none() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::Int(7)).unwrap();
        buf.truncate(buf.len() - 1);
        let mut r = buf.as_slice();
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn every_value_variant_round_trips_losslessly() {
        let cells = vec![
            Value::Null,
            Value::Int(-9_007_199_254_740_993), // below -2^53: JSON floats would lose it
            Value::Bool(true),
            Value::str("it's \"quoted\"\nand multiline"),
            Value::Decimal(Decimal::new(-123_456, 2)),
            Value::Decimal(Decimal::new(500, 2)), // trailing zeros keep scale
            Value::Date(Date::from_date_sk(2_450_815)),
            Value::Time(Time::from_seconds(34_230)),
        ];
        let wire = encode_row(&cells);
        let text = wire.to_string();
        let back = decode_row(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.len(), cells.len());
        for (a, b) in cells.iter().zip(&back) {
            assert_eq!(a.to_flat(), b.to_flat(), "{a:?} vs {b:?}");
            assert_eq!(a.data_type(), b.data_type(), "{a:?} vs {b:?}");
        }
        // Decimal scale survives, not just the printed value.
        let (Value::Decimal(a), Value::Decimal(b)) = (&cells[5], &back[5]) else {
            panic!()
        };
        assert_eq!(a.scale(), b.scale());
        assert_eq!(a.mantissa(), b.mantissa());
    }
}
