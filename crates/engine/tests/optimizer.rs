//! Tests of the join-reordering optimizer: plan shapes and, more
//! importantly, result equivalence between optimized plans and semantics.

use tpcds_engine::{plan_sql, query, ColumnMeta, Database, Plan};
use tpcds_types::{DataType, Value};

/// A miniature star schema: one fact, three dimensions of very different
/// sizes, with selective predicates on the smallest.
fn star_db() -> Database {
    let db = Database::new();
    let col = |n: &str| ColumnMeta {
        name: n.to_string(),
        dtype: DataType::Int,
    };
    db.create_table_with_rows(
        "fact",
        vec![col("f_d1"), col("f_d2"), col("f_d3"), col("f_v")],
        (0..5000)
            .map(|i| {
                vec![
                    Value::Int(i % 100),
                    Value::Int(i % 10),
                    Value::Int(i % 500),
                    Value::Int(i),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.create_table_with_rows(
        "d1",
        vec![col("d1_id"), col("d1_attr")],
        (0..100)
            .map(|i| vec![Value::Int(i), Value::Int(i * 2)])
            .collect(),
    )
    .unwrap();
    db.create_table_with_rows(
        "d2",
        vec![col("d2_id"), col("d2_attr")],
        (0..10)
            .map(|i| vec![Value::Int(i), Value::Int(i * 3)])
            .collect(),
    )
    .unwrap();
    db.create_table_with_rows(
        "d3",
        vec![col("d3_id"), col("d3_attr")],
        (0..500)
            .map(|i| vec![Value::Int(i), Value::Int(i * 5)])
            .collect(),
    )
    .unwrap();
    db
}

fn count_nodes(plan: &Plan, pred: &impl Fn(&Plan) -> bool) -> usize {
    let mut n = usize::from(pred(plan));
    match plan {
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Sort { input, .. }
        | Plan::TopN { input, .. }
        | Plan::Limit { input, .. }
        | Plan::Distinct { input }
        | Plan::Window { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Prefix { input, .. } => n += count_nodes(input, pred),
        Plan::HashJoin { left, right, .. } | Plan::NestedLoopJoin { left, right, .. } => {
            n += count_nodes(left, pred) + count_nodes(right, pred);
        }
        Plan::SetOp { left, right, .. } => {
            n += count_nodes(left, pred) + count_nodes(right, pred);
        }
        Plan::Scan { .. } | Plan::CteRef { .. } => {}
    }
    n
}

#[test]
fn comma_joins_become_hash_joins() {
    let db = star_db();
    let bound = plan_sql(
        &db,
        "select sum(f_v) from fact, d1, d2, d3
         where f_d1 = d1_id and f_d2 = d2_id and f_d3 = d3_id and d2_attr = 9",
    )
    .unwrap();
    let hash_joins = count_nodes(&bound.plan, &|p| matches!(p, Plan::HashJoin { .. }));
    let nl_joins = count_nodes(&bound.plan, &|p| matches!(p, Plan::NestedLoopJoin { .. }));
    assert_eq!(hash_joins, 3, "{}", bound.plan.explain());
    assert_eq!(
        nl_joins,
        0,
        "no cartesian products left:\n{}",
        bound.plan.explain()
    );
}

#[test]
fn local_predicates_are_pushed_into_scans() {
    let db = star_db();
    let bound = plan_sql(
        &db,
        "select count(*) from fact, d2 where f_d2 = d2_id and d2_attr = 9 and f_v > 100",
    )
    .unwrap();
    let filtered_scans = count_nodes(&bound.plan, &|p| {
        matches!(
            p,
            Plan::Scan {
                filter: Some(_),
                ..
            }
        )
    });
    assert_eq!(filtered_scans, 2, "{}", bound.plan.explain());
}

#[test]
fn optimized_plan_equals_naive_semantics() {
    // Cross-check the join-reordered answer against a formulation that
    // forces the same semantics through explicit subqueries.
    let db = star_db();
    let optimized = query(
        &db,
        "select d1_attr, sum(f_v) s from fact, d1, d2, d3
         where f_d1 = d1_id and f_d2 = d2_id and f_d3 = d3_id
           and d2_attr >= 15 and d3_attr < 100
         group by d1_attr order by d1_attr",
    )
    .unwrap();
    let explicit = query(
        &db,
        "select d1_attr, sum(f_v) s
         from (select * from fact where f_d2 in (select d2_id from d2 where d2_attr >= 15)
                                    and f_d3 in (select d3_id from d3 where d3_attr < 100)) f
              join d1 on f_d1 = d1_id
         group by d1_attr order by d1_attr",
    )
    .unwrap();
    assert_eq!(optimized.rows, explicit.rows);
    assert!(!optimized.rows.is_empty());
}

#[test]
fn disconnected_relations_still_answer() {
    // A genuine cartesian product (no join edge) must survive reordering.
    let db = star_db();
    let r = query(&db, "select count(*) from d2, d1 where d2_attr = 0").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(100));
}

#[test]
fn join_through_expressions() {
    // Equi-edges where one side is an expression (the q2/q31 pattern
    // `a.x = b.y - 53`).
    let db = star_db();
    let r = query(
        &db,
        "select count(*) from d2 a, d2 b where a.d2_id = b.d2_id - 1",
    )
    .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(9));
}

#[test]
fn subquery_predicates_stay_above_joins() {
    let db = star_db();
    // The correlated subquery references the outer fact row; the plan must
    // still produce correct results after reordering around it.
    let r = query(
        &db,
        "select count(*) from fact, d2
         where f_d2 = d2_id
           and f_v > (select 2 * avg(d2_attr) from d2)
           and d2_attr = 9",
    )
    .unwrap();
    // avg(d2_attr) = (0..10)*3 avg = 13.5 -> f_v > 27; d2_attr = 9 -> d2_id 3 -> f_d2 = 3
    // fact rows with i % 10 == 3 and i > 27: i in {33, 43, ..., 4993}
    assert_eq!(r.rows[0][0], Value::Int(497));
}

#[test]
fn limit_over_sort_fuses_to_topn() {
    let db = star_db();
    let bound = plan_sql(&db, "select f_v from fact order by f_v desc limit 7").unwrap();
    assert_eq!(
        count_nodes(&bound.plan, &|p| matches!(p, Plan::TopN { .. })),
        1,
        "{}",
        bound.plan.explain()
    );
    assert_eq!(
        count_nodes(&bound.plan, &|p| matches!(
            p,
            Plan::Sort { .. } | Plan::Limit { .. }
        )),
        0,
        "Sort and Limit should both be fused away:\n{}",
        bound.plan.explain()
    );
}

#[test]
fn limit_over_prefix_over_sort_fuses_to_topn_under_prefix() {
    // ORDER BY a non-projected column forces a Prefix between Limit and
    // Sort; the fusion must commute through it.
    let db = star_db();
    let bound = plan_sql(&db, "select f_v from fact order by f_d1 limit 7").unwrap();
    let text = bound.plan.explain();
    assert_eq!(
        count_nodes(&bound.plan, &|p| matches!(p, Plan::TopN { .. })),
        1,
        "{text}"
    );
    assert_eq!(
        count_nodes(&bound.plan, &|p| matches!(
            p,
            Plan::Sort { .. } | Plan::Limit { .. }
        )),
        0,
        "{text}"
    );
    assert_eq!(
        count_nodes(&bound.plan, &|p| matches!(p, Plan::Prefix { .. })),
        1,
        "{text}"
    );
}

#[test]
fn sort_without_limit_does_not_fuse() {
    let db = star_db();
    let bound = plan_sql(&db, "select f_v from fact order by f_v").unwrap();
    assert_eq!(
        count_nodes(&bound.plan, &|p| matches!(p, Plan::TopN { .. })),
        0,
        "{}",
        bound.plan.explain()
    );
    assert_eq!(
        count_nodes(&bound.plan, &|p| matches!(p, Plan::Sort { .. })),
        1,
        "{}",
        bound.plan.explain()
    );
}

#[test]
fn explain_shows_fact_as_probe_side() {
    let db = star_db();
    let bound = plan_sql(&db, "select count(*) from fact, d2 where f_d2 = d2_id").unwrap();
    let text = bound.plan.explain();
    // The first (left) input of the hash join should be the larger fact
    // table — the greedy order builds on the small side.
    let fact_pos = text.find("Scan fact").expect("fact scanned");
    let d2_pos = text.find("Scan d2").expect("d2 scanned");
    assert!(
        fact_pos < d2_pos,
        "fact should be the probe (left) side:\n{text}"
    );
}
