//! Quickstart: generate a miniature TPC-DS data set, load it into the
//! bundled engine, and run a benchmark query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tpcds_repro::TpcDs;

fn main() {
    // A "virtual" scale factor of 0.02 (~20 MB of raw data) keeps this
    // instant; the same API scales to the paper's published scale factors.
    let tpcds = TpcDs::builder()
        .scale_factor(0.02)
        .build()
        .expect("generate + load");

    println!("Loaded tables:");
    for t in tpcds.generator().schema().tables() {
        println!(
            "  {:<24} {:>8} rows",
            t.name,
            tpcds.database().row_count(t.name)
        );
    }

    // Query 52 — the paper's Figure 6 ad-hoc example.
    let sql = tpcds.benchmark_sql(52, 0).expect("template");
    println!("\nQuery 52 (ad-hoc, store channel):\n{sql}\n");
    let result = tpcds.run_benchmark_query(52, 0).expect("execute");
    println!("{}", result.to_table(10));

    // Ad-hoc SQL works too.
    let result = tpcds
        .query(
            "select i_category, count(*) items, avg(i_current_price) avg_price
             from item group by i_category order by i_category",
        )
        .expect("execute");
    println!("Item hierarchy summary:\n{}", result.to_table(12));
}
