#!/usr/bin/env sh
# Columnar storage benchmark: builds the release harness and emits
# BENCH_2.json (scan/aggregate rows-per-second for the serial row path vs
# the columnar path at 1 and N morsel workers, plus a 99-template answer
# equivalence sweep). Exits non-zero on any answer mismatch.
#
# Knobs:
#   TPCDS_THREADS     morsel worker count (default: available_parallelism)
#   BENCH_SCALE       scale factor (default 0.02)
#   BENCH_OUT         output path (default BENCH_2.json)
set -eux

export CARGO_NET_OFFLINE=true

cargo build --release -p tpcds-bench --bin storage_bench
./target/release/storage_bench \
    --scale "${BENCH_SCALE:-0.02}" \
    --out "${BENCH_OUT:-BENCH_2.json}"
