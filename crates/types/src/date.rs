//! Calendar dates and times of day.
//!
//! TPC-DS pivots on the `date_dim` dimension (covering 1900-01-01 through
//! 2099-12-31, 73 049 days) and the `time_dim` dimension (86 400 seconds).
//! We represent a date as the number of days since 1900-01-01 (day 0) in the
//! proleptic Gregorian calendar, mirroring dsdgen's Julian-day bookkeeping,
//! and a time as seconds since midnight.

use std::fmt;
use std::str::FromStr;

/// First day representable: 1900-01-01 (day number 0).
pub const EPOCH_YEAR: i32 = 1900;

/// Number of rows in `date_dim`: 1900-01-01 ..= 2099-12-31 inclusive.
pub const DATE_DIM_DAYS: i64 = 73_049;

/// dsdgen numbers dates with Julian day offsets; the spec's surrogate keys
/// for `date_dim` start at 2415022 + 1 (Julian day of 1900-01-01 is
/// 2415021). We keep the same bias so our `d_date_sk` values line up with
/// published TPC-DS data.
pub const JULIAN_BIAS: i64 = 2_415_022;

/// A calendar date, stored as days since 1900-01-01.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(i32);

const DAYS_IN_MONTH: [i32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// True when `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_year(year: i32) -> i32 {
    if is_leap_year(year) {
        366
    } else {
        365
    }
}

/// Days in `month` (1-12) of `year`.
pub fn days_in_month(year: i32, month: u32) -> i32 {
    if month == 2 && is_leap_year(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

impl Date {
    /// Builds a date from a day number (days since 1900-01-01).
    pub fn from_day_number(days: i32) -> Self {
        Date(days)
    }

    /// Days since 1900-01-01.
    pub fn day_number(&self) -> i32 {
        self.0
    }

    /// The `d_date_sk` surrogate key dsdgen would assign to this date.
    pub fn date_sk(&self) -> i64 {
        self.0 as i64 + JULIAN_BIAS
    }

    /// Inverse of [`Date::date_sk`].
    pub fn from_date_sk(sk: i64) -> Self {
        Date((sk - JULIAN_BIAS) as i32)
    }

    /// Builds a date from calendar components. Panics (debug) on invalid
    /// components; use [`Date::try_from_ymd`] for fallible construction.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        Self::try_from_ymd(year, month, day)
            .unwrap_or_else(|| panic!("invalid date {year:04}-{month:02}-{day:02}"))
    }

    /// Fallible calendar construction.
    pub fn try_from_ymd(year: i32, month: u32, day: u32) -> Option<Self> {
        if !(1..=12).contains(&month) || day < 1 {
            return None;
        }
        if day as i32 > days_in_month(year, month) {
            return None;
        }
        let mut days: i32 = 0;
        if year >= EPOCH_YEAR {
            for y in EPOCH_YEAR..year {
                days += days_in_year(y);
            }
        } else {
            for y in year..EPOCH_YEAR {
                days -= days_in_year(y);
            }
        }
        for m in 1..month {
            days += days_in_month(year, m);
        }
        Some(Date(days + day as i32 - 1))
    }

    /// Decomposes into (year, month, day).
    pub fn ymd(&self) -> (i32, u32, u32) {
        let mut days = self.0;
        let mut year = EPOCH_YEAR;
        if days >= 0 {
            while days >= days_in_year(year) {
                days -= days_in_year(year);
                year += 1;
            }
        } else {
            while days < 0 {
                year -= 1;
                days += days_in_year(year);
            }
        }
        let mut month = 1u32;
        while days >= days_in_month(year, month) {
            days -= days_in_month(year, month);
            month += 1;
        }
        (year, month, days as u32 + 1)
    }

    /// Calendar year.
    pub fn year(&self) -> i32 {
        self.ymd().0
    }

    /// Month of year, 1-12 (`d_moy`).
    pub fn month(&self) -> u32 {
        self.ymd().1
    }

    /// Day of month, 1-31 (`d_dom`).
    pub fn day(&self) -> u32 {
        self.ymd().2
    }

    /// Day of week, 0 = Sunday .. 6 = Saturday (1900-01-01 was a Monday).
    pub fn day_of_week(&self) -> u32 {
        ((self.0 % 7) + 7 + 1) as u32 % 7
    }

    /// Day of year, 1-based.
    pub fn day_of_year(&self) -> u32 {
        let (y, m, d) = self.ymd();
        let mut doy = d;
        for mm in 1..m {
            doy += days_in_month(y, mm) as u32;
        }
        doy
    }

    /// Quarter of year, 1-4 (`d_qoy`).
    pub fn quarter(&self) -> u32 {
        (self.month() - 1) / 3 + 1
    }

    /// ISO-8601-ish week sequence used for `d_week_seq`: weeks since the
    /// epoch, Sunday-based, week 1 containing 1900-01-01.
    pub fn week_seq(&self) -> i32 {
        // 1900-01-01 was a Monday, so the containing Sunday-based week
        // started on 1899-12-31 (day -1).
        (self.0 + 1).div_euclid(7) + 1
    }

    /// Adds (or subtracts) a number of days.
    pub fn add_days(&self, n: i32) -> Date {
        Date(self.0 + n)
    }

    /// Number of days from `other` to `self`.
    pub fn days_since(&self, other: &Date) -> i32 {
        self.0 - other.0
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Date({self})")
    }
}

/// Error returned by [`Date::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDateError(pub String);

impl fmt::Display for ParseDateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid date literal: {}", self.0)
    }
}
impl std::error::Error for ParseDateError {}

impl FromStr for Date {
    type Err = ParseDateError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseDateError(s.to_string());
        let mut it = s.trim().splitn(3, '-');
        let y: i32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let m: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let d: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        Date::try_from_ymd(y, m, d).ok_or_else(bad)
    }
}

/// A time of day, stored as seconds since midnight (0..86_400).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(u32);

impl Time {
    /// Builds from seconds since midnight; panics (debug) if out of range.
    pub fn from_seconds(s: u32) -> Self {
        debug_assert!(s < 86_400);
        Time(s)
    }

    /// Builds from hour/minute/second components.
    pub fn from_hms(h: u32, m: u32, s: u32) -> Self {
        debug_assert!(h < 24 && m < 60 && s < 60);
        Time(h * 3600 + m * 60 + s)
    }

    /// Seconds since midnight (`t_time_sk`).
    pub fn seconds(&self) -> u32 {
        self.0
    }

    /// Hour of day, 0-23.
    pub fn hour(&self) -> u32 {
        self.0 / 3600
    }

    /// Minute of hour, 0-59.
    pub fn minute(&self) -> u32 {
        self.0 / 60 % 60
    }

    /// Second of minute, 0-59.
    pub fn second(&self) -> u32 {
        self.0 % 60
    }

    /// TPC-DS shift name: AM/PM halves of the day for `t_am_pm`.
    pub fn am_pm(&self) -> &'static str {
        if self.hour() < 12 {
            "AM"
        } else {
            "PM"
        }
    }

    /// TPC-DS `t_shift`: three 8-hour shifts.
    pub fn shift(&self) -> &'static str {
        match self.hour() {
            0..=7 => "third",
            8..=15 => "first",
            _ => "second",
        }
    }

    /// TPC-DS `t_sub_shift` meal-oriented partition of the day.
    pub fn sub_shift(&self) -> &'static str {
        match self.hour() {
            6..=11 => "morning",
            12..=17 => "afternoon",
            18..=23 => "evening",
            _ => "night",
        }
    }

    /// TPC-DS `t_meal_time`; NULL outside meal windows (returns `None`).
    pub fn meal_time(&self) -> Option<&'static str> {
        match self.hour() {
            6..=8 => Some("breakfast"),
            11..=13 => Some("dinner"),
            17..=20 => Some("supper"),
            _ => None,
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02}:{:02}:{:02}",
            self.hour(),
            self.minute(),
            self.second()
        )
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ymd_round_trip_over_two_centuries() {
        let mut day = 0;
        let mut expect = (1900, 1, 1);
        while day < DATE_DIM_DAYS as i32 {
            let d = Date::from_day_number(day);
            assert_eq!(d.ymd(), (expect.0, expect.1, expect.2), "day {day}");
            // advance expected calendar by hand
            expect.2 += 1;
            if expect.2 > days_in_month(expect.0, expect.1) as u32 {
                expect.2 = 1;
                expect.1 += 1;
                if expect.1 > 12 {
                    expect.1 = 1;
                    expect.0 += 1;
                }
            }
            day += 1;
        }
    }

    #[test]
    fn date_dim_spans_73049_days() {
        let first = Date::from_ymd(1900, 1, 1);
        let last = Date::from_ymd(2099, 12, 31);
        assert_eq!(last.days_since(&first) + 1, DATE_DIM_DAYS as i32);
    }

    #[test]
    fn known_dates() {
        assert_eq!(Date::from_ymd(2000, 2, 29).day_number(), 36_583);
        assert_eq!(Date::from_ymd(1900, 1, 1).day_number(), 0);
        assert_eq!(Date::from_ymd(1900, 12, 31).day_number(), 364);
        assert_eq!(Date::from_ymd(1901, 1, 1).day_number(), 365);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(1996));
        assert!(!is_leap_year(1997));
    }

    #[test]
    fn date_sk_bias_matches_dsdgen() {
        // dsdgen's d_date_sk for 1900-01-02 is 2415023.
        assert_eq!(Date::from_ymd(1900, 1, 2).date_sk(), 2_415_023);
        let d = Date::from_ymd(2001, 7, 4);
        assert_eq!(Date::from_date_sk(d.date_sk()), d);
    }

    #[test]
    fn day_of_week_anchor() {
        // 1900-01-01 was a Monday (1), 2000-01-01 a Saturday (6).
        assert_eq!(Date::from_ymd(1900, 1, 1).day_of_week(), 1);
        assert_eq!(Date::from_ymd(2000, 1, 1).day_of_week(), 6);
        assert_eq!(Date::from_ymd(2001, 9, 9).day_of_week(), 0); // a Sunday
    }

    #[test]
    fn quarters_and_doy() {
        assert_eq!(Date::from_ymd(1999, 3, 31).quarter(), 1);
        assert_eq!(Date::from_ymd(1999, 4, 1).quarter(), 2);
        assert_eq!(Date::from_ymd(1999, 12, 31).day_of_year(), 365);
        assert_eq!(Date::from_ymd(2000, 12, 31).day_of_year(), 366);
    }

    #[test]
    fn parse_and_display() {
        let d: Date = "1999-02-21".parse().unwrap();
        assert_eq!(d.to_string(), "1999-02-21");
        assert!("1999-02-30".parse::<Date>().is_err());
        assert!("hello".parse::<Date>().is_err());
        assert!("1999-13-01".parse::<Date>().is_err());
    }

    #[test]
    fn week_seq_increments_on_sundays() {
        let mut prev = Date::from_ymd(1998, 1, 1).week_seq();
        for i in 1..1000 {
            let d = Date::from_ymd(1998, 1, 1).add_days(i);
            let w = d.week_seq();
            if d.day_of_week() == 0 {
                assert_eq!(w, prev + 1, "week bumps on Sunday {d}");
            } else {
                assert_eq!(w, prev, "week stable mid-week {d}");
            }
            prev = w;
        }
    }

    #[test]
    fn time_components() {
        let t = Time::from_hms(13, 45, 59);
        assert_eq!(t.seconds(), 13 * 3600 + 45 * 60 + 59);
        assert_eq!(t.to_string(), "13:45:59");
        assert_eq!(t.am_pm(), "PM");
        assert_eq!(t.shift(), "first");
        assert_eq!(t.sub_shift(), "afternoon");
        assert_eq!(t.meal_time(), Some("dinner"));
        assert_eq!(Time::from_hms(3, 0, 0).meal_time(), None);
    }
}
