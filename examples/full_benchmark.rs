//! A complete miniature benchmark test: load test, query run 1, data
//! maintenance run, query run 2 (the paper's Figure 11), scored with
//! QphDS@SF and $/QphDS.
//!
//! ```sh
//! cargo run --release --example full_benchmark
//! ```

use tpcds_repro::runner::{self, AuxLevel, BenchmarkConfig, PriceModel};

fn main() {
    let config = BenchmarkConfig {
        scale_factor: 0.02,
        seed: tpcds_repro::types::rng::DEFAULT_SEED,
        streams: Some(3), // the Figure 12 minimum for small scale factors
        queries_per_stream: Some(25),
        aux: AuxLevel::Reporting,
        threads: None,
        via_server: false,
    };
    println!(
        "Running benchmark: SF {}, {} streams, {} queries/stream",
        config.scale_factor,
        config.streams.unwrap(),
        config.queries_per_stream.unwrap()
    );

    let result = runner::run_benchmark(config).expect("benchmark");

    println!("\nPhase timings (Figure 11 execution order):");
    println!("  load test          {:>10.3?}", result.t_load);
    println!("  query run 1        {:>10.3?}", result.t_qr1);
    println!("  data maintenance   {:>10.3?}", result.t_dm);
    println!("  query run 2        {:>10.3?}", result.t_qr2);

    println!("\nData maintenance operations:");
    for op in &result.maintenance.ops {
        println!(
            "  {:<24} updated {:>6}  inserted {:>6}  deleted {:>6}",
            op.name, op.updated, op.inserted, op.deleted
        );
    }

    let mut slowest = result.query_timings.clone();
    slowest.sort_by_key(|t| std::cmp::Reverse(t.elapsed));
    println!("\nSlowest queries:");
    for t in slowest.iter().take(5) {
        println!(
            "  q{:<3} stream {}  {:>10.3?}  ({} rows)",
            t.query, t.stream, t.elapsed, t.rows
        );
    }

    let qphds = result.qphds();
    let price = PriceModel::default();
    let dollars =
        runner::price_performance(&price, result.config.scale_factor, result.streams, qphds);
    println!("\nQphDS@{}      = {:.1}", result.config.scale_factor, qphds);
    println!("$/QphDS@{}    = {:.4}", result.config.scale_factor, dollars);
    println!(
        "(3-year TCO under the synthetic price model: ${:.0})",
        price.tco(result.config.scale_factor, result.streams)
    );
}
