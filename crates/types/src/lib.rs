//! # tpcds-types
//!
//! Shared primitives for the TPC-DS reproduction: the dynamic [`Value`]
//! model, exact fixed-point [`Decimal`] arithmetic, proleptic-Gregorian
//! [`Date`]/[`Time`], and the deterministic counter-based RNG streams
//! ([`rng::ColumnRng`]) that replace dsdgen's 48-bit LCG streams.

#![warn(missing_docs)]

pub mod date;
pub mod decimal;
pub mod like;
pub mod rng;
pub mod scalar;
pub mod value;

pub use date::{Date, Time};
pub use decimal::Decimal;
pub use like::like_match;
pub use rng::ColumnRng;
pub use scalar::{ArithOp, ScalarFunc};
pub use value::{DataType, Row, Value};
