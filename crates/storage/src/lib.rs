//! # tpcds-storage
//!
//! A columnar storage subsystem for the TPC-DS reproduction: typed column
//! vectors ([`column::Column`]) with a word-packed null bitmap, grouped into
//! fixed-size row-group segments ([`segment::Segment`]), plus vectorized
//! filter ([`pred::Pred`]) and partial-aggregate ([`agg::AggSpec`]) kernels
//! driven by a **morsel-driven scheduler** ([`morsel`]): segments are split
//! into morsels handed to `std::thread::scope` workers through a shared
//! atomic cursor.
//!
//! The engine keeps its `Vec<Row>` tables as the correctness oracle and
//! attaches a [`ColumnTable`] *shadow* per base table; scans and
//! aggregate-over-scan plans route through this crate when the shadow is
//! present and the predicate/aggregate compiles to the kernel subset. Every
//! kernel mirrors the engine's row-at-a-time SQL semantics (three-valued
//! logic, exact decimal accumulation) so the two paths produce identical
//! results.

#![warn(missing_docs)]

pub mod agg;
pub mod column;
pub mod expr;
pub mod join;
pub mod morsel;
pub mod pred;
pub mod segment;
pub mod sort;
pub mod stats;

pub use agg::{AggKind, AggSpec};
pub use column::{Bitmap, Column, ColumnData};
pub use expr::{
    par_filter_rows, par_project, par_project_rows, par_project_table, ErrCell, Expr, ExprInput,
    ExprStats,
};
pub use join::{par_hash_join, par_hash_join_agg, JoinStats, JoinType};
pub use morsel::{par_aggregate, par_filter, par_filter_limit, ScanStats, MORSEL_ROWS};
pub use pred::{CmpKind, ExprPred, Pred};
pub use segment::{ColumnTable, ColumnTableBuilder, Segment, SEGMENT_ROWS};
pub use sort::{par_sort, par_sort_rows, par_topn, par_topn_rows, SortKey, SortStats};
pub use stats::{collect_stats, ColumnStats, TableStats};

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An error raised by a storage kernel (today only aggregate kernels can
/// fail: numeric overflow or aggregation over a non-numeric column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageError(pub String);

impl StorageError {
    /// Builds an error from any displayable message.
    pub fn new(msg: impl Into<String>) -> Self {
        StorageError(msg.into())
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for StorageError {}

/// Process-wide worker-count override set programmatically (CLI/runner
/// `--threads`); `0` means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets (or with `None` clears) the process-wide worker-count override.
///
/// Precedence for the effective count is: this override, then the
/// `TPCDS_THREADS` environment variable, then
/// [`std::thread::available_parallelism`].
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count morsel scans use: the [`set_threads`] override if set,
/// else `TPCDS_THREADS` if it parses to a positive integer, else
/// [`std::thread::available_parallelism`] (1 when unavailable).
pub fn effective_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(s) = std::env::var("TPCDS_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_override_takes_precedence() {
        set_threads(Some(3));
        assert_eq!(effective_threads(), 3);
        set_threads(None);
        assert!(effective_threads() >= 1);
    }
}
