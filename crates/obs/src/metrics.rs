//! Live metrics: a process-wide registry of named counters and
//! [histograms](crate::hist), rendered as Prometheus text exposition and
//! optionally served over a std-only HTTP endpoint mid-run.
//!
//! Metric names follow the repository's `layer.name` scheme (see
//! `docs/OBSERVABILITY.md`): the emitting layer, a dot, then a
//! dot-separated metric path — `storage.scan.rows`, `storage.join.build_rows`,
//! `runner.query_us`. [`crate::counter`] feeds every recorded counter into
//! the registry automatically while it is enabled, so the `/metrics` view
//! and the JSONL trace stay consistent without double instrumentation.
//!
//! The registry is **off by default**: recording functions are a single
//! relaxed atomic load until [`enable`] (or [`serve`], which implies it)
//! turns accumulation on.

use crate::hist::Histogram;
use crate::json::Json;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

static ENABLED: AtomicBool = AtomicBool::new(false);

struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        hists: Mutex::new(BTreeMap::new()),
    })
}

/// Turns metric accumulation on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns accumulation back off, keeping registered metrics (unlike
/// [`reset`]) — the observer-overhead benchmark toggles this.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the registry is accumulating.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Disables accumulation and drops all registered metrics (tests).
pub fn reset() {
    ENABLED.store(false, Ordering::Relaxed);
    let r = registry();
    r.counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    r.gauges
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    r.hists
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Adds `v` (rounded) to the named counter. No-op while disabled.
pub fn counter_add(name: &str, v: f64) {
    if !is_enabled() || v <= 0.0 || v.is_nan() {
        return;
    }
    let cell = {
        let mut map = registry()
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                map.insert(name.to_string(), c.clone());
                c
            }
        }
    };
    cell.fetch_add(v.round() as u64, Ordering::Relaxed);
}

/// The named gauge cell, registering it on first use. Gauges carry
/// point-in-time levels (sessions active, queries in flight, published
/// snapshot version) rather than monotone totals, so they may go down.
pub fn gauge(name: &str) -> Arc<AtomicI64> {
    let mut map = registry()
        .gauges
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    match map.get(name) {
        Some(g) => g.clone(),
        None => {
            let g = Arc::new(AtomicI64::new(0));
            map.insert(name.to_string(), g.clone());
            g
        }
    }
}

/// Sets the named gauge to `v`. No-op while disabled.
pub fn gauge_set(name: &str, v: i64) {
    if is_enabled() {
        gauge(name).store(v, Ordering::Relaxed);
    }
}

/// Adds `delta` (may be negative) to the named gauge. No-op while disabled.
pub fn gauge_add(name: &str, delta: i64) {
    if is_enabled() {
        gauge(name).fetch_add(delta, Ordering::Relaxed);
    }
}

/// The named histogram, registering it on first use. The `Arc` may be
/// cached by hot paths to skip the registry lookup.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut map = registry()
        .hists
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    match map.get(name) {
        Some(h) => h.clone(),
        None => {
            let h = Arc::new(Histogram::new());
            map.insert(name.to_string(), h.clone());
            h
        }
    }
}

/// Records one sample into the named histogram. No-op while disabled.
pub fn observe(name: &str, v: u64) {
    if is_enabled() {
        histogram(name).record(v);
    }
}

/// A Prometheus-safe metric name: `tpcds_` + the `layer.name` with every
/// non-alphanumeric character folded to `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("tpcds_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Every registered counter as `(name, value)`, sorted by name.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    registry()
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect()
}

/// Every registered gauge as `(name, value)`, sorted by name.
pub fn gauges_snapshot() -> Vec<(String, i64)> {
    registry()
        .gauges
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect()
}

/// A point-in-time snapshot of every registered histogram, sorted by
/// name.
pub fn histograms_snapshot() -> Vec<(String, crate::hist::HistSnapshot)> {
    let hists: Vec<(String, Arc<Histogram>)> = registry()
        .hists
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    hists.into_iter().map(|(k, h)| (k, h.snapshot())).collect()
}

/// Renders every registered metric in Prometheus text exposition format
/// (version 0.0.4): counters as `*_total`, histograms with cumulative
/// `_bucket{le=...}` series plus `_sum`/`_count`. Series are sorted by
/// metric name across all three kinds — not grouped by kind — so
/// successive scrapes diff cleanly line-by-line.
pub fn render_prometheus() -> String {
    // (sort key, rendered block) per metric; the per-kind snapshots are
    // each name-sorted already, so one merge-by-key sort is stable.
    let mut blocks: Vec<(String, String)> = Vec::new();
    for (name, v) in counters_snapshot() {
        let p = prom_name(&name);
        blocks.push((
            p.clone(),
            format!("# TYPE {p}_total counter\n{p}_total {v}\n"),
        ));
    }
    for (name, v) in gauges_snapshot() {
        let p = prom_name(&name);
        blocks.push((p.clone(), format!("# TYPE {p} gauge\n{p} {v}\n")));
    }
    for (name, snap) in histograms_snapshot() {
        let p = prom_name(&name);
        let mut b = format!("# TYPE {p} histogram\n");
        let mut cum = 0u64;
        for (bound, count) in snap.nonzero_buckets() {
            cum += count;
            b.push_str(&format!("{p}_bucket{{le=\"{bound}\"}} {cum}\n"));
        }
        b.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
        b.push_str(&format!("{p}_sum {}\n", snap.sum));
        b.push_str(&format!("{p}_count {}\n", snap.count));
        blocks.push((p, b));
    }
    blocks.sort_by(|a, b| a.0.cmp(&b.0));
    blocks.into_iter().map(|(_, b)| b).collect()
}

/// Serializes every registered metric as one JSON object (counters as
/// integers, histograms in their sparse form).
pub fn to_json() -> Json {
    let r = registry();
    let counters: Vec<(String, Json)> = r
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), Json::Int(v.load(Ordering::Relaxed) as i64)))
        .collect();
    let gauges: Vec<(String, Json)> = r
        .gauges
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), Json::Int(v.load(Ordering::Relaxed))))
        .collect();
    let hists: Vec<(String, Json)> = r
        .hists
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), v.snapshot().to_json()))
        .collect();
    Json::Obj(vec![
        ("counters".into(), Json::Obj(counters)),
        ("gauges".into(), Json::Obj(gauges)),
        ("histograms".into(), Json::Obj(hists)),
    ])
}

fn handle_conn(mut stream: TcpStream) {
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf).unwrap_or(0);
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, ctype, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render_prometheus(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics\n".to_string(),
        )
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
}

/// Starts the live metrics endpoint on `addr` (e.g. `127.0.0.1:9184`;
/// port 0 picks a free port), enables the registry, and returns the bound
/// address. The accept loop runs on a detached thread and serves
/// `GET /metrics` for the life of the process.
pub fn serve(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    enable();
    std::thread::Builder::new()
        .name("tpcds-metrics".into())
        .spawn(move || {
            for stream in listener.incoming().flatten() {
                handle_conn(stream);
            }
        })?;
    Ok(local)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is global; tests serialize on the recorder's lock too
    // since obs tests share the process.
    #[test]
    fn registry_accumulates_and_renders_prometheus() {
        let _guard = crate::test_lock();
        reset();
        counter_add("storage.scan.rows", 100.0); // dropped: disabled
        enable();
        counter_add("storage.scan.rows", 40.0);
        counter_add("storage.scan.rows", 2.5);
        observe("runner.query_us", 300);
        observe("runner.query_us", 90_000);
        let text = render_prometheus();
        assert!(text.contains("tpcds_storage_scan_rows_total 43"), "{text}");
        assert!(text.contains("# TYPE tpcds_runner_query_us histogram"));
        assert!(text.contains("tpcds_runner_query_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("tpcds_runner_query_us_sum 90300"));
        assert!(text.contains("tpcds_runner_query_us_count 2"));
        // Cumulative buckets are non-decreasing.
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("tpcds_runner_query_us_bucket"))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]), "{cums:?}");
        reset();
    }

    #[test]
    fn gauges_move_both_directions_and_render() {
        let _guard = crate::test_lock();
        reset();
        gauge_set("server.sessions_active", 5); // dropped: disabled
        enable();
        gauge_set("server.sessions_active", 3);
        gauge_add("server.sessions_active", 2);
        gauge_add("server.sessions_active", -4);
        let text = render_prometheus();
        assert!(
            text.contains("# TYPE tpcds_server_sessions_active gauge"),
            "{text}"
        );
        assert!(text.contains("tpcds_server_sessions_active 1"), "{text}");
        let json = to_json().to_string();
        assert!(json.contains("\"server.sessions_active\":1"), "{json}");
        reset();
    }

    #[test]
    fn prometheus_output_is_globally_name_sorted() {
        let _guard = crate::test_lock();
        reset();
        enable();
        // Registration order deliberately scrambled and interleaved
        // across kinds: a gauge that sorts first, a histogram in the
        // middle, counters either side.
        counter_add("zz.last_total_ever", 1.0);
        gauge_set("aa.first_gauge", 5);
        observe("mm.middle_hist_us", 42);
        counter_add("mm.aaa_counter", 2.0);
        let text = render_prometheus();
        let heads: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        // One block per metric, in one global name order — counters,
        // gauges and histograms interleaved, not grouped by kind.
        let expected = [
            "tpcds_aa_first_gauge",
            "tpcds_mm_aaa_counter_total",
            "tpcds_mm_middle_hist_us",
            "tpcds_zz_last_total_ever_total",
        ];
        assert_eq!(heads, expected, "{text}");
        // Rendering twice diffs clean.
        assert_eq!(text, render_prometheus());
        // The snapshot accessors are name-sorted too.
        let names: Vec<String> = counters_snapshot().into_iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        reset();
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let _guard = crate::test_lock();
        reset();
        let addr = serve("127.0.0.1:0").unwrap();
        counter_add("engine.queries", 7.0);
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(
            response.contains("tpcds_engine_queries_total 7"),
            "{response}"
        );

        // Unknown paths 404.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        reset();
    }
}
