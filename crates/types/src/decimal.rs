//! Fixed-point decimal arithmetic.
//!
//! TPC-DS monetary columns are `decimal(7,2)`; derived quantities in the
//! query set (ratios, averages) need more precision. We store an `i128`
//! mantissa with an explicit decimal scale (number of fractional digits),
//! which comfortably covers every aggregate the 99 queries can produce at
//! the scale factors we execute.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// Maximum scale we ever normalize to. Division results are produced at
/// this scale, matching the "at least 6 fractional digits" behaviour most
/// engines give `decimal / decimal`.
pub const DIV_SCALE: u8 = 6;

const POW10: [i128; 39] = {
    let mut t = [1i128; 39];
    let mut i = 1;
    while i < 39 {
        t[i] = t[i - 1] * 10;
        i += 1;
    }
    t
};

/// A fixed-point decimal number: `mantissa * 10^-scale`.
///
/// Equality and ordering are *numeric*: `1.50 == 1.5`. Hashing is consistent
/// with equality because values are normalized (trailing zeros stripped)
/// before hashing.
#[derive(Clone, Copy, Debug)]
pub struct Decimal {
    mantissa: i128,
    scale: u8,
}

impl Decimal {
    /// Zero with scale 0.
    pub const ZERO: Decimal = Decimal {
        mantissa: 0,
        scale: 0,
    };

    /// Builds a decimal from a raw mantissa and scale. `1234, 2` is `12.34`.
    pub fn new(mantissa: i128, scale: u8) -> Self {
        debug_assert!((scale as usize) < POW10.len());
        Decimal { mantissa, scale }
    }

    /// Builds a decimal representing `cents / 100` — the natural constructor
    /// for TPC-DS `decimal(7,2)` money columns.
    pub fn from_cents(cents: i64) -> Self {
        Decimal::new(cents as i128, 2)
    }

    /// Builds a decimal from an integer.
    pub fn from_int(v: i64) -> Self {
        Decimal::new(v as i128, 0)
    }

    /// The raw mantissa.
    pub fn mantissa(&self) -> i128 {
        self.mantissa
    }

    /// The number of fractional digits.
    pub fn scale(&self) -> u8 {
        self.scale
    }

    /// Converts to `f64` (used only for display-level work such as
    /// histograms; all query arithmetic stays exact).
    pub fn to_f64(&self) -> f64 {
        self.mantissa as f64 / POW10[self.scale as usize] as f64
    }

    /// Builds the closest decimal of the given scale from an `f64`.
    pub fn from_f64(v: f64, scale: u8) -> Self {
        let m = (v * POW10[scale as usize] as f64).round() as i128;
        Decimal::new(m, scale)
    }

    /// Re-expresses the value at exactly `scale` fractional digits,
    /// truncating toward zero if digits are dropped.
    pub fn rescale(&self, scale: u8) -> Self {
        match scale.cmp(&self.scale) {
            Ordering::Equal => *self,
            Ordering::Greater => {
                Decimal::new(self.mantissa * POW10[(scale - self.scale) as usize], scale)
            }
            Ordering::Less => {
                Decimal::new(self.mantissa / POW10[(self.scale - scale) as usize], scale)
            }
        }
    }

    /// Strips trailing fractional zeros so equal values share one
    /// representation (needed for hashing).
    pub fn normalize(&self) -> Self {
        let mut m = self.mantissa;
        let mut s = self.scale;
        while s > 0 && m % 10 == 0 {
            m /= 10;
            s -= 1;
        }
        Decimal::new(m, s)
    }

    fn align(a: &Decimal, b: &Decimal) -> (i128, i128, u8) {
        let scale = a.scale.max(b.scale);
        (
            a.mantissa * POW10[(scale - a.scale) as usize],
            b.mantissa * POW10[(scale - b.scale) as usize],
            scale,
        )
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(&self, other: &Decimal) -> Option<Decimal> {
        let (a, b, s) = Decimal::align(self, other);
        a.checked_add(b).map(|m| Decimal::new(m, s))
    }

    /// Checked subtraction; `None` on overflow.
    pub fn checked_sub(&self, other: &Decimal) -> Option<Decimal> {
        let (a, b, s) = Decimal::align(self, other);
        a.checked_sub(b).map(|m| Decimal::new(m, s))
    }

    /// Checked multiplication; the result scale is the sum of the operand
    /// scales, clamped to [`DIV_SCALE`] by truncation when it would exceed
    /// twice `DIV_SCALE` (keeps repeated products bounded).
    pub fn checked_mul(&self, other: &Decimal) -> Option<Decimal> {
        let m = self.mantissa.checked_mul(other.mantissa)?;
        let s = self.scale + other.scale;
        let d = Decimal::new(m, s);
        if s > 2 * DIV_SCALE {
            Some(d.rescale(DIV_SCALE))
        } else {
            Some(d)
        }
    }

    /// Checked division at [`DIV_SCALE`] fractional digits; `None` when the
    /// divisor is zero or the scaling overflows.
    pub fn checked_div(&self, other: &Decimal) -> Option<Decimal> {
        if other.mantissa == 0 {
            return None;
        }
        // numerator * 10^(DIV_SCALE + other.scale - self.scale) / other.mantissa
        let target = DIV_SCALE as i32 + other.scale as i32 - self.scale as i32;
        let num = if target >= 0 {
            self.mantissa.checked_mul(POW10[target as usize])?
        } else {
            self.mantissa / POW10[(-target) as usize]
        };
        Some(Decimal::new(num / other.mantissa, DIV_SCALE))
    }

    /// Negation.
    pub fn neg(&self) -> Decimal {
        Decimal::new(-self.mantissa, self.scale)
    }

    /// Absolute value.
    pub fn abs(&self) -> Decimal {
        Decimal::new(self.mantissa.abs(), self.scale)
    }

    /// True when the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.mantissa == 0
    }
}

impl PartialEq for Decimal {
    fn eq(&self, other: &Self) -> bool {
        let (a, b, _) = Decimal::align(self, other);
        a == b
    }
}
impl Eq for Decimal {}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        let (a, b, _) = Decimal::align(self, other);
        a.cmp(&b)
    }
}

impl std::hash::Hash for Decimal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let n = self.normalize();
        n.mantissa.hash(state);
        n.scale.hash(state);
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.mantissa);
        }
        let sign = if self.mantissa < 0 { "-" } else { "" };
        let abs = self.mantissa.unsigned_abs();
        let p = POW10[self.scale as usize] as u128;
        write!(
            f,
            "{}{}.{:0width$}",
            sign,
            abs / p,
            abs % p,
            width = self.scale as usize
        )
    }
}

/// Error returned by [`Decimal::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDecimalError(pub String);

impl fmt::Display for ParseDecimalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal literal: {}", self.0)
    }
}
impl std::error::Error for ParseDecimalError {}

impl FromStr for Decimal {
    type Err = ParseDecimalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        let bad = || ParseDecimalError(s.to_string());
        let (sign, rest) = match t.strip_prefix('-') {
            Some(r) => (-1i128, r),
            None => (1i128, t.strip_prefix('+').unwrap_or(t)),
        };
        if rest.is_empty() {
            return Err(bad());
        }
        let (int_part, frac_part) = match rest.split_once('.') {
            Some((i, fr)) => (i, fr),
            None => (rest, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(bad());
        }
        if frac_part.len() >= POW10.len() {
            return Err(bad());
        }
        let mut mantissa: i128 = 0;
        for c in int_part.chars().chain(frac_part.chars()) {
            let d = c.to_digit(10).ok_or_else(bad)? as i128;
            mantissa = mantissa.checked_mul(10).ok_or_else(bad)?;
            mantissa = mantissa.checked_add(d).ok_or_else(bad)?;
        }
        Ok(Decimal::new(sign * mantissa, frac_part.len() as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "-1", "12.34", "-0.05", "1000.00", "0.000001"] {
            let d = dec(s);
            assert_eq!(d.to_string(), s, "round trip of {s}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "-", ".", "1.2.3", "abc", "1e5", "--3"] {
            assert!(s.parse::<Decimal>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn numeric_equality_ignores_scale() {
        assert_eq!(dec("1.50"), dec("1.5"));
        assert_eq!(dec("-0.0"), dec("0"));
        assert_ne!(dec("1.50"), dec("1.51"));
    }

    #[test]
    fn add_aligns_scales() {
        assert_eq!(dec("1.5").checked_add(&dec("0.25")).unwrap(), dec("1.75"));
        assert_eq!(dec("-1").checked_add(&dec("0.5")).unwrap(), dec("-0.5"));
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(dec("3.00").checked_sub(&dec("4.5")).unwrap(), dec("-1.5"));
        assert_eq!(dec("2.5").neg(), dec("-2.5"));
        assert_eq!(dec("-2.5").abs(), dec("2.5"));
    }

    #[test]
    fn mul_scales_add() {
        let p = dec("1.5").checked_mul(&dec("2.5")).unwrap();
        assert_eq!(p, dec("3.75"));
        assert_eq!(p.scale(), 2);
    }

    #[test]
    fn div_gives_six_digits() {
        let q = dec("1").checked_div(&dec("3")).unwrap();
        assert_eq!(q, dec("0.333333"));
        assert!(dec("1").checked_div(&Decimal::ZERO).is_none());
    }

    #[test]
    fn div_with_mixed_scales() {
        let q = dec("100.00").checked_div(&dec("8")).unwrap();
        assert_eq!(q, dec("12.5"));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(dec("1.5") < dec("1.50001"));
        assert!(dec("-2") < dec("-1.999"));
        assert!(dec("10") > dec("9.999999"));
    }

    #[test]
    fn rescale_truncates_toward_zero() {
        assert_eq!(dec("1.987").rescale(2).to_string(), "1.98");
        assert_eq!(dec("-1.987").rescale(2).to_string(), "-1.98");
        assert_eq!(dec("1.5").rescale(4).to_string(), "1.5000");
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |d: &Decimal| {
            let mut s = DefaultHasher::new();
            d.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&dec("1.50")), h(&dec("1.5")));
        assert_eq!(h(&dec("0.0")), h(&dec("0")));
    }

    #[test]
    fn from_cents_and_int() {
        assert_eq!(Decimal::from_cents(1234).to_string(), "12.34");
        assert_eq!(Decimal::from_int(-7).to_string(), "-7");
    }

    #[test]
    fn f64_conversion_close() {
        let d = Decimal::from_f64(1.23456, 4);
        assert_eq!(d.to_string(), "1.2346");
        assert!((dec("2.5").to_f64() - 2.5).abs() < 1e-12);
    }
}
