//! Slowly-changing-dimension audit: show the revision chains of the item
//! dimension (paper §3.3.2 — "up to 3 revisions of any dimension entry"),
//! run a history-keeping maintenance pass (Figure 9), and show the chains
//! afterwards.
//!
//! ```sh
//! cargo run --release --example scd_audit
//! ```

use tpcds_repro::TpcDs;

fn main() {
    let tpcds = TpcDs::builder().scale_factor(0.01).build().expect("load");

    let audit = "
        select cnt revisions, count(*) business_keys
        from (select i_item_id, count(*) cnt from item group by i_item_id) x
        group by cnt order by cnt";
    println!("=== Revision-chain census before maintenance ===");
    println!("{}", tpcds.query(audit).expect("audit").to_table(5));

    let open = "
        select count(*) open_revisions from item where i_rec_end_date is null";
    println!("Open revisions: {}", tpcds.query(open).unwrap().rows[0][0]);

    println!("\nApplying data maintenance (Figures 8-10)...");
    let report = tpcds.run_maintenance(0).expect("maintenance");
    for op in &report.ops {
        if op.updated + op.inserted + op.deleted > 0 {
            println!(
                "  {:<24} updated {:>5}  inserted {:>5}  deleted {:>5}",
                op.name, op.updated, op.inserted, op.deleted
            );
        }
    }

    println!("\n=== Revision-chain census after maintenance ===");
    println!("{}", tpcds.query(audit).expect("audit").to_table(6));

    // A versioned entity: pick one item with more than one revision and
    // show its full history.
    let sample = tpcds
        .query(
            "select i_item_id from item
             group by i_item_id having count(*) >= 3 order by i_item_id limit 1",
        )
        .expect("sample");
    if let Some(row) = sample.rows.first() {
        let id = row[0].to_flat();
        let history = tpcds
            .query(&format!(
                "select i_item_sk, i_rec_start_date, i_rec_end_date, i_current_price
                 from item where i_item_id = '{id}' order by i_rec_start_date"
            ))
            .expect("history");
        println!("History of item {id}:");
        println!("{}", history.to_table(6));
    }
}
